//! Rendering measured cells in the layout of the paper's Figure 4, plus
//! the `BENCH_throughput.json` merge protocol shared by the bench
//! binaries.
//!
//! The file is one JSON object. The `throughput` bin owns the *head*
//! (everything up to the first section marker); every other bin owns one
//! named *section* — a single-line JSON value behind a `\n  ,"name"`
//! marker. [`merge_section`] and [`merge_throughput`] preserve everything
//! they do not own, so the bins can run in **any order, any number of
//! times** without clobbering each other's figures (pinned by the unit
//! tests below and a CI step that runs them in both orders).

use crate::harness::EngineRun;

/// The section names each bench binary may own, in the canonical order
/// they are laid out in the file.
pub const SECTIONS: &[&str] =
    &["concurrency", "netbench", "observability", "figure4", "fanout", "tokenizer", "snapshot"];

/// The `"concurrency"` section marker (kept as a named constant because CI
/// greps for it).
pub const CONCURRENCY_MARKER: &str = "\n  ,\"concurrency\"";

fn marker(name: &str) -> String {
    format!("\n  ,{name:?}")
}

/// The `throughput`-owned head of the file: everything before the first
/// section, with the closing brace stripped so sections (and a fresh `}`
/// terminator) can be appended.
pub fn throughput_head(json: &str) -> &str {
    match SECTIONS.iter().filter_map(|n| json.find(&marker(n))).min() {
        Some(i) => &json[..i],
        None => {
            let t = json.trim_end();
            t.strip_suffix('}').unwrap_or(t).trim_end()
        }
    }
}

/// The named sections present in the file, as `(name, value)` pairs.
pub fn sections(json: &str) -> Vec<(&'static str, &str)> {
    let mut found: Vec<(usize, &'static str)> =
        SECTIONS.iter().filter_map(|n| json.find(&marker(n)).map(|i| (i, *n))).collect();
    found.sort_unstable();
    let mut out = Vec::new();
    for (k, &(start, name)) in found.iter().enumerate() {
        let value_start = start + marker(name).len();
        let end = found.get(k + 1).map(|&(next, _)| next).unwrap_or_else(|| {
            let t = json.trim_end();
            t.strip_suffix('}').unwrap_or(t).len()
        });
        let value = json[value_start..end].trim_start_matches(':').trim();
        out.push((name, value));
    }
    out
}

/// Render head + sections back into the canonical file layout.
fn render(head: &str, sections: &[(&str, String)]) -> String {
    let mut out = head.trim_end().to_string();
    for name in SECTIONS {
        if let Some((_, value)) = sections.iter().find(|(n, _)| n == name) {
            out.push_str(&marker(name));
            out.push_str(": ");
            out.push_str(value);
        }
    }
    out.push_str("\n}\n");
    out
}

/// Merge a freshly rendered section body (the single-line JSON value,
/// without the marker) into the existing file contents, preserving the
/// throughput head and every other section. `existing` may be `None` (file
/// absent: a minimal head is synthesized so the `throughput` bin can still
/// merge later). `name` must be one of [`SECTIONS`].
pub fn merge_section(existing: Option<&str>, name: &str, section_value: &str) -> String {
    assert!(SECTIONS.contains(&name), "unknown section {name:?}");
    let head = match existing {
        Some(s) => throughput_head(s).to_string(),
        None => "{\n  \"bench\": \"throughput\"".to_string(),
    };
    let mut secs: Vec<(&str, String)> = existing
        .map(|s| sections(s).into_iter().map(|(n, v)| (n, v.to_string())).collect())
        .unwrap_or_default();
    match secs.iter_mut().find(|(n, _)| *n == name) {
        Some(slot) => slot.1 = section_value.to_string(),
        None => secs.push((SECTIONS.iter().find(|n| **n == name).unwrap(), section_value.into())),
    }
    render(&head, &secs)
}

/// Merge a freshly rendered `concurrency` section into the file.
pub fn merge_concurrency(existing: Option<&str>, section_value: &str) -> String {
    merge_section(existing, "concurrency", section_value)
}

/// Merge freshly rendered throughput JSON (a complete `{…}` document) with
/// every section of the existing file contents.
pub fn merge_throughput(existing: Option<&str>, throughput_json: &str) -> String {
    let secs: Vec<(&str, String)> = existing
        .map(|s| sections(s).into_iter().map(|(n, v)| (n, v.to_string())).collect())
        .unwrap_or_default();
    if secs.is_empty() {
        return throughput_json.to_string();
    }
    render(throughput_head(throughput_json), &secs)
}

/// One row of the results table: a query at one document size.
#[derive(Debug, Clone)]
pub struct Row {
    /// Query name ("Q1", …).
    pub query: &'static str,
    /// Size label ("5M", …).
    pub size: String,
    /// FluX cell.
    pub flux: Option<EngineRun>,
    /// Galax-sim cell.
    pub galax: Option<EngineRun>,
    /// AnonX-sim cell.
    pub anonx: Option<EngineRun>,
}

/// Human-readable byte count in the paper's style (0, 4.66k, 1.54M, 37M).
pub fn fmt_mem(bytes: u64) -> String {
    if bytes == 0 {
        "0".to_string()
    } else if bytes < 10_000 {
        format!("{:.2}k", bytes as f64 / 1000.0)
    } else if bytes < 1_000_000 {
        format!("{:.0}k", bytes as f64 / 1000.0)
    } else if bytes < 10_000_000 {
        format!("{:.2}M", bytes as f64 / 1_000_000.0)
    } else {
        format!("{:.0}M", bytes as f64 / 1_000_000.0)
    }
}

/// `time/memory` cell text.
fn cell(run: &Option<EngineRun>, with_memory: bool) -> String {
    match run {
        None => "n/a".to_string(),
        Some(r) => match (&r.aborted, with_memory) {
            (Some(reason), _) => format!("- / {reason}"),
            (None, true) => format!(
                "{:.1}s/{}",
                r.seconds,
                r.memory_bytes.map(fmt_mem).unwrap_or_else(|| "?".into())
            ),
            (None, false) => format!("{:.1}s", r.seconds),
        },
    }
}

/// Render the whole table (Figure 4's layout: engines as columns, one line
/// per query × size).
pub fn format_figure4(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<5} {:>6}  {:<18} {:<18} {:<12}\n",
        "", "", "FluX", "galax-sim", "anonx-sim"
    ));
    let mut last_query = "";
    for r in rows {
        let q = if r.query == last_query { "" } else { r.query };
        last_query = r.query;
        out.push_str(&format!(
            "{:<5} {:>6}  {:<18} {:<18} {:<12}\n",
            q,
            r.size,
            cell(&r.flux, true),
            cell(&r.galax, true),
            cell(&r.anonx, false),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const THROUGHPUT: &str =
        "{\n  \"bench\": \"throughput\",\n  \"results\": [\n    {\"query\": \"Q1\"}\n  ]\n}\n";
    const SECTION: &str = "{\"bin\": \"concurrency\", \"sessions_per_thread\": 10}";
    const NETBENCH: &str = "{\"bin\": \"netbench\", \"connections\": 32}";
    const OBSERVABILITY: &str = "{\"bin\": \"netbench\", \"scrape_hz\": 10}";
    const FIGURE4: &str = "{\"bin\": \"figure4\", \"rows\": []}";
    const FANOUT: &str = "{\"bin\": \"fanout\", \"runs\": []}";
    const TOKENIZER: &str = "{\"bin\": \"tokenizer\", \"backends\": []}";
    const SNAPSHOT: &str = "{\"bin\": \"snapshot\", \"sessions\": 1000}";

    #[test]
    fn bench_json_merges_in_either_run_order() {
        // throughput first, then concurrency:
        let a = merge_concurrency(Some(THROUGHPUT), SECTION);
        // concurrency first (no file), then throughput:
        let b = merge_throughput(Some(&merge_concurrency(None, SECTION)), THROUGHPUT);
        for s in [&a, &b] {
            assert!(s.contains("\"results\""), "{s}");
            assert!(s.contains("\"concurrency\""), "{s}");
            assert!(s.trim_end().ends_with('}'), "{s}");
        }
        // Sections survive re-runs of either bin without duplication.
        let a2 = merge_concurrency(Some(&a), SECTION);
        assert_eq!(a2.matches(CONCURRENCY_MARKER).count(), 1, "{a2}");
        let a3 = merge_throughput(Some(&a2), THROUGHPUT);
        assert_eq!(a3.matches("\"results\"").count(), 1, "{a3}");
        assert_eq!(a3.matches(CONCURRENCY_MARKER).count(), 1, "{a3}");
    }

    #[test]
    fn all_sections_merge_order_invariantly() {
        // Apply the four writers in several different orders; the result
        // must always carry the head and every section exactly once.
        type Step = (&'static str, &'static str);
        let steps: [Step; 8] = [
            ("throughput", THROUGHPUT),
            ("concurrency", SECTION),
            ("netbench", NETBENCH),
            ("observability", OBSERVABILITY),
            ("figure4", FIGURE4),
            ("fanout", FANOUT),
            ("tokenizer", TOKENIZER),
            ("snapshot", SNAPSHOT),
        ];
        let orders: [[usize; 8]; 5] = [
            [0, 1, 2, 3, 4, 5, 6, 7],
            [7, 6, 5, 4, 3, 2, 1, 0],
            [2, 5, 7, 6, 4, 0, 3, 1],
            [1, 3, 5, 7, 6, 4, 0, 2],
            [3, 0, 7, 6, 4, 5, 1, 2],
        ];
        for order in orders {
            let mut file: Option<String> = None;
            for &i in &order {
                let (name, value) = steps[i];
                let merged = match name {
                    "throughput" => merge_throughput(file.as_deref(), value),
                    n => merge_section(file.as_deref(), n, value),
                };
                file = Some(merged);
            }
            let s = file.unwrap();
            assert_eq!(s.matches("\"results\"").count(), 1, "order {order:?}: {s}");
            for name in SECTIONS {
                assert_eq!(
                    s.matches(&marker(name)).count(),
                    1,
                    "order {order:?} section {name}: {s}"
                );
            }
            assert!(s.trim_end().ends_with('}'), "{s}");
            // Sections come back out exactly as they went in.
            let parsed = sections(&s);
            assert_eq!(
                parsed,
                vec![
                    ("concurrency", SECTION),
                    ("netbench", NETBENCH),
                    ("observability", OBSERVABILITY),
                    ("figure4", FIGURE4),
                    ("fanout", FANOUT),
                    ("tokenizer", TOKENIZER),
                    ("snapshot", SNAPSHOT),
                ],
                "order {order:?}"
            );
        }
    }

    #[test]
    fn rewriting_one_section_leaves_the_others_untouched() {
        let mut file = merge_throughput(None, THROUGHPUT);
        file = merge_section(Some(&file), "netbench", NETBENCH);
        file = merge_section(Some(&file), "figure4", FIGURE4);
        let updated = "{\"bin\": \"netbench\", \"connections\": 64}";
        file = merge_section(Some(&file), "netbench", updated);
        let parsed = sections(&file);
        assert_eq!(parsed, vec![("netbench", updated), ("figure4", FIGURE4)]);
        assert_eq!(file.matches("\"results\"").count(), 1, "{file}");
    }

    #[test]
    fn throughput_rerun_without_section_is_identity() {
        assert_eq!(merge_throughput(None, THROUGHPUT), THROUGHPUT);
        assert_eq!(merge_throughput(Some(THROUGHPUT), THROUGHPUT), THROUGHPUT);
    }

    fn run(sec: f64, mem: Option<u64>, aborted: Option<&str>) -> EngineRun {
        EngineRun {
            seconds: sec,
            memory_bytes: mem,
            output_bytes: 0,
            aborted: aborted.map(str::to_string),
        }
    }

    #[test]
    fn memory_formatting_matches_paper_style() {
        assert_eq!(fmt_mem(0), "0");
        assert_eq!(fmt_mem(4660), "4.66k");
        assert_eq!(fmt_mem(374_000), "374k");
        assert_eq!(fmt_mem(1_540_000), "1.54M");
        assert_eq!(fmt_mem(37_000_000), "37M");
    }

    #[test]
    fn table_renders_all_cells() {
        let rows = vec![
            Row {
                query: "Q1",
                size: "5M".into(),
                flux: Some(run(2.1, Some(0), None)),
                galax: Some(run(13.4, Some(37_000_000), None)),
                anonx: Some(run(3.4, None, None)),
            },
            Row {
                query: "Q1",
                size: "50M".into(),
                flux: Some(run(7.8, Some(0), None)),
                galax: Some(run(99.0, Some(500_000_000), Some(">500M cap"))),
                anonx: None,
            },
        ];
        let t = format_figure4(&rows);
        assert!(t.contains("2.1s/0"), "{t}");
        assert!(t.contains("13.4s/37M"), "{t}");
        assert!(t.contains("3.4s"), "{t}");
        assert!(t.contains("- / >500M cap"), "{t}");
        assert!(t.contains("n/a"), "{t}");
    }
}
