//! Rendering measured cells in the layout of the paper's Figure 4, plus
//! the `BENCH_throughput.json` merge protocol shared by the `throughput`
//! and `concurrency` binaries.

use crate::harness::EngineRun;

/// The `"concurrency"` section marker inside `BENCH_throughput.json`. The
/// `throughput` bin owns everything before it; the `concurrency` bin owns
/// the section — so the two can run in either order, any number of times,
/// without clobbering each other's figures.
pub const CONCURRENCY_MARKER: &str = "\n  ,\"concurrency\"";

/// The `throughput`-owned head of the file: everything before the
/// concurrency section, with the closing brace stripped so a section (or a
/// fresh `}` terminator) can be appended.
pub fn throughput_head(json: &str) -> &str {
    match json.find(CONCURRENCY_MARKER) {
        Some(i) => &json[..i],
        None => {
            let t = json.trim_end();
            t.strip_suffix('}').unwrap_or(t).trim_end()
        }
    }
}

/// The `concurrency`-owned section (marker through end of file), if any.
pub fn concurrency_section(json: &str) -> Option<&str> {
    json.find(CONCURRENCY_MARKER).map(|i| json[i..].trim_end())
}

/// Merge a freshly rendered `concurrency` section body (the JSON value,
/// without the marker) into the existing file contents, preserving the
/// throughput head. `existing` may be `None` (file absent: a minimal head
/// is synthesized so the `throughput` bin can still merge later).
pub fn merge_concurrency(existing: Option<&str>, section_value: &str) -> String {
    let head = match existing {
        Some(s) => throughput_head(s).to_string(),
        None => "{\n  \"bench\": \"throughput\"".to_string(),
    };
    format!("{head}{CONCURRENCY_MARKER}: {section_value}\n}}\n")
}

/// Merge freshly rendered throughput JSON (a complete `{…}` document) with
/// the concurrency section of the existing file contents, if any.
pub fn merge_throughput(existing: Option<&str>, throughput_json: &str) -> String {
    match existing.and_then(concurrency_section) {
        Some(section) => format!("{}{section}\n", throughput_head(throughput_json)),
        None => throughput_json.to_string(),
    }
}

/// One row of the results table: a query at one document size.
#[derive(Debug, Clone)]
pub struct Row {
    /// Query name ("Q1", …).
    pub query: &'static str,
    /// Size label ("5M", …).
    pub size: String,
    /// FluX cell.
    pub flux: Option<EngineRun>,
    /// Galax-sim cell.
    pub galax: Option<EngineRun>,
    /// AnonX-sim cell.
    pub anonx: Option<EngineRun>,
}

/// Human-readable byte count in the paper's style (0, 4.66k, 1.54M, 37M).
pub fn fmt_mem(bytes: u64) -> String {
    if bytes == 0 {
        "0".to_string()
    } else if bytes < 10_000 {
        format!("{:.2}k", bytes as f64 / 1000.0)
    } else if bytes < 1_000_000 {
        format!("{:.0}k", bytes as f64 / 1000.0)
    } else if bytes < 10_000_000 {
        format!("{:.2}M", bytes as f64 / 1_000_000.0)
    } else {
        format!("{:.0}M", bytes as f64 / 1_000_000.0)
    }
}

/// `time/memory` cell text.
fn cell(run: &Option<EngineRun>, with_memory: bool) -> String {
    match run {
        None => "n/a".to_string(),
        Some(r) => match (&r.aborted, with_memory) {
            (Some(reason), _) => format!("- / {reason}"),
            (None, true) => format!(
                "{:.1}s/{}",
                r.seconds,
                r.memory_bytes.map(fmt_mem).unwrap_or_else(|| "?".into())
            ),
            (None, false) => format!("{:.1}s", r.seconds),
        },
    }
}

/// Render the whole table (Figure 4's layout: engines as columns, one line
/// per query × size).
pub fn format_figure4(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<5} {:>6}  {:<18} {:<18} {:<12}\n",
        "", "", "FluX", "galax-sim", "anonx-sim"
    ));
    let mut last_query = "";
    for r in rows {
        let q = if r.query == last_query { "" } else { r.query };
        last_query = r.query;
        out.push_str(&format!(
            "{:<5} {:>6}  {:<18} {:<18} {:<12}\n",
            q,
            r.size,
            cell(&r.flux, true),
            cell(&r.galax, true),
            cell(&r.anonx, false),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const THROUGHPUT: &str =
        "{\n  \"bench\": \"throughput\",\n  \"results\": [\n    {\"query\": \"Q1\"}\n  ]\n}\n";
    const SECTION: &str = "{\"bin\": \"concurrency\", \"sessions_per_thread\": 10}";

    #[test]
    fn bench_json_merges_in_either_run_order() {
        // throughput first, then concurrency:
        let a = merge_concurrency(Some(THROUGHPUT), SECTION);
        // concurrency first (no file), then throughput:
        let b = merge_throughput(Some(&merge_concurrency(None, SECTION)), THROUGHPUT);
        for s in [&a, &b] {
            assert!(s.contains("\"results\""), "{s}");
            assert!(s.contains("\"concurrency\""), "{s}");
            assert!(s.trim_end().ends_with('}'), "{s}");
        }
        // Sections survive re-runs of either bin without duplication.
        let a2 = merge_concurrency(Some(&a), SECTION);
        assert_eq!(a2.matches(CONCURRENCY_MARKER).count(), 1, "{a2}");
        let a3 = merge_throughput(Some(&a2), THROUGHPUT);
        assert_eq!(a3.matches("\"results\"").count(), 1, "{a3}");
        assert_eq!(a3.matches(CONCURRENCY_MARKER).count(), 1, "{a3}");
    }

    #[test]
    fn throughput_rerun_without_section_is_identity() {
        assert_eq!(merge_throughput(None, THROUGHPUT), THROUGHPUT);
        assert_eq!(merge_throughput(Some(THROUGHPUT), THROUGHPUT), THROUGHPUT);
    }

    fn run(sec: f64, mem: Option<u64>, aborted: Option<&str>) -> EngineRun {
        EngineRun {
            seconds: sec,
            memory_bytes: mem,
            output_bytes: 0,
            aborted: aborted.map(str::to_string),
        }
    }

    #[test]
    fn memory_formatting_matches_paper_style() {
        assert_eq!(fmt_mem(0), "0");
        assert_eq!(fmt_mem(4660), "4.66k");
        assert_eq!(fmt_mem(374_000), "374k");
        assert_eq!(fmt_mem(1_540_000), "1.54M");
        assert_eq!(fmt_mem(37_000_000), "37M");
    }

    #[test]
    fn table_renders_all_cells() {
        let rows = vec![
            Row {
                query: "Q1",
                size: "5M".into(),
                flux: Some(run(2.1, Some(0), None)),
                galax: Some(run(13.4, Some(37_000_000), None)),
                anonx: Some(run(3.4, None, None)),
            },
            Row {
                query: "Q1",
                size: "50M".into(),
                flux: Some(run(7.8, Some(0), None)),
                galax: Some(run(99.0, Some(500_000_000), Some(">500M cap"))),
                anonx: None,
            },
        ];
        let t = format_figure4(&rows);
        assert!(t.contains("2.1s/0"), "{t}");
        assert!(t.contains("13.4s/37M"), "{t}");
        assert!(t.contains("3.4s"), "{t}");
        assert!(t.contains("- / >500M cap"), "{t}");
        assert!(t.contains("n/a"), "{t}");
    }
}
