//! # flux-bench — the Figure 4 harness and ablation benchmarks
//!
//! [`harness`] runs one (engine, query, document) cell exactly as the paper
//! measured it: wall-clock execution time plus "maximum memory consumption"
//! (peak runtime buffers for FluX, materialized tree bytes for the DOM
//! baselines, with the 512 MB cap producing the "- / >500M" cells).
//! [`report`] renders the cells in the layout of the paper's Figure 4.
//!
//! The `figure4` binary regenerates the whole table:
//!
//! ```text
//! cargo run -p flux-bench --release --bin figure4            # scaled sizes
//! cargo run -p flux-bench --release --bin figure4 -- --full  # 5/10/50/100 MB
//! ```

pub mod harness;
pub mod micro;
pub mod report;

pub use harness::{dataset, prepare_cell, run_cell, Dataset, EngineKind, EngineRun, PreparedCell};
pub use report::{format_figure4, Row};

/// A weakened XMark DTD for the schema-information ablation: the per-entity
/// content models lose their ordering (everything becomes `(…)*`), so the
/// scheduler can no longer stream Q1/Q13 and must buffer instead — the
/// paper's Section 1 motivation, measurable.
pub const XMARK_DTD_WEAK: &str = r#"
<!ELEMENT site (regions, categories, catgraph, people, open_auctions, closed_auctions)>
<!ELEMENT regions (africa, asia, australia, europe, namerica, samerica)>
<!ELEMENT africa (item)*>
<!ELEMENT asia (item)*>
<!ELEMENT australia (item)*>
<!ELEMENT europe (item)*>
<!ELEMENT namerica (item)*>
<!ELEMENT samerica (item)*>
<!ELEMENT item (item_id|location|quantity|name|payment|description|shipping|incategory|mailbox)*>
<!ELEMENT item_id (#PCDATA)>
<!ELEMENT location (#PCDATA)>
<!ELEMENT quantity (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT payment (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT shipping (#PCDATA)>
<!ELEMENT incategory (#PCDATA)>
<!ELEMENT mailbox (mail)*>
<!ELEMENT mail (from|to|date|text)*>
<!ELEMENT from (#PCDATA)>
<!ELEMENT to (#PCDATA)>
<!ELEMENT date (#PCDATA)>
<!ELEMENT text (#PCDATA)>
<!ELEMENT categories (category)*>
<!ELEMENT category (category_id|name|description)*>
<!ELEMENT category_id (#PCDATA)>
<!ELEMENT catgraph (edge)*>
<!ELEMENT edge (edge_from|edge_to)*>
<!ELEMENT edge_from (#PCDATA)>
<!ELEMENT edge_to (#PCDATA)>
<!ELEMENT people (person)*>
<!ELEMENT person (person_id|name|emailaddress|phone|address|homepage|creditcard|profile|person_income|watches)*>
<!ELEMENT person_id (#PCDATA)>
<!ELEMENT emailaddress (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
<!ELEMENT address (street|city|country|zipcode)*>
<!ELEMENT street (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT country (#PCDATA)>
<!ELEMENT zipcode (#PCDATA)>
<!ELEMENT homepage (#PCDATA)>
<!ELEMENT creditcard (#PCDATA)>
<!ELEMENT profile (profile_income|interest|education|gender|business|age)*>
<!ELEMENT profile_income (#PCDATA)>
<!ELEMENT interest (#PCDATA)>
<!ELEMENT education (#PCDATA)>
<!ELEMENT gender (#PCDATA)>
<!ELEMENT business (#PCDATA)>
<!ELEMENT age (#PCDATA)>
<!ELEMENT person_income (#PCDATA)>
<!ELEMENT watches (watch)*>
<!ELEMENT watch (#PCDATA)>
<!ELEMENT open_auctions (open_auction)*>
<!ELEMENT open_auction (open_auction_id|initial|reserve|bidder|current|privacy|itemref|seller|annotation|quantity|type|interval)*>
<!ELEMENT open_auction_id (#PCDATA)>
<!ELEMENT initial (#PCDATA)>
<!ELEMENT reserve (#PCDATA)>
<!ELEMENT bidder (date|time|personref|increase)*>
<!ELEMENT time (#PCDATA)>
<!ELEMENT personref (#PCDATA)>
<!ELEMENT increase (#PCDATA)>
<!ELEMENT current (#PCDATA)>
<!ELEMENT privacy (#PCDATA)>
<!ELEMENT itemref (#PCDATA)>
<!ELEMENT seller (#PCDATA)>
<!ELEMENT annotation (#PCDATA)>
<!ELEMENT type (#PCDATA)>
<!ELEMENT interval (#PCDATA)>
<!ELEMENT closed_auctions (closed_auction)*>
<!ELEMENT closed_auction (seller|buyer|itemref|price|date|quantity|type|annotation)*>
<!ELEMENT buyer (buyer_person)>
<!ELEMENT buyer_person (#PCDATA)>
<!ELEMENT price (#PCDATA)>
"#;

#[cfg(test)]
mod tests {
    use flux_dtd::Dtd;

    #[test]
    fn weak_dtd_parses_and_loses_order() {
        let weak = Dtd::parse(super::XMARK_DTD_WEAK).unwrap();
        assert!(!weak.ord("person", "person_id", "name"));
        assert!(!weak.ord("item", "name", "description"));
        // The site-level section ordering is kept (documents stay valid).
        assert!(weak.ord("site", "people", "closed_auctions"));
    }

    #[test]
    fn weak_dtd_accepts_generated_documents() {
        let weak = Dtd::parse(super::XMARK_DTD_WEAK).unwrap();
        let (doc, _) = flux_xmark::generate_string(&flux_xmark::XmarkConfig::new(32 << 10));
        flux_dtd::validate_str(&weak, &doc).unwrap();
    }
}
