//! Streaming throughput: MB/s of the FluX engine over generated XMark.
//!
//! Seeds the repo's perf trajectory: runs the prepared FluX pipeline with a
//! [`NullSink`] over XMark documents at several sizes and writes the
//! measurements to `BENCH_throughput.json` at the repository root, so
//! successive PRs can compare event-loop speed on identical input.
//!
//! Pass `--large` to extend the sweep to a 32 MB document — the paper's
//! Figure 4 measures up to 100 MB, and the large point keeps the MB/s
//! trajectory honest on inputs that dwarf every cache. CI keeps the small
//! smoke sizes.
//!
//! Honours the shared bench environment knobs (`FLUX_BENCH_SAMPLES`,
//! `FLUX_BENCH_FAST=1` for the CI smoke run, which also shrinks the
//! documents so the binary cannot bit-rot without burning CI minutes).

use std::fmt::Write as _;
use std::time::Instant;

use flux::Engine;
use flux_bench::micro::samples;
use flux_bench::report::merge_throughput;
use flux_xmark::{generate_string, XmarkConfig, PAPER_QUERIES, XMARK_DTD};
use flux_xml::writer::NullSink;

/// One measured (query, document size) cell.
struct Cell {
    query: &'static str,
    doc_bytes: usize,
    events: u64,
    min_seconds: f64,
    mb_per_s: f64,
    events_per_s: f64,
    samples: usize,
}

fn main() {
    let fast = std::env::var_os("FLUX_BENCH_FAST").is_some();
    let large = std::env::args().any(|a| a == "--large");
    let sizes: &[usize] = match (fast, large) {
        (true, _) => &[64 << 10],
        (false, false) => &[256 << 10, 1 << 20, 4 << 20],
        (false, true) => &[256 << 10, 1 << 20, 4 << 20, 32 << 20],
    };
    // Q1 streams with zero buffers (pure event-loop cost); Q20 exercises the
    // capture/buffer path on the same input.
    let queries: Vec<_> =
        PAPER_QUERIES.iter().filter(|q| q.name == "Q1" || q.name == "Q20").collect();

    let engine = Engine::builder().dtd_str(XMARK_DTD).build().unwrap();
    let n = samples();
    let mut cells = Vec::new();
    for &size in sizes {
        let (doc, _) = generate_string(&XmarkConfig::new(size));
        for q in &queries {
            let prepared = engine.prepare(q.source).unwrap();
            // Warmup (also captures the event count for events/s).
            let events = prepared.run_to(doc.as_bytes(), NullSink::default()).unwrap().events;
            let mut best = f64::MAX;
            for _ in 0..n {
                let t = Instant::now();
                prepared.run_to(doc.as_bytes(), NullSink::default()).unwrap();
                best = best.min(t.elapsed().as_secs_f64());
            }
            let cell = Cell {
                query: q.name,
                doc_bytes: doc.len(),
                events,
                min_seconds: best,
                mb_per_s: doc.len() as f64 / 1e6 / best,
                events_per_s: events as f64 / best,
                samples: n,
            };
            println!(
                "throughput/{}/{}B  {:>8.1} MB/s  {:>12.0} events/s  (min of {} samples)",
                cell.query, cell.doc_bytes, cell.mb_per_s, cell.events_per_s, n
            );
            cells.push(cell);
        }
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    // Preserve the `"concurrency"` section the `concurrency` bin merged
    // into the file, so the two bins can run in either order.
    let existing = std::fs::read_to_string(path).ok();
    let json = merge_throughput(existing.as_deref(), &render_json(&cells));
    std::fs::write(path, json).expect("write BENCH_throughput.json");
    println!("wrote {path}");
}

/// Hand-rolled JSON (no serde in the offline build).
fn render_json(cells: &[Cell]) -> String {
    let mut out = String::from("{\n  \"bench\": \"throughput\",\n  \"engine\": \"flux\",\n");
    out.push_str("  \"sink\": \"NullSink\",\n  \"unit\": \"MB/s\",\n  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"query\": \"{}\", \"doc_bytes\": {}, \"events\": {}, \
             \"min_seconds\": {:.6}, \"mb_per_s\": {:.2}, \"events_per_s\": {:.0}, \
             \"samples\": {}}}{}",
            c.query,
            c.doc_bytes,
            c.events,
            c.min_seconds,
            c.mb_per_s,
            c.events_per_s,
            c.samples,
            if i + 1 == cells.len() { "" } else { "," }
        );
    }
    out.push_str("  ]\n}\n");
    out
}
