//! Streaming throughput: MB/s of the FluX engine over generated XMark.
//!
//! Seeds the repo's perf trajectory: runs the prepared FluX pipeline with a
//! [`NullSink`] over XMark documents at several sizes and writes the
//! measurements to `BENCH_throughput.json` at the repository root, so
//! successive PRs can compare event-loop speed on identical input.
//!
//! Every cell is measured as a **same-run A/B** with interleaved samples:
//! tape, pull, tape, pull… — the default batched event-tape delivery
//! against per-event pull delivery forced through the builder. On shared
//! single-core hosts noise arrives in waves longer than one sample, so
//! back-to-back alternation (rather than all of one arm, then the other)
//! exposes both arms to the same machine weather and keeps the ratio
//! honest. Each arm reports min-of-N seconds, MB/s, ns/event and the
//! sample spread.
//!
//! Pass `--large` to extend the sweep to a 32 MB document — the paper's
//! Figure 4 measures up to 100 MB, and the large point keeps the MB/s
//! trajectory honest on inputs that dwarf every cache. CI keeps the small
//! smoke sizes.
//!
//! Honours the shared bench environment knobs (`FLUX_BENCH_SAMPLES`,
//! `FLUX_BENCH_FAST=1` for the CI smoke run, which also shrinks the
//! documents so the binary cannot bit-rot without burning CI minutes).
//! Under `FLUX_FORCE_PULL=1` both arms run per-event and the speedup
//! reads ~1.0 — the kill switch applies to benches too.

use std::fmt::Write as _;
use std::time::Instant;

use flux::xml::DeliveryMode;
use flux::{Engine, PreparedQuery};
use flux_bench::micro::samples;
use flux_bench::report::merge_throughput;
use flux_xmark::{generate_string, XmarkConfig, PAPER_QUERIES, XMARK_DTD};
use flux_xml::writer::NullSink;

/// One delivery arm's measurement.
struct Arm {
    min_seconds: f64,
    mb_per_s: f64,
    events_per_s: f64,
    ns_per_event: f64,
    spread_pct: f64,
}

/// One measured (query, document size) cell: tape arm, pull arm, ratio.
struct Cell {
    query: &'static str,
    doc_bytes: usize,
    events: u64,
    tape: Arm,
    pull: Arm,
    /// `pull.min_seconds / tape.min_seconds` — the same-run A/B figure.
    tape_speedup: f64,
    samples: usize,
}

fn arm(doc: &str, events: u64, best: f64, worst: f64) -> Arm {
    Arm {
        min_seconds: best,
        mb_per_s: doc.len() as f64 / 1e6 / best,
        events_per_s: events as f64 / best,
        ns_per_event: best * 1e9 / events as f64,
        spread_pct: if best > 0.0 { (worst - best) / best * 100.0 } else { 0.0 },
    }
}

/// Measure both arms with **interleaved** samples: tape, pull, tape, pull…
/// On a shared host, noise arrives in waves lasting longer than one sample;
/// measuring one arm's N samples and then the other's lets a wave skew a
/// single arm and corrupt the ratio. Alternating exposes both arms to the
/// same weather, so min-of-N catches the same quiet windows for each.
fn measure_pair(
    tape_q: &PreparedQuery,
    pull_q: &PreparedQuery,
    doc: &str,
    events: u64,
    n: usize,
) -> (Arm, Arm) {
    // Warmup passes (page the document in, size the reusable buffers).
    tape_q.run_to(doc.as_bytes(), NullSink::default()).unwrap();
    pull_q.run_to(doc.as_bytes(), NullSink::default()).unwrap();
    let (mut t_best, mut t_worst) = (f64::MAX, 0.0f64);
    let (mut p_best, mut p_worst) = (f64::MAX, 0.0f64);
    for _ in 0..n {
        let t = Instant::now();
        tape_q.run_to(doc.as_bytes(), NullSink::default()).unwrap();
        let s = t.elapsed().as_secs_f64();
        t_best = t_best.min(s);
        t_worst = t_worst.max(s);
        let t = Instant::now();
        pull_q.run_to(doc.as_bytes(), NullSink::default()).unwrap();
        let s = t.elapsed().as_secs_f64();
        p_best = p_best.min(s);
        p_worst = p_worst.max(s);
    }
    (arm(doc, events, t_best, t_worst), arm(doc, events, p_best, p_worst))
}

fn main() {
    let fast = std::env::var_os("FLUX_BENCH_FAST").is_some();
    let large = std::env::args().any(|a| a == "--large");
    let sizes: &[usize] = match (fast, large) {
        (true, _) => &[64 << 10],
        (false, false) => &[256 << 10, 1 << 20, 4 << 20],
        (false, true) => &[256 << 10, 1 << 20, 4 << 20, 32 << 20],
    };
    // Q1 streams with zero buffers (pure event-loop cost); Q20 exercises the
    // capture/buffer path on the same input.
    let queries: Vec<_> =
        PAPER_QUERIES.iter().filter(|q| q.name == "Q1" || q.name == "Q20").collect();

    let tape_engine = Engine::builder().dtd_str(XMARK_DTD).build().unwrap();
    let pull_engine =
        Engine::builder().dtd_str(XMARK_DTD).delivery(DeliveryMode::PerEvent).build().unwrap();
    let n = samples();
    let mut cells = Vec::new();
    for &size in sizes {
        let (doc, _) = generate_string(&XmarkConfig::new(size));
        for q in &queries {
            let tape_q = tape_engine.prepare(q.source).unwrap();
            let pull_q = pull_engine.prepare(q.source).unwrap();
            let events = tape_q.run_to(doc.as_bytes(), NullSink::default()).unwrap().events;
            let (tape, pull) = measure_pair(&tape_q, &pull_q, &doc, events, n);
            let cell = Cell {
                query: q.name,
                doc_bytes: doc.len(),
                events,
                tape_speedup: pull.min_seconds / tape.min_seconds,
                tape,
                pull,
                samples: n,
            };
            for (arm, name) in [(&cell.tape, "tape"), (&cell.pull, "pull")] {
                println!(
                    "throughput/{}/{}B/{name}  {:>8.1} MB/s  {:>7.1} ns/event  \
                     spread {:>5.1}%  (min of {} samples)",
                    cell.query, cell.doc_bytes, arm.mb_per_s, arm.ns_per_event, arm.spread_pct, n
                );
            }
            println!(
                "throughput/{}/{}B  tape speedup {:.2}x over per-event pull (same run)",
                cell.query, cell.doc_bytes, cell.tape_speedup
            );
            cells.push(cell);
        }
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    // Preserve the `"concurrency"` section the `concurrency` bin merged
    // into the file, so the two bins can run in either order.
    let existing = std::fs::read_to_string(path).ok();
    let json = merge_throughput(existing.as_deref(), &render_json(&cells));
    std::fs::write(path, json).expect("write BENCH_throughput.json");
    println!("wrote {path}");
}

fn arm_json(a: &Arm) -> String {
    format!(
        "\"min_seconds\": {:.6}, \"mb_per_s\": {:.2}, \"events_per_s\": {:.0}, \
         \"ns_per_event\": {:.2}, \"spread_pct\": {:.1}",
        a.min_seconds, a.mb_per_s, a.events_per_s, a.ns_per_event, a.spread_pct
    )
}

/// Hand-rolled JSON (no serde in the offline build). The top-level
/// `min_seconds`/`mb_per_s`/… fields carry the default (tape) arm so the
/// perf trajectory across PRs stays one comparable series; the nested
/// `pull` object and `tape_speedup` carry the same-run A/B.
fn render_json(cells: &[Cell]) -> String {
    let mut out = String::from("{\n  \"bench\": \"throughput\",\n  \"engine\": \"flux\",\n");
    out.push_str("  \"sink\": \"NullSink\",\n  \"unit\": \"MB/s\",\n  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"query\": \"{}\", \"doc_bytes\": {}, \"events\": {}, \
             \"delivery\": \"tape\", {}, \
             \"pull\": {{{}}}, \"tape_speedup\": {:.3}, \"samples\": {}}}{}",
            c.query,
            c.doc_bytes,
            c.events,
            arm_json(&c.tape),
            arm_json(&c.pull),
            c.tape_speedup,
            c.samples,
            if i + 1 == cells.len() { "" } else { "," }
        );
    }
    out.push_str("  ]\n}\n");
    out
}
