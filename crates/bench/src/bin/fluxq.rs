//! `fluxq` — run XQuery− queries over XML files with the FluX engine.
//!
//! ```text
//! fluxq --dtd schema.dtd --query 'QUERY'        data.xml    # run, print result
//! fluxq --dtd schema.dtd --query-file q.xq      data.xml
//! fluxq --dtd schema.dtd --query 'QUERY' --explain          # show plan + buffers
//! fluxq --dtd schema.dtd --query 'QUERY' --stats data.xml   # result + statistics
//! fluxq --dtd schema.dtd --query 'QUERY' --dom   data.xml   # DOM baseline instead
//! ```
//!
//! The query is scheduled against the DTD (normalization → singleton
//! sharing → Figure 2 rewrite → safety check) and executed in one streaming
//! pass over the file.

use std::fs::File;
use std::io::{BufReader, Write};
use std::process::exit;

use flux::Engine;
use flux_baseline::{DomEngine, ProjectionMode};
use flux_dtd::Dtd;
use flux_query::parse_xquery;

struct Args {
    dtd_path: Option<String>,
    query: Option<String>,
    query_file: Option<String>,
    data: Option<String>,
    explain: bool,
    stats: bool,
    dom: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: fluxq --dtd <schema.dtd> (--query <q> | --query-file <f>) [data.xml]\n\
         \x20      --explain   print the FluX plan and buffer trees, do not run\n\
         \x20      --stats     print run statistics to stderr\n\
         \x20      --dom       evaluate with the DOM baseline (projection on)"
    );
    exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        dtd_path: None,
        query: None,
        query_file: None,
        data: None,
        explain: false,
        stats: false,
        dom: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dtd" => args.dtd_path = it.next(),
            "--query" => args.query = it.next(),
            "--query-file" => args.query_file = it.next(),
            "--explain" => args.explain = true,
            "--stats" => args.stats = true,
            "--dom" => args.dom = true,
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') && args.data.is_none() => {
                args.data = Some(other.to_string())
            }
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
    }
    args
}

fn die(context: &str, err: impl std::fmt::Display) -> ! {
    eprintln!("fluxq: {context}: {err}");
    exit(1);
}

fn main() {
    let args = parse_args();
    let Some(dtd_path) = &args.dtd_path else { usage() };
    let dtd_src = std::fs::read_to_string(dtd_path)
        .unwrap_or_else(|e| die(&format!("reading {dtd_path}"), e));
    let dtd = Dtd::parse(&dtd_src).unwrap_or_else(|e| die("parsing DTD", e));

    let query_src = match (&args.query, &args.query_file) {
        (Some(q), None) => q.clone(),
        (None, Some(f)) => {
            std::fs::read_to_string(f).unwrap_or_else(|e| die(&format!("reading {f}"), e))
        }
        _ => usage(),
    };
    let query = parse_xquery(&query_src).unwrap_or_else(|e| die("parsing query", e));

    // Prepare once (parse → schedule → safety check → buffer plan); every
    // execution below reuses this compilation.
    let engine = Engine::new(dtd);
    let prepared = engine.prepare_expr(&query).unwrap_or_else(|e| die("scheduling query", e));

    if args.explain {
        println!("FluX plan:\n  {}\n", prepared.plan());
        let buffers = prepared.buffer_plan();
        if buffers.is_empty() {
            println!("buffers: none — the query streams in constant memory");
        } else {
            println!("buffers (scope variable → buffer tree, • = whole subtree):");
            for (var, tree) in buffers {
                println!("  ${var}: {tree}");
            }
        }
        return;
    }

    let Some(data) = &args.data else { usage() };
    let file = File::open(data).unwrap_or_else(|e| die(&format!("opening {data}"), e));
    let input = BufReader::with_capacity(1 << 20, file);

    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    if args.dom {
        let dom = DomEngine { projection: ProjectionMode::Paths, memory_cap: None };
        let stats = dom
            .prepare(&query)
            .run_to(input, &mut out)
            .unwrap_or_else(|e| die("evaluating (DOM)", e));
        out.write_all(b"\n").ok();
        if args.stats {
            eprintln!(
                "fluxq [dom]: tree {} bytes, {} nodes, output {} bytes",
                stats.tree_bytes, stats.nodes, stats.output_bytes
            );
        }
    } else {
        let stats =
            prepared.run_to(input, &mut out).unwrap_or_else(|e| die("evaluating (streaming)", e));
        out.write_all(b"\n").ok();
        if args.stats {
            eprintln!(
                "fluxq: peak buffer {} bytes, {} events, {} on / {} on-first firings, output {} bytes",
                stats.peak_buffer_bytes,
                stats.events,
                stats.on_firings,
                stats.on_first_firings,
                stats.output_bytes
            );
        }
    }
}
