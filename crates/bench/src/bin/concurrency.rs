//! Mass-concurrency throughput: many sessions multiplexed per shard, and
//! cross-core scaling of the sharded [`flux::Runtime`].
//!
//! Two measurements, merged into `BENCH_throughput.json` under the
//! `"concurrency"` key (shared marker protocol with the `throughput` bin —
//! the bins can run in either order):
//!
//! * **single shard, inline** — the sans-IO `Session` executes inline, so
//!   one thread drives thousands of concurrent streams through a
//!   [`flux::Shard`]; records aggregate MB/s and `sessions_per_thread`
//!   (the historical figure tracked since PR 3);
//! * **multi-shard scaling** — the same fleet spread over a
//!   [`flux::Runtime`] at 1, 2, … worker shards (same harness at every
//!   point, so the ratios are honest): records per-shard-count aggregate
//!   MB/s in a `"scaling"` array. The PR-4 acceptance bar is ≥ 1.5×
//!   aggregate MB/s at 4 shards vs 1 shard on the same hardware.
//!
//! Honours the shared bench environment knobs (`FLUX_BENCH_SAMPLES`,
//! `FLUX_BENCH_FAST=1` for the CI smoke run, which shrinks the fleet and
//! sweeps shards ∈ {1, 2}).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use flux::prelude::*;
use flux_bench::micro::samples;
use flux_bench::report::merge_concurrency;
use flux_xmark::{generate_string, XmarkConfig, PAPER_QUERIES, XMARK_DTD};
use flux_xml::writer::NullSink;

const CHUNK: usize = 4096;

struct Scaling {
    shards: usize,
    min_seconds: f64,
    mb_per_s: f64,
}

fn main() {
    let fast = std::env::var_os("FLUX_BENCH_FAST").is_some();
    let sessions: usize = if fast { 1_000 } else { 10_000 };
    let doc_size: usize = if fast { 4 << 10 } else { 16 << 10 };
    let shard_counts: &[usize] = if fast { &[1, 2] } else { &[1, 2, 4] };

    let engine = Engine::builder().dtd_str(XMARK_DTD).build().unwrap();
    let q1 = PAPER_QUERIES.iter().find(|q| q.name == "Q1").expect("Q1 present");
    let prepared = engine.prepare(q1.source).unwrap();
    let (doc, _) = generate_string(&XmarkConfig::new(doc_size));
    let reference = prepared.run_str(&doc).unwrap();

    let n = samples().min(5);

    // ---- single shard, inline on this thread (sessions_per_thread) ----
    let mut best = f64::MAX;
    let mut peak_set_bytes = 0usize;
    for _ in 0..n {
        let t = Instant::now();
        let mut shard = Shard::new();
        let ids: Vec<SessionId> =
            (0..sessions).map(|_| shard.open(&prepared, NullSink::default())).collect();
        let bytes = doc.as_bytes();
        let mut off = 0;
        while off < bytes.len() {
            let end = (off + CHUNK).min(bytes.len());
            for &id in &ids {
                let _ = shard.feed(id, &bytes[off..end]).unwrap();
            }
            off = end;
        }
        peak_set_bytes = peak_set_bytes.max(shard.buffered_bytes());
        for id in ids {
            let fin = shard.finish(id).unwrap();
            assert_eq!(fin.stats, reference.stats, "multiplexed run must match one-shot");
        }
        best = best.min(t.elapsed().as_secs_f64());
    }
    let total_bytes = doc.len() as f64 * sessions as f64;
    let mb_per_s = total_bytes / 1e6 / best;
    let sessions_per_s = sessions as f64 / best;
    println!(
        "concurrency/{} sessions × {}B on 1 thread  {:>8.1} MB/s aggregate  \
         {:>9.0} sessions/s  peak set memory {}B  (min of {n} samples)",
        sessions,
        doc.len(),
        mb_per_s,
        sessions_per_s,
        peak_set_bytes,
    );

    // ---- multi-shard scaling over the Runtime ----
    let chunks: Vec<Arc<[u8]>> = doc.as_bytes().chunks(CHUNK).map(Arc::from).collect();
    let mut scaling = Vec::new();
    for &shards in shard_counts {
        let mut best = f64::MAX;
        for _ in 0..n {
            let t = Instant::now();
            let mut rt: Runtime<NullSink> = Runtime::new(shards);
            let ids: Vec<RuntimeId> =
                (0..sessions).map(|_| rt.open(&prepared, NullSink::default())).collect();
            for chunk in &chunks {
                for &id in &ids {
                    rt.feed_shared(id, Arc::clone(chunk));
                }
            }
            for &id in &ids {
                rt.finish(id);
            }
            let mut done = 0usize;
            while done < sessions {
                match rt.wait_event().expect("workers alive") {
                    RuntimeEvent::Finished { result, .. } => {
                        let stats = result.expect("run succeeds");
                        assert_eq!(stats, reference.stats, "sharded run must match one-shot");
                        done += 1;
                    }
                    other => panic!("unexpected event {other:?}"),
                }
            }
            drop(rt);
            best = best.min(t.elapsed().as_secs_f64());
        }
        let mb = total_bytes / 1e6 / best;
        println!(
            "concurrency/{sessions} sessions × {}B on {shards} shard(s)  {mb:>8.1} MB/s \
             aggregate  (min of {n} samples)",
            doc.len(),
        );
        scaling.push(Scaling { shards, min_seconds: best, mb_per_s: mb });
    }
    if let (Some(one), Some(top)) =
        (scaling.iter().find(|s| s.shards == 1), scaling.iter().max_by_key(|s| s.shards))
    {
        if top.shards > 1 {
            println!(
                "concurrency/scaling  {}-shard vs 1-shard: {:.2}x",
                top.shards,
                top.mb_per_s / one.mb_per_s
            );
        }
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    let section = render_section(sessions, doc.len(), best, mb_per_s, sessions_per_s, n, &scaling);
    let existing = std::fs::read_to_string(path).ok();
    std::fs::write(path, merge_concurrency(existing.as_deref(), &section))
        .expect("write BENCH_throughput.json");
    println!("wrote {path}");
}

/// The `"concurrency"` section value (hand-rolled JSON — no serde in the
/// offline build).
fn render_section(
    sessions: usize,
    doc_bytes: usize,
    min_seconds: f64,
    mb_per_s: f64,
    sessions_per_s: f64,
    samples: usize,
    scaling: &[Scaling],
) -> String {
    // Cross-core ratios are only meaningful up to the host's parallelism:
    // record it so a 4-shard figure from a 1-core container reads as what
    // it is.
    let host_cpus =
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    let mut out = format!(
        "{{\"bin\": \"concurrency\", \"threads\": 1, \"host_cpus\": {host_cpus}, \
         \"sessions_per_thread\": {sessions}, \"doc_bytes\": {doc_bytes}, \
         \"chunk_bytes\": {CHUNK}, \"min_seconds\": {min_seconds:.6}, \
         \"aggregate_mb_per_s\": {mb_per_s:.2}, \"sessions_per_s\": {sessions_per_s:.0}, \
         \"samples\": {samples}, \"scaling\": ["
    );
    for (i, s) in scaling.iter().enumerate() {
        let _ = write!(
            out,
            "{}{{\"shards\": {}, \"min_seconds\": {:.6}, \"aggregate_mb_per_s\": {:.2}}}",
            if i == 0 { "" } else { ", " },
            s.shards,
            s.min_seconds,
            s.mb_per_s,
        );
    }
    out.push_str("]}");
    out
}
