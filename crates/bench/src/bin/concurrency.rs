//! Mass-concurrency throughput: many sessions multiplexed on one thread.
//!
//! The sans-IO `Session` executes inline — no worker thread, no pipe — so
//! one thread can drive tens of thousands of concurrent streams. This bin
//! opens a fleet of sessions over the prepared XMark Q1 pipeline, feeds
//! them round-robin in small chunks (every session mid-parse while every
//! other advances), and records the aggregate throughput plus a
//! `sessions_per_thread` figure into `BENCH_throughput.json` (merged into
//! the file the `throughput` bin writes, under a `"concurrency"` key).
//!
//! Honours the shared bench environment knobs (`FLUX_BENCH_SAMPLES`,
//! `FLUX_BENCH_FAST=1` for the CI smoke run).

use std::fmt::Write as _;
use std::time::Instant;

use flux::prelude::*;
use flux_bench::micro::samples;
use flux_xmark::{generate_string, XmarkConfig, PAPER_QUERIES, XMARK_DTD};
use flux_xml::writer::NullSink;

const CHUNK: usize = 4096;

fn main() {
    let fast = std::env::var_os("FLUX_BENCH_FAST").is_some();
    let sessions: usize = if fast { 1_000 } else { 10_000 };
    let doc_size: usize = if fast { 4 << 10 } else { 16 << 10 };

    let engine = Engine::builder().dtd_str(XMARK_DTD).build().unwrap();
    let q1 = PAPER_QUERIES.iter().find(|q| q.name == "Q1").expect("Q1 present");
    let prepared = engine.prepare(q1.source).unwrap();
    let (doc, _) = generate_string(&XmarkConfig::new(doc_size));
    let reference = prepared.run_str(&doc).unwrap();

    let n = samples().min(5);
    let mut best = f64::MAX;
    let mut peak_set_bytes = 0usize;
    for _ in 0..n {
        let t = Instant::now();
        let mut set = SessionSet::new();
        let ids: Vec<SessionId> =
            (0..sessions).map(|_| set.open(&prepared, NullSink::default())).collect();
        let bytes = doc.as_bytes();
        let mut off = 0;
        while off < bytes.len() {
            let end = (off + CHUNK).min(bytes.len());
            for &id in &ids {
                set.feed(id, &bytes[off..end]).unwrap();
            }
            off = end;
        }
        peak_set_bytes = peak_set_bytes.max(set.buffered_bytes());
        for id in ids {
            let fin = set.finish(id).unwrap();
            assert_eq!(fin.stats, reference.stats, "multiplexed run must match one-shot");
        }
        best = best.min(t.elapsed().as_secs_f64());
    }

    let total_bytes = doc.len() as f64 * sessions as f64;
    let mb_per_s = total_bytes / 1e6 / best;
    let sessions_per_s = sessions as f64 / best;
    println!(
        "concurrency/{} sessions × {}B on 1 thread  {:>8.1} MB/s aggregate  \
         {:>9.0} sessions/s  peak set memory {}B  (min of {n} samples)",
        sessions,
        doc.len(),
        mb_per_s,
        sessions_per_s,
        peak_set_bytes,
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    write_merged(path, sessions, doc.len(), best, mb_per_s, sessions_per_s, n);
    println!("wrote {path}");
}

/// Merge the concurrency figures into `BENCH_throughput.json` without
/// disturbing the `throughput` bin's results (hand-rolled JSON — no serde
/// in the offline build). Idempotent: a previous `"concurrency"` section
/// is replaced.
fn write_merged(
    path: &str,
    sessions: usize,
    doc_bytes: usize,
    min_seconds: f64,
    mb_per_s: f64,
    sessions_per_s: f64,
    samples: usize,
) {
    const MARKER: &str = "\n  ,\"concurrency\"";
    let mut out = match std::fs::read_to_string(path) {
        Ok(s) => match s.find(MARKER) {
            Some(i) => s[..i].to_string(),
            None => {
                let t = s.trim_end();
                t.strip_suffix('}').unwrap_or(t).trim_end().to_string()
            }
        },
        // No throughput results yet: a minimal head that still uses the
        // shared marker format, so either bin can run first and later runs
        // of both keep merging instead of duplicating keys.
        Err(_) => "{\n  \"bench\": \"throughput\"".to_string(),
    };
    out.push_str("\n  ,");
    let _ = write!(
        out,
        "\"concurrency\": {{\"bin\": \"concurrency\", \"threads\": 1, \
         \"sessions_per_thread\": {sessions}, \"doc_bytes\": {doc_bytes}, \
         \"chunk_bytes\": {CHUNK}, \"min_seconds\": {min_seconds:.6}, \
         \"aggregate_mb_per_s\": {mb_per_s:.2}, \"sessions_per_s\": {sessions_per_s:.0}, \
         \"samples\": {samples}}}\n}}\n"
    );
    std::fs::write(path, out).expect("write BENCH_throughput.json");
}
