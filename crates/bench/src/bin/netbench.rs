//! Network throughput: aggregate MB/s through `flux-serve` over M loopback
//! connections.
//!
//! The `concurrency` bin measures the in-process ceiling (sessions
//! multiplexed straight on a `Shard`/`Runtime`); this bin measures the
//! same engine behind the full network stack — wire framing, non-blocking
//! socket I/O, the readiness loop, and the per-connection output seam —
//! so the protocol overhead stays an honest, tracked number. Results merge
//! into `BENCH_throughput.json` under the `"netbench"` key (order-invariant
//! with the other bins' sections — see `flux_bench::report`).
//!
//! Honours the shared bench environment knobs (`FLUX_BENCH_SAMPLES`,
//! `FLUX_BENCH_FAST=1` for the CI smoke run, which shrinks the fleet and
//! the document).

use std::fmt::Write as _;
use std::time::Instant;

use flux::prelude::*;
use flux_bench::micro::samples;
use flux_bench::report::merge_section;
use flux_serve::{Client, Server, ServerConfig};
use flux_xmark::{generate_string, XmarkConfig, PAPER_QUERIES, XMARK_DTD};

fn main() {
    let fast = std::env::var_os("FLUX_BENCH_FAST").is_some();
    let connections: usize = if fast { 8 } else { 32 };
    let doc_size: usize = if fast { 32 << 10 } else { 256 << 10 };
    let chunk: usize = 8 << 10;
    let shards: usize = 2;

    let engine = Engine::builder().dtd_str(XMARK_DTD).build().unwrap();
    let q1 = PAPER_QUERIES.iter().find(|q| q.name == "Q1").expect("Q1 present");
    let prepared = engine.prepare(q1.source).unwrap();
    let (doc, _) = generate_string(&XmarkConfig::new(doc_size));
    let reference = prepared.run_str(&doc).unwrap();

    let mut registry = QueryRegistry::new();
    registry.register("q1", prepared);
    let cfg = ServerConfig { shards, ..ServerConfig::default() };
    let server = Server::spawn("127.0.0.1:0", registry, cfg).expect("server binds");
    let addr = server.addr();

    let n = samples().min(5);
    let mut best = f64::MAX;
    for _ in 0..n {
        let t = Instant::now();
        let handles: Vec<_> = (0..connections)
            .map(|_| {
                let doc = doc.clone();
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let outcome = client.run_document("q1", doc.as_bytes(), chunk).expect("run");
                    outcome.done.expect("finished")
                })
            })
            .collect();
        for h in handles {
            let (events, output_bytes) = h.join().expect("client thread");
            assert_eq!(events, reference.stats.events, "server run must match one-shot");
            assert_eq!(output_bytes, reference.stats.output_bytes);
        }
        best = best.min(t.elapsed().as_secs_f64());
    }
    server.shutdown().expect("clean shutdown");

    let total_bytes = doc.len() as f64 * connections as f64;
    let mb_per_s = total_bytes / 1e6 / best;
    println!(
        "netbench/{connections} connections × {}B over loopback ({shards} shards)  \
         {mb_per_s:>8.1} MB/s aggregate  (min of {n} samples)",
        doc.len(),
    );

    let mut section = String::new();
    let _ = write!(
        section,
        "{{\"bin\": \"netbench\", \"connections\": {connections}, \"doc_bytes\": {}, \
         \"chunk_bytes\": {chunk}, \"shards\": {shards}, \"min_seconds\": {best:.6}, \
         \"aggregate_mb_per_s\": {mb_per_s:.2}, \"samples\": {n}}}",
        doc.len(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    let existing = std::fs::read_to_string(path).ok();
    std::fs::write(path, merge_section(existing.as_deref(), "netbench", &section))
        .expect("write BENCH_throughput.json");
    println!("wrote {path}");
}
