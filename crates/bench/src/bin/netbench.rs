//! Network throughput: aggregate MB/s through `flux-serve` over M loopback
//! connections.
//!
//! The `concurrency` bin measures the in-process ceiling (sessions
//! multiplexed straight on a `Shard`/`Runtime`); this bin measures the
//! same engine behind the full network stack — wire framing, non-blocking
//! socket I/O, the readiness loop, and the per-connection output seam —
//! so the protocol overhead stays an honest, tracked number. Results merge
//! into `BENCH_throughput.json` under the `"netbench"` key (order-invariant
//! with the other bins' sections — see `flux_bench::report`).
//!
//! An A/B arm prices the observability layer: the same fleet against a
//! server with a full `MetricsRegistry` wired through every layer *and*
//! an admin scraper hitting the Prometheus endpoint at 10 Hz, versus the
//! metrics-free baseline. Both servers stay up together and samples are
//! interleaved (alternating which arm runs first each round) so
//! machine-load drift cancels instead of masquerading as overhead. The
//! delta merges under `"observability"` and is asserted `< 2%` (override
//! with `FLUX_BENCH_OBS_TOLERANCE`, as a fraction; the assert is skipped
//! in the `FLUX_BENCH_FAST` CI smoke, where the run is too short to be
//! stable).
//!
//! Honours the shared bench environment knobs (`FLUX_BENCH_SAMPLES`,
//! `FLUX_BENCH_FAST=1` for the CI smoke run, which shrinks the fleet and
//! the document).

use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use flux::prelude::*;
use flux::MetricsRegistry;
use flux_bench::micro::samples;
use flux_bench::report::merge_section;
use flux_serve::{Client, Server, ServerConfig};
use flux_xmark::{generate_string, XmarkConfig, PAPER_QUERIES, XMARK_DTD};

/// Run the whole fleet once against `addr`; wall-clock seconds.
fn fleet_once(
    addr: SocketAddr,
    connections: usize,
    doc: &Arc<String>,
    chunk: usize,
    reference: &RunOutcome,
) -> f64 {
    let t = Instant::now();
    let handles: Vec<_> = (0..connections)
        .map(|_| {
            let doc = Arc::clone(doc);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let outcome = client.run_document("q1", doc.as_bytes(), chunk).expect("run");
                outcome.done.expect("finished")
            })
        })
        .collect();
    for h in handles {
        let (events, output_bytes) = h.join().expect("client thread");
        assert_eq!(events, reference.stats.events, "server run must match one-shot");
        assert_eq!(output_bytes, reference.stats.output_bytes);
    }
    t.elapsed().as_secs_f64()
}

/// One blocking HTTP scrape of the admin endpoint; bytes read.
fn scrape_admin(addr: SocketAddr) -> usize {
    let Ok(mut stream) = TcpStream::connect(addr) else { return 0 };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(1)));
    if stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").is_err() {
        return 0;
    }
    let mut body = Vec::new();
    let _ = stream.read_to_end(&mut body);
    body.len()
}

fn main() {
    let fast = std::env::var_os("FLUX_BENCH_FAST").is_some();
    let connections: usize = if fast { 8 } else { 32 };
    let doc_size: usize = if fast { 32 << 10 } else { 256 << 10 };
    let chunk: usize = 8 << 10;
    let shards: usize = 2;

    let engine = Engine::builder().dtd_str(XMARK_DTD).build().unwrap();
    let q1 = PAPER_QUERIES.iter().find(|q| q.name == "Q1").expect("Q1 present");
    let prepared = engine.prepare(q1.source).unwrap();
    let (doc, _) = generate_string(&XmarkConfig::new(doc_size));
    let reference = prepared.run_str(&doc).unwrap();
    let doc = Arc::new(doc);

    // Two servers, alive together: the bare baseline and the fully
    // instrumented one (registry wired through every layer + admin
    // endpoint under a live 10 Hz scraper). Samples are *interleaved* —
    // each round runs the fleet against both, alternating which goes
    // first — so machine-load drift lands on both arms equally instead of
    // masquerading as instrumentation overhead.
    let mut registry = QueryRegistry::new();
    registry.register("q1", prepared.clone());
    let cfg = ServerConfig { shards, ..ServerConfig::default() };
    let server_base = Server::spawn("127.0.0.1:0", registry, cfg).expect("server binds");

    let metrics = MetricsRegistry::new();
    let mut registry = QueryRegistry::new();
    registry.register("q1", prepared);
    let cfg = ServerConfig {
        shards,
        metrics: Some(metrics.clone()),
        admin: Some("127.0.0.1:0".into()),
        ..ServerConfig::default()
    };
    let server_obs = Server::spawn("127.0.0.1:0", registry, cfg).expect("server binds");
    let admin = server_obs.admin_addr().expect("admin listener");

    let stop = Arc::new(AtomicBool::new(false));
    let scrapes = Arc::new(AtomicU64::new(0));
    let scraper = {
        let stop = Arc::clone(&stop);
        let scrapes = Arc::clone(&scrapes);
        std::thread::spawn(move || {
            // 10 Hz, the classic aggressive-Prometheus cadence.
            while !stop.load(Ordering::Relaxed) {
                if scrape_admin(admin) > 0 {
                    scrapes.fetch_add(1, Ordering::Relaxed);
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        })
    };

    let n = samples();
    let (mut best, mut best_obs) = (f64::MAX, f64::MAX);
    for round in 0..n {
        let arms: [bool; 2] = if round % 2 == 0 { [false, true] } else { [true, false] };
        for instrumented in arms {
            let addr = if instrumented { server_obs.addr() } else { server_base.addr() };
            let s = fleet_once(addr, connections, &doc, chunk, &reference);
            if instrumented {
                best_obs = best_obs.min(s);
            } else {
                best = best.min(s);
            }
        }
    }
    stop.store(true, Ordering::Relaxed);
    scraper.join().expect("scraper thread");

    // The instrumented arm really measured the instrumented path: every
    // one of its fleet runs is in the registry the scraper was reading.
    let snap = metrics.snapshot();
    assert_eq!(
        snap.counter("flux_engine_runs_total"),
        (connections * n) as u64,
        "every run of the instrumented arm must be counted"
    );
    server_base.shutdown().expect("clean shutdown");
    server_obs.shutdown().expect("clean shutdown");

    let total_bytes = doc.len() as f64 * connections as f64;
    let mb_per_s = total_bytes / 1e6 / best;
    println!(
        "netbench/{connections} connections × {}B over loopback ({shards} shards)  \
         {mb_per_s:>8.1} MB/s aggregate  (min of {n} samples)",
        doc.len(),
    );

    let mut section = String::new();
    let _ = write!(
        section,
        "{{\"bin\": \"netbench\", \"connections\": {connections}, \"doc_bytes\": {}, \
         \"chunk_bytes\": {chunk}, \"shards\": {shards}, \"min_seconds\": {best:.6}, \
         \"aggregate_mb_per_s\": {mb_per_s:.2}, \"samples\": {n}}}",
        doc.len(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    let existing = std::fs::read_to_string(path).ok();
    std::fs::write(path, merge_section(existing.as_deref(), "netbench", &section))
        .expect("write BENCH_throughput.json");

    let mb_per_s_obs = total_bytes / 1e6 / best_obs;
    let delta = (best_obs - best) / best;
    let scraped = scrapes.load(Ordering::Relaxed);
    println!(
        "netbench/observability: {mb_per_s_obs:>8.1} MB/s with metrics + {scraped} scrapes at \
         10 Hz  ({:+.2}% vs disabled)",
        delta * 100.0
    );

    let tolerance: f64 =
        std::env::var("FLUX_BENCH_OBS_TOLERANCE").ok().and_then(|v| v.parse().ok()).unwrap_or(0.02);
    if fast {
        println!("netbench/observability: FLUX_BENCH_FAST set, delta assert skipped");
    } else {
        assert!(
            delta < tolerance,
            "observability overhead {:.2}% exceeds the {:.2}% budget",
            delta * 100.0,
            tolerance * 100.0
        );
    }

    let mut section = String::new();
    let _ = write!(
        section,
        "{{\"bin\": \"netbench\", \"scrape_hz\": 10, \"scrapes\": {scraped}, \
         \"min_seconds_metrics_off\": {best:.6}, \"min_seconds_metrics_on\": {best_obs:.6}, \
         \"aggregate_mb_per_s_metrics_on\": {mb_per_s_obs:.2}, \"delta_fraction\": {delta:.6}, \
         \"tolerance_fraction\": {tolerance}, \"asserted\": {}, \"samples\": {n}}}",
        !fast
    );
    let existing = std::fs::read_to_string(path).ok();
    std::fs::write(path, merge_section(existing.as_deref(), "observability", &section))
        .expect("write BENCH_throughput.json");
    println!("wrote {path}");
}
