//! Shared single-pass fan-out vs M independent runs.
//!
//! The dissemination question behind the fan-out subsystem: with M
//! standing subscriptions over one document stream, how much does parsing
//! the document **once** (a [`SubscriptionSet`] compiled into one shared
//! plan) save over running M independent sessions? Sweeps M ∈ {1, 4, 16,
//! 64} subscribers cycling the paper's *streaming* queries Q1/Q13/Q20
//! (the joins Q8/Q11 are quadratic in document size — their compute would
//! swamp the parse share this benchmark isolates) over an XMark document,
//! and records both modes plus the speedup under the `"fanout"` key of
//! `BENCH_throughput.json` (shared marker protocol — the bench bins run in
//! any order).
//!
//! Both modes run the same facade path (incremental sessions fed in equal
//! chunks) and are verified against the one-shot reference stats, so the
//! ratio compares work, not harness shape.
//!
//! Honours `FLUX_BENCH_SAMPLES` and `FLUX_BENCH_FAST=1` (CI smoke run:
//! small document, M ∈ {1, 4, 16}).

use std::fmt::Write as _;
use std::time::Instant;

use flux::prelude::*;
use flux_bench::micro::samples;
use flux_bench::report::merge_section;
use flux_xmark::{generate_string, XmarkConfig, PAPER_QUERIES, XMARK_DTD};
use flux_xml::writer::NullSink;

const CHUNK: usize = 4096;

/// The streaming trio the subscribers cycle through.
const STREAMING: &[&str] = &["Q1", "Q13", "Q20"];

struct Run {
    m: usize,
    shared_seconds: f64,
    independent_seconds: f64,
    speedup: f64,
    shared_mb_per_s: f64,
}

fn main() {
    let fast = std::env::var_os("FLUX_BENCH_FAST").is_some();
    let doc_bytes: usize = if fast { 256 << 10 } else { 4 << 20 };
    let fleet: &[usize] = if fast { &[1, 4, 16] } else { &[1, 4, 16, 64] };

    let engine = Engine::builder().dtd_str(XMARK_DTD).build().unwrap();
    let (doc, _) = generate_string(&XmarkConfig::new(doc_bytes));
    let mut registry = QueryRegistry::new();
    let mut references = Vec::new();
    for name in STREAMING {
        let q = PAPER_QUERIES.iter().find(|q| q.name == *name).expect("paper query");
        let prepared = engine.prepare(q.source).unwrap();
        references.push(prepared.run_str(&doc).unwrap().stats);
        registry.register(*name, prepared);
    }

    let n = samples().min(5);
    let bytes = doc.as_bytes();
    let mut runs = Vec::new();
    for &m in fleet {
        let ids: Vec<&str> = (0..m).map(|i| STREAMING[i % STREAMING.len()]).collect();
        let set = SubscriptionSet::compile_subset(&registry, &ids).unwrap();

        // ---- shared: one parse fanned out to all M subscribers ----
        let mut shared_best = f64::MAX;
        for _ in 0..n {
            let t = Instant::now();
            let mut session = set.session((0..m).map(|_| NullSink::default()).collect());
            for chunk in bytes.chunks(CHUNK) {
                session.feed(chunk).unwrap();
            }
            for (i, (res, _)) in session.finish_parts().into_iter().enumerate() {
                let stats = res.expect("shared run succeeds");
                assert_eq!(
                    stats,
                    references[i % STREAMING.len()],
                    "shared subscriber must match its one-shot run"
                );
            }
            shared_best = shared_best.min(t.elapsed().as_secs_f64());
        }

        // ---- independent: M sessions, each parsing the document itself ----
        let mut indep_best = f64::MAX;
        for _ in 0..n {
            let t = Instant::now();
            let mut sessions: Vec<_> = ids
                .iter()
                .map(|id| registry.get(id).unwrap().session(NullSink::default()))
                .collect();
            for chunk in bytes.chunks(CHUNK) {
                for s in &mut sessions {
                    s.feed(chunk).unwrap();
                }
            }
            for (i, s) in sessions.into_iter().enumerate() {
                let fin = s.finish().expect("independent run succeeds");
                assert_eq!(fin.stats, references[i % STREAMING.len()]);
            }
            indep_best = indep_best.min(t.elapsed().as_secs_f64());
        }

        let speedup = indep_best / shared_best;
        let shared_mb_per_s = bytes.len() as f64 / 1e6 / shared_best;
        println!(
            "fanout/M={m:<3} shared {shared_best:>8.4}s  independent {indep_best:>8.4}s  \
             speedup {speedup:>6.2}x  (doc {}B, min of {n} samples)",
            bytes.len(),
        );
        runs.push(Run {
            m,
            shared_seconds: shared_best,
            independent_seconds: indep_best,
            speedup,
            shared_mb_per_s,
        });
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    let section = render_section(doc.len(), n, &runs);
    let existing = std::fs::read_to_string(path).ok();
    std::fs::write(path, merge_section(existing.as_deref(), "fanout", &section))
        .expect("write BENCH_throughput.json");
    println!("wrote {path}");
}

/// The `"fanout"` section value (hand-rolled JSON — no serde in the
/// offline build).
fn render_section(doc_bytes: usize, samples: usize, runs: &[Run]) -> String {
    let host_cpus =
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    let mut out = format!(
        "{{\"bin\": \"fanout\", \"host_cpus\": {host_cpus}, \"doc_bytes\": {doc_bytes}, \
         \"chunk_bytes\": {CHUNK}, \"queries\": [\"Q1\", \"Q13\", \"Q20\"], \
         \"samples\": {samples}, \"runs\": ["
    );
    for (i, r) in runs.iter().enumerate() {
        let _ = write!(
            out,
            "{}{{\"m\": {}, \"shared_seconds\": {:.6}, \"independent_seconds\": {:.6}, \
             \"speedup\": {:.2}, \"shared_mb_per_s\": {:.2}}}",
            if i == 0 { "" } else { ", " },
            r.m,
            r.shared_seconds,
            r.independent_seconds,
            r.speedup,
            r.shared_mb_per_s,
        );
    }
    out.push_str("]}");
    out
}
