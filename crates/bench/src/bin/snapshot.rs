//! flux-state persistence costs: snapshot/restore latency and idle spill.
//!
//! Two questions the serializable-sessions subsystem must answer with
//! numbers, not adjectives:
//!
//! 1. **Per-session snapshot/restore latency and envelope size** — a
//!    fleet of idle XMark Q1 sessions parked mid-document under the
//!    weakened DTD is snapshotted and restored one by one; the bench
//!    records microseconds and bytes per session. (The idle XMark
//!    envelope is tiny — the paper's streaming discipline means a
//!    quiescent session carries scope stacks, not documents.)
//! 2. **Suspend-to-disk RSS delta** — a [`Runtime`] fleet whose sessions
//!    each hold a deliberately large capture buffer (the weak-bib
//!    "author parked until the book closes" scenario from the admission
//!    tests) is spilled with [`Runtime::suspend`]; resident-set size is
//!    sampled before and after (Linux `/proc/self/status`, 0 elsewhere)
//!    together with the total spilled bytes. The delta is reported as
//!    measured — allocator retention can keep it below the spilled total.
//!
//! Results land under the `"snapshot"` key of `BENCH_throughput.json`
//! (shared marker protocol — the bench bins run in any order). Honours
//! `FLUX_BENCH_FAST=1` (CI smoke run: smaller fleets, small document).

use std::sync::Arc;
use std::time::{Duration, Instant};

use flux::prelude::*;
use flux_bench::report::merge_section;
use flux_bench::XMARK_DTD_WEAK;
use flux_xmark::{generate_string, XmarkConfig, PAPER_QUERIES};
use flux_xml::writer::NullSink;

const CHUNK: usize = 4096;

/// The weak schema parks author text until the book closes — each idle
/// session in the suspend fleet holds `HELD_BYTES` of capture buffer.
const WEAK_BIB_DTD: &str = "<!ELEMENT bib (book)*><!ELEMENT book (title|author)*>\
    <!ELEMENT title (#PCDATA)><!ELEMENT author (#PCDATA)>";
const BIB_QUERY: &str = "<results>{ for $b in $ROOT/bib/book return \
    <result> {$b/title} {$b/author} </result> }</results>";

fn rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmRSS:"))
                .and_then(|l| l.split_whitespace().nth(1).and_then(|kb| kb.parse().ok()))
        })
        .unwrap_or(0)
}

fn main() {
    // glibc's dynamic mmap threshold ratchets above the parked-buffer size
    // after the first few frees, after which released session state stays
    // on the brk heap and the RSS delta under-reports the spill. The
    // tunable is read once at malloc init, so pin it by re-exec'ing
    // ourselves with it set.
    if cfg!(target_os = "linux") && std::env::var_os("MALLOC_MMAP_THRESHOLD_").is_none() {
        let exe = std::env::current_exe().expect("own path");
        let status = std::process::Command::new(exe)
            .env("MALLOC_MMAP_THRESHOLD_", "131072")
            .status()
            .expect("re-exec with a pinned mmap threshold");
        std::process::exit(status.code().unwrap_or(1));
    }

    let fast = std::env::var_os("FLUX_BENCH_FAST").is_some();
    let sessions: usize = if fast { 128 } else { 1000 };
    let doc_bytes: usize = if fast { 64 << 10 } else { 256 << 10 };
    let held_fleet: usize = if fast { 64 } else { 256 };
    let held_bytes: usize = 256 << 10;

    // ---- 1k idle XMark sessions: snapshot, then restore, one by one ----
    let engine = Engine::builder().dtd_str(XMARK_DTD_WEAK).build().unwrap();
    let q1 = PAPER_QUERIES.iter().find(|q| q.name == "Q1").expect("paper query");
    let prepared = engine.prepare(q1.source).unwrap();
    let (doc, _) = generate_string(&XmarkConfig::new(doc_bytes));
    let reference = prepared.run_str(&doc).unwrap();
    let prefix = &doc.as_bytes()[..doc.len() / 2];

    let mut fleet: Vec<_> = (0..sessions)
        .map(|_| {
            let mut s = prepared.session(NullSink::default());
            for chunk in prefix.chunks(CHUNK) {
                s.feed(chunk).unwrap();
            }
            s
        })
        .collect();

    let t = Instant::now();
    let snaps: Vec<Vec<u8>> =
        fleet.iter_mut().map(|s| s.snapshot().expect("quiescent session snapshots")).collect();
    let snapshot_s = t.elapsed().as_secs_f64();
    drop(fleet);
    let snap_bytes: usize = snaps.iter().map(Vec::len).sum();

    let t = Instant::now();
    let restored: Vec<_> = snaps
        .iter()
        .map(|snap| prepared.restore_session(NullSink::default(), snap).expect("restores"))
        .collect();
    let restore_s = t.elapsed().as_secs_f64();

    // Sanity: a restored session finishes with the uninterrupted stats.
    let mut one = restored.into_iter().next().unwrap();
    one.feed(&doc.as_bytes()[doc.len() / 2..]).unwrap();
    let fin = one.finish().expect("resumed run completes");
    assert_eq!(fin.stats, reference.stats, "restored run must match the one-shot stats");

    let snapshot_us = snapshot_s * 1e6 / sessions as f64;
    let restore_us = restore_s * 1e6 / sessions as f64;
    let bytes_per_session = snap_bytes / sessions;
    println!(
        "snapshot/fleet={sessions}  snapshot {snapshot_us:>7.1}µs/session  \
         restore {restore_us:>7.1}µs/session  envelope {bytes_per_session}B/session"
    );

    // ---- suspend-to-disk RSS delta over a fleet holding real buffers ----
    let bib = Engine::builder().dtd_str(WEAK_BIB_DTD).build().unwrap();
    let bib_q = bib.prepare(BIB_QUERY).unwrap();
    let hold: Arc<[u8]> =
        format!("<bib><book><author>{}</author>", "x".repeat(held_bytes)).into_bytes().into();

    let dir = std::env::temp_dir().join(format!("flux-bench-suspend-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let policy = SuspendPolicy { idle_after: Duration::from_secs(3600), dir: dir.clone() };
    let mut rt: Runtime<NullSink> = Runtime::with_suspend(1, policy);
    let ids: Vec<RuntimeId> =
        (0..held_fleet).map(|_| rt.open(&bib_q, NullSink::default())).collect();
    for &id in &ids {
        rt.feed_shared(id, Arc::clone(&hold));
    }
    // Suspend commands queue FIFO behind the feeds on the worker channel.
    // Spill one session first and wait for its event: when it arrives the
    // single worker has absorbed every queued chunk, so the RSS sample
    // really measures the fully-fed idle fleet.
    rt.suspend(ids[0]);
    let mut spilled: u64 = match rt.wait_event().expect("worker alive") {
        RuntimeEvent::Suspended { bytes, .. } => bytes as u64,
        other => panic!("expected only Suspended events, got {other:?}"),
    };
    let rss_before = rss_kb();
    let t = Instant::now();
    for &id in &ids[1..] {
        rt.suspend(id);
    }
    for _ in 1..held_fleet {
        match rt.wait_event().expect("worker alive") {
            RuntimeEvent::Suspended { bytes, .. } => spilled += bytes as u64,
            other => panic!("expected only Suspended events, got {other:?}"),
        }
    }
    let suspend_s = t.elapsed().as_secs_f64();
    let rss_after = rss_kb();
    let delta = rss_before as i64 - rss_after as i64;
    let suspend_us = suspend_s * 1e6 / (held_fleet - 1) as f64;
    println!(
        "suspend/fleet={held_fleet} holding {held_bytes}B each  {suspend_us:>7.1}µs/session  \
         spilled {spilled}B  rss {rss_before}kB -> {rss_after}kB (delta {delta}kB)"
    );

    let host_cpus =
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    let section = format!(
        "{{\"bin\": \"snapshot\", \"host_cpus\": {host_cpus}, \"doc_bytes\": {doc_bytes}, \
         \"prefix_bytes\": {}, \"query\": \"Q1\", \"sessions\": {sessions}, \
         \"snapshot_us_per_session\": {snapshot_us:.1}, \
         \"restore_us_per_session\": {restore_us:.1}, \
         \"snapshot_bytes_per_session\": {bytes_per_session}, \
         \"suspend\": {{\"sessions\": {held_fleet}, \"held_bytes_per_session\": {held_bytes}, \
         \"suspend_us_per_session\": {suspend_us:.1}, \
         \"spilled_bytes_total\": {spilled}, \"rss_before_kb\": {rss_before}, \
         \"rss_after_kb\": {rss_after}, \"rss_delta_kb\": {delta}}}}}",
        prefix.len(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    let existing = std::fs::read_to_string(path).ok();
    std::fs::write(path, merge_section(existing.as_deref(), "snapshot", &section))
        .expect("write BENCH_throughput.json");
    println!("wrote {path}");

    drop(rt);
    let _ = std::fs::remove_dir_all(&dir);
}
