//! SWAR-vs-SIMD tokenizer A/B: what does the two-stage structural scan buy?
//!
//! Isolates the tokenizer stack layer by layer, once per classification
//! kernel the host CPU can run (always `swar`, plus `sse2`/`avx2` where
//! available — each forced via [`ScannerChoice`], the same knob
//! `FLUX_FORCE_SWAR` drives in production):
//!
//! * **classify** — stage 1 alone: batch-classify the whole document into
//!   [`StructuralIndex`] blocks, no parsing. The raw kernel ceiling.
//! * **reader** — the full tokenizer: pull every resolved event through
//!   [`flux_xml::Reader`] with the XMark symbol table attached.
//! * **tape** — the same tokenizer behind the batched event tape
//!   ([`Reader::fill_tape`]): fill a batch, walk it with the index loop.
//!   The reader-vs-tape pair is a same-run delivery A/B at the tokenizer
//!   layer, reported as ns/event next to MB/s.
//! * **q1 / q20** — end to end: the paper's streaming queries over the
//!   engine, differing only in the forced scanner backend.
//!
//! Every figure is min-of-N with the sample spread printed beside it.
//! Results land under the `"tokenizer"` key of `BENCH_throughput.json`
//! (shared marker protocol — the bench bins run in any order). Honours
//! `FLUX_BENCH_SAMPLES` and `FLUX_BENCH_FAST=1` (CI smoke run: small
//! document).

use std::fmt::Write as _;
use std::time::Instant;

use flux::prelude::*;
use flux_bench::micro::samples;
use flux_bench::report::merge_section;
use flux_xmark::{generate_string, XmarkConfig, PAPER_QUERIES, XMARK_DTD};
use flux_xml::scan::{Scanner, ScannerChoice, StructuralIndex, ANCHOR_BYTES};
use flux_xml::writer::NullSink;
use flux_xml::{EventTape, Reader, TapeFill};

struct Ab {
    backend: &'static str,
    classify_mb_per_s: f64,
    reader_mb_per_s: f64,
    reader_ns_per_event: f64,
    reader_spread_pct: f64,
    tape_mb_per_s: f64,
    tape_ns_per_event: f64,
    tape_spread_pct: f64,
    /// reader seconds / tape seconds — the same-run delivery A/B.
    tape_speedup: f64,
    q1_mb_per_s: f64,
    q20_mb_per_s: f64,
}

/// `(min_seconds, spread_pct)` of `n` timed runs of `f`.
fn best_of(n: usize, mut f: impl FnMut()) -> (f64, f64) {
    let mut best = f64::MAX;
    let mut worst = 0.0f64;
    for _ in 0..n {
        let t = Instant::now();
        f();
        let s = t.elapsed().as_secs_f64();
        best = best.min(s);
        worst = worst.max(s);
    }
    (best, if best > 0.0 { (worst - best) / best * 100.0 } else { 0.0 })
}

fn main() {
    let fast = std::env::var_os("FLUX_BENCH_FAST").is_some();
    let doc_bytes: usize = if fast { 256 << 10 } else { 4 << 20 };
    let (doc, _) = generate_string(&XmarkConfig::new(doc_bytes));
    let bytes = doc.as_bytes();
    let n = samples().min(5);
    let mb = bytes.len() as f64 / 1e6;

    // Every kernel this host can actually run: forcing a choice the CPU
    // (or `FLUX_FORCE_SWAR`) rules out degrades, so dedup by the backend
    // the scanner really selected.
    let mut lineup: Vec<(ScannerChoice, Scanner)> = Vec::new();
    for choice in [ScannerChoice::ForceSwar, ScannerChoice::ForceSse2, ScannerChoice::ForceAvx2] {
        let scanner = Scanner::with_choice(choice);
        if lineup.iter().all(|(_, s)| s.backend() != scanner.backend()) {
            lineup.push((choice, scanner));
        }
    }

    let mut results = Vec::new();
    for &(choice, scanner) in &lineup {
        let engine = Engine::builder().dtd_str(XMARK_DTD).scanner(choice).build().unwrap();
        let symbols = engine.dtd().symbols().clone();

        // Stage 1 alone: classify the document in anchor-sized batches.
        let mut idx = StructuralIndex::new();
        let (classify, _) = best_of(n, || {
            let mut off = 0usize;
            let mut structural = 0u64;
            while off < bytes.len() {
                scanner.anchor(&mut idx, off as u64, &bytes[off..]);
                structural += idx.blocks().iter().map(|b| b.lt.count_ones() as u64).sum::<u64>();
                off += ANCHOR_BYTES.min(bytes.len() - off);
            }
            std::hint::black_box(structural);
        });

        // The full tokenizer: every resolved event, names interned. One
        // untimed pass captures the event count for the ns/event figures.
        let opts = flux_xml::ReaderOptions { scanner: choice, ..Default::default() };
        let mut total_events = 0u64;
        {
            let mut r = Reader::with_symbols(bytes, opts, symbols.clone());
            while r.next_resolved().unwrap().is_some() {
                total_events += 1;
            }
        }
        let (reader, reader_spread) = best_of(n, || {
            let mut r = Reader::with_symbols(bytes, opts, symbols.clone());
            let mut events = 0u64;
            while let Some(ev) = r.next_resolved().unwrap() {
                std::hint::black_box(&ev);
                events += 1;
            }
            std::hint::black_box(events);
        });

        // The same tokenizer behind the event tape: fill a batch, walk it.
        let (tape_secs, tape_spread) = best_of(n, || {
            let mut r = Reader::incremental_with_symbols(opts, symbols.clone());
            let mut tape = EventTape::new();
            r.feed(bytes);
            r.close();
            let mut events = 0u64;
            loop {
                let fill = r.fill_tape(&mut tape).unwrap();
                for i in 0..tape.len() {
                    std::hint::black_box(&r.tape_event(&tape, i));
                    events += 1;
                }
                tape.clear();
                match fill {
                    TapeFill::Full => {}
                    TapeFill::NeedMoreData | TapeFill::End => break,
                }
            }
            std::hint::black_box(events);
        });

        // End to end on the paper's streaming queries.
        let mut end_to_end = [0.0f64; 2];
        for (slot, name) in end_to_end.iter_mut().zip(["Q1", "Q20"]) {
            let q = PAPER_QUERIES.iter().find(|q| q.name == name).expect("paper query");
            let prepared = engine.prepare(q.source).unwrap();
            *slot = best_of(n, || {
                prepared.run_to(bytes, NullSink::default()).unwrap();
            })
            .0;
        }

        let ab = Ab {
            backend: scanner.backend().name(),
            classify_mb_per_s: mb / classify,
            reader_mb_per_s: mb / reader,
            reader_ns_per_event: reader * 1e9 / total_events as f64,
            reader_spread_pct: reader_spread,
            tape_mb_per_s: mb / tape_secs,
            tape_ns_per_event: tape_secs * 1e9 / total_events as f64,
            tape_spread_pct: tape_spread,
            tape_speedup: reader / tape_secs,
            q1_mb_per_s: mb / end_to_end[0],
            q20_mb_per_s: mb / end_to_end[1],
        };
        println!(
            "tokenizer/{:<4} classify {:>7.1} MB/s  reader {:>6.1} MB/s ({:>5.1} ns/ev, \
             ±{:.1}%)  tape {:>6.1} MB/s ({:>5.1} ns/ev, ±{:.1}%, {:.2}x)  \
             Q1 {:>6.1} MB/s  Q20 {:>6.1} MB/s  (doc {}B, min of {n} samples)",
            ab.backend,
            ab.classify_mb_per_s,
            ab.reader_mb_per_s,
            ab.reader_ns_per_event,
            ab.reader_spread_pct,
            ab.tape_mb_per_s,
            ab.tape_ns_per_event,
            ab.tape_spread_pct,
            ab.tape_speedup,
            ab.q1_mb_per_s,
            ab.q20_mb_per_s,
            bytes.len(),
        );
        results.push(ab);
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    let section = render_section(bytes.len(), n, &results);
    let existing = std::fs::read_to_string(path).ok();
    std::fs::write(path, merge_section(existing.as_deref(), "tokenizer", &section))
        .expect("write BENCH_throughput.json");
    println!("wrote {path}");
}

/// The `"tokenizer"` section value (hand-rolled JSON — no serde in the
/// offline build).
fn render_section(doc_bytes: usize, samples: usize, results: &[Ab]) -> String {
    let mut out = format!(
        "{{\"bin\": \"tokenizer\", \"detected\": {:?}, \"doc_bytes\": {doc_bytes}, \
         \"samples\": {samples}, \"backends\": [",
        Scanner::detect().backend().name(),
    );
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            out,
            "{}{{\"backend\": {:?}, \"classify_mb_per_s\": {:.1}, \
             \"reader_mb_per_s\": {:.1}, \"reader_ns_per_event\": {:.2}, \
             \"reader_spread_pct\": {:.1}, \"tape_mb_per_s\": {:.1}, \
             \"tape_ns_per_event\": {:.2}, \"tape_spread_pct\": {:.1}, \
             \"tape_speedup\": {:.3}, \"q1_mb_per_s\": {:.1}, \"q20_mb_per_s\": {:.1}}}",
            if i == 0 { "" } else { ", " },
            r.backend,
            r.classify_mb_per_s,
            r.reader_mb_per_s,
            r.reader_ns_per_event,
            r.reader_spread_pct,
            r.tape_mb_per_s,
            r.tape_ns_per_event,
            r.tape_spread_pct,
            r.tape_speedup,
            r.q1_mb_per_s,
            r.q20_mb_per_s,
        );
    }
    out.push_str("]}");
    out
}
