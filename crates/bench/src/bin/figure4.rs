//! Regenerate the paper's Figure 4 (Section 6 benchmark results).
//!
//! ```text
//! cargo run -p flux-bench --release --bin figure4               # scaled-down sizes
//! cargo run -p flux-bench --release --bin figure4 -- --full     # the paper's 5/10/50/100 MB
//! cargo run -p flux-bench --release --bin figure4 -- --sizes 1,2,4 --queries Q1,Q13
//! ```
//!
//! Options:
//!   --full              use the paper's sizes (5,10,50,100 MB)
//!   --large             the `throughput --large` sizes (4, 32 MB): the
//!                       Figure-4-scale FluX-vs-DOM memory comparison
//!   --sizes LIST        comma-separated sizes in MB (default 1,2,5,10)
//!   --queries LIST      subset of Q1,Q8,Q11,Q13,Q20 (default: all)
//!   --cap-mb N          DOM memory cap in MB (default 512, the paper's box)
//!   --max-join-mb N     skip join queries (Q8/Q11) above this size
//!                       (default 25; the paper's naive nested loops are
//!                       quadratic — its own Q8\@100M ran for 3.2 hours)
//!   --seed N            generator seed (default 42)
//!   --data-dir PATH     where to cache generated documents
//!   --weak-dtd          schedule with the order-free DTD (ablation)
//!   --verify            also cross-check FluX vs galax-sim output sizes
//!   --record            merge the largest size's FluX-vs-DOM time/peak
//!                       memory cells into BENCH_throughput.json (the
//!                       `"figure4"` section, order-invariant with the
//!                       other bench bins)

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::PathBuf;

use flux_bench::harness::{dataset, prepare_cell, EngineKind};
use flux_bench::report::{format_figure4, merge_section, Row};
use flux_bench::XMARK_DTD_WEAK;
use flux_dtd::Dtd;
use flux_xmark::{PAPER_QUERIES, XMARK_DTD};

struct Args {
    sizes_mb: Vec<usize>,
    queries: BTreeSet<String>,
    cap_mb: usize,
    max_join_mb: usize,
    seed: u64,
    data_dir: PathBuf,
    weak_dtd: bool,
    verify: bool,
    record: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        sizes_mb: vec![1, 2, 5, 10],
        queries: PAPER_QUERIES.iter().map(|q| q.name.to_string()).collect(),
        cap_mb: 512,
        max_join_mb: 25,
        seed: 42,
        data_dir: PathBuf::from("target/xmark-data"),
        weak_dtd: false,
        verify: false,
        record: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--full" => args.sizes_mb = vec![5, 10, 50, 100],
            "--large" => args.sizes_mb = vec![4, 32],
            "--sizes" => {
                args.sizes_mb = val("--sizes")
                    .split(',')
                    .map(|s| s.trim().parse().expect("size in MB"))
                    .collect()
            }
            "--queries" => {
                args.queries = val("--queries").split(',').map(|s| s.trim().to_string()).collect()
            }
            "--cap-mb" => args.cap_mb = val("--cap-mb").parse().expect("cap in MB"),
            "--max-join-mb" => args.max_join_mb = val("--max-join-mb").parse().expect("MB"),
            "--seed" => args.seed = val("--seed").parse().expect("seed"),
            "--data-dir" => args.data_dir = PathBuf::from(val("--data-dir")),
            "--weak-dtd" => args.weak_dtd = true,
            "--verify" => args.verify = true,
            "--record" => args.record = true,
            "--help" | "-h" => {
                println!("see the module docs at the top of figure4.rs");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let dtd = Dtd::parse(if args.weak_dtd { XMARK_DTD_WEAK } else { XMARK_DTD })
        .expect("XMark DTD parses");
    let cap = Some(args.cap_mb << 20);

    eprintln!(
        "figure4: sizes {:?} MB, queries {:?}, cap {} MB, seed {}{}",
        args.sizes_mb,
        args.queries,
        args.cap_mb,
        args.seed,
        if args.weak_dtd { ", WEAK DTD (ablation)" } else { "" }
    );

    // Generate datasets first so generation time never pollutes the cells.
    let mut datasets = Vec::new();
    for &mb in &args.sizes_mb {
        eprint!("generating {mb}MB dataset … ");
        let d = dataset(&args.data_dir, &format!("{mb}M"), mb << 20, args.seed)
            .expect("dataset generation");
        eprintln!(
            "{} bytes ({} persons, {} open, {} closed, {} australian items)",
            d.bytes,
            d.summary.persons,
            d.summary.open_auctions,
            d.summary.closed_auctions,
            d.summary.australia_items
        );
        datasets.push((mb, d));
    }

    let mut rows = Vec::new();
    for q in PAPER_QUERIES {
        if !args.queries.contains(q.name) {
            continue;
        }
        // Prepare each engine once per query; the timed cells below measure
        // execution only, and re-use the preparation across all sizes.
        let flux_cell = prepare_cell(EngineKind::Flux, q.source, &dtd, None);
        let galax_cell = prepare_cell(EngineKind::GalaxSim, q.source, &dtd, cap);
        let anonx_cell = prepare_cell(EngineKind::AnonxSim, q.source, &dtd, cap);
        for (mb, d) in &datasets {
            let skip_join = q.is_join && *mb > args.max_join_mb;
            if skip_join {
                eprintln!("{} @ {}M: skipped (join above --max-join-mb; quadratic)", q.name, mb);
                rows.push(Row {
                    query: q.name,
                    size: format!("{mb}M"),
                    flux: None,
                    galax: None,
                    anonx: None,
                });
                continue;
            }
            eprint!("{} @ {}M: flux … ", q.name, mb);
            let flux = flux_cell.execute(&d.path);
            eprint!("galax-sim … ");
            let galax = galax_cell.execute(&d.path);
            eprint!("anonx-sim … ");
            let anonx = anonx_cell.execute(&d.path);
            eprintln!("done");
            if args.verify {
                if let (None, None) = (&flux.aborted, &galax.aborted) {
                    assert_eq!(
                        flux.output_bytes, galax.output_bytes,
                        "{} @ {}M: FluX and galax-sim disagree on output size",
                        q.name, mb
                    );
                    eprintln!(
                        "  verified: both engines produced {} output bytes",
                        flux.output_bytes
                    );
                }
            }
            rows.push(Row {
                query: q.name,
                size: format!("{mb}M"),
                flux: Some(flux),
                galax: Some(galax),
                anonx: Some(anonx),
            });
        }
    }

    println!("\nFigure 4 (reproduced) — time / peak memory");
    println!("{}", format_figure4(&rows));
    if args.record {
        record_largest(&rows, &args);
    }
    println!("notes:");
    println!(
        "  - galax-sim = DOM + path projection [14]; anonx-sim = DOM, time-only (see DESIGN.md §3)"
    );
    println!("  - '- / >NM cap' = materialization aborted at the memory cap, like the paper's '- / >500M'");
    println!("  - FluX memory is peak runtime buffer bytes; 0 means fully streamed");
}

/// Merge the largest measured size's FluX-vs-DOM cells into
/// `BENCH_throughput.json` (the `"figure4"` section), so the Figure-4-scale
/// memory gap is tracked next to the MB/s trajectory.
fn record_largest(rows: &[Row], args: &Args) {
    let largest = format!("{}M", args.sizes_mb.iter().max().expect("at least one size"));
    let measured: Vec<&Row> =
        rows.iter().filter(|r| r.size == largest && r.flux.is_some()).collect();
    if measured.is_empty() {
        eprintln!("--record: no measured rows at {largest}; nothing written");
        return;
    }
    let mut section = format!(
        "{{\"bin\": \"figure4\", \"doc_mb\": {}, \"seed\": {}, \"rows\": [",
        args.sizes_mb.iter().max().unwrap(),
        args.seed
    );
    for (i, row) in measured.iter().enumerate() {
        let flux = row.flux.as_ref().expect("filtered on flux");
        let _ = write!(
            section,
            "{}{{\"query\": \"{}\", \"flux_seconds\": {:.3}, \"flux_peak_bytes\": {}",
            if i == 0 { "" } else { ", " },
            row.query,
            flux.seconds,
            flux.memory_bytes.unwrap_or(0),
        );
        if let Some(galax) = &row.galax {
            let _ = write!(
                section,
                ", \"galax_seconds\": {:.3}, \"galax_peak_bytes\": {}, \"galax_aborted\": {}",
                galax.seconds,
                galax.memory_bytes.unwrap_or(0),
                galax.aborted.is_some(),
            );
        }
        section.push('}');
    }
    section.push_str("]}");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    let existing = std::fs::read_to_string(path).ok();
    std::fs::write(path, merge_section(existing.as_deref(), "figure4", &section))
        .expect("write BENCH_throughput.json");
    println!("recorded the {largest} cells into {path}");
}
