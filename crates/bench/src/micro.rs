//! A minimal micro-benchmark runner (criterion is unavailable offline).
//!
//! Bench binaries are `harness = false`: each has a `main` that prepares
//! its queries **once** and then times execution only, reporting
//! min/median/mean over a fixed number of samples. Sample count can be
//! overridden with `FLUX_BENCH_SAMPLES`; `FLUX_BENCH_FAST=1` drops to a
//! single sample (used to smoke-test the bench binaries in CI).

use std::time::{Duration, Instant};

/// Samples per measurement (default 10, always at least 1). An explicit
/// `FLUX_BENCH_SAMPLES` wins over `FLUX_BENCH_FAST`.
pub fn samples() -> usize {
    if let Some(n) = std::env::var("FLUX_BENCH_SAMPLES").ok().and_then(|s| s.parse().ok()) {
        return 1usize.max(n);
    }
    if std::env::var_os("FLUX_BENCH_FAST").is_some() {
        return 1;
    }
    10
}

/// One measured routine's timings.
#[derive(Debug, Clone)]
pub struct Timing {
    /// Measurement label (`group/name` by convention).
    pub label: String,
    /// Per-sample wall-clock times, sorted ascending.
    pub sorted: Vec<Duration>,
}

impl Timing {
    /// Fastest sample — the least noisy single-machine statistic.
    pub fn min(&self) -> Duration {
        self.sorted[0]
    }

    /// Middle sample.
    pub fn median(&self) -> Duration {
        self.sorted[self.sorted.len() / 2]
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Duration {
        self.sorted.iter().sum::<Duration>() / self.sorted.len() as u32
    }

    /// Slowest sample.
    pub fn max(&self) -> Duration {
        *self.sorted.last().expect("at least one sample")
    }

    /// Sample spread as a percentage of the fastest sample:
    /// `(max - min) / min * 100`. The single-number noise indicator
    /// reported next to every min-of-N figure — a large spread means the
    /// host was busy and the minimum is the only number worth reading.
    pub fn spread_pct(&self) -> f64 {
        let min = self.min().as_secs_f64();
        if min == 0.0 {
            return 0.0;
        }
        (self.max().as_secs_f64() - min) / min * 100.0
    }
}

/// Time `f` (execution only — do all preparation before calling this),
/// print one line, and return the timings.
pub fn bench<F: FnMut()>(label: &str, mut f: F) -> Timing {
    // One untimed warmup to populate caches and page in the data.
    f();
    let n = samples();
    let mut sorted: Vec<Duration> = (0..n)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    sorted.sort_unstable();
    let t = Timing { label: label.to_string(), sorted };
    println!(
        "{:<44} min {:>10.2?}   median {:>10.2?}   mean {:>10.2?}   spread {:>5.1}%   ({} samples)",
        t.label,
        t.min(),
        t.median(),
        t.mean(),
        t.spread_pct(),
        n
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        std::env::set_var("FLUX_BENCH_SAMPLES", "3");
        let mut runs = 0u32;
        let t = bench("test/noop", || runs += 1);
        std::env::remove_var("FLUX_BENCH_SAMPLES");
        assert_eq!(runs, 4, "warmup + samples");
        assert_eq!(t.sorted.len(), 3);
        assert!(t.min() <= t.median() && t.median() <= *t.sorted.last().unwrap());
    }
}
