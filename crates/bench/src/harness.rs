//! Running one Figure 4 cell: (engine, query, document) → time + memory.

use std::fs::File;
use std::io::{self, BufReader, BufWriter};
use std::path::{Path, PathBuf};
use std::time::Instant;

use flux::{Engine, PreparedQuery};
use flux_baseline::{BaselineError, DomEngine, PreparedDomQuery, ProjectionMode};
use flux_dtd::Dtd;
use flux_query::parse_xquery;
use flux_xmark::{generate, XmarkConfig, XmarkSummary};
use flux_xml::writer::NullSink;

/// The engines of Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The FluX streaming engine.
    Flux,
    /// DOM with projection (stands in for Galax V0.3.1 + projection \[14\]).
    GalaxSim,
    /// DOM without projection, time-only (stands in for "AnonX").
    AnonxSim,
}

impl EngineKind {
    /// Column label.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Flux => "FluX",
            EngineKind::GalaxSim => "galax-sim",
            EngineKind::AnonxSim => "anonx-sim",
        }
    }
}

/// One measured cell.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Peak memory in bytes (`None` for AnonX, matching the paper's table).
    pub memory_bytes: Option<u64>,
    /// Bytes of query output produced.
    pub output_bytes: u64,
    /// Abort reason when the run did not complete (memory cap).
    pub aborted: Option<String>,
}

/// A generated benchmark document on disk.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// File path.
    pub path: PathBuf,
    /// Exact size in bytes.
    pub bytes: u64,
    /// Entity counts.
    pub summary: XmarkSummary,
}

/// Generate (or reuse) a benchmark document of roughly `target_bytes`.
pub fn dataset(dir: &Path, label: &str, target_bytes: usize, seed: u64) -> io::Result<Dataset> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("xmark-{label}-{seed}.xml"));
    let meta = dir.join(format!("xmark-{label}-{seed}.meta"));
    if let (Ok(m), Ok(existing)) = (std::fs::read_to_string(&meta), std::fs::metadata(&path)) {
        if let Some(summary) = parse_meta(&m) {
            if existing.len() == summary.bytes {
                return Ok(Dataset { path, bytes: summary.bytes, summary });
            }
        }
    }
    let cfg = XmarkConfig { target_bytes, seed, ..XmarkConfig::new(target_bytes) };
    let file = File::create(&path)?;
    let summary = generate(&cfg, BufWriter::new(file))?;
    std::fs::write(&meta, render_meta(&summary))?;
    Ok(Dataset { path, bytes: summary.bytes, summary })
}

fn render_meta(s: &XmarkSummary) -> String {
    format!(
        "bytes={} persons={} items={} australia_items={} open_auctions={} closed_auctions={} categories={}",
        s.bytes, s.persons, s.items, s.australia_items, s.open_auctions, s.closed_auctions, s.categories
    )
}

fn parse_meta(m: &str) -> Option<XmarkSummary> {
    let mut s = XmarkSummary::default();
    for kv in m.split_whitespace() {
        let (k, v) = kv.split_once('=')?;
        match k {
            "bytes" => s.bytes = v.parse().ok()?,
            "persons" => s.persons = v.parse().ok()?,
            "items" => s.items = v.parse().ok()?,
            "australia_items" => s.australia_items = v.parse().ok()?,
            "open_auctions" => s.open_auctions = v.parse().ok()?,
            "closed_auctions" => s.closed_auctions = v.parse().ok()?,
            "categories" => s.categories = v.parse().ok()?,
            _ => {}
        }
    }
    Some(s)
}

/// A (engine, query) pair compiled for repeated execution — planning and
/// projection analysis happen here, once, so [`PreparedCell::execute`]
/// times execution only. This is what the paper's table measures: Figure 4
/// reports evaluation cost, not per-call re-planning.
pub enum PreparedCell {
    /// FluX: a fully compiled streaming plan.
    Flux(PreparedQuery),
    /// A DOM baseline with its projection precomputed.
    Dom {
        /// The prepared DOM query (boxed: it carries the projection tree).
        prepared: Box<PreparedDomQuery>,
        /// Whether this cell reports memory (galax-sim does, anonx-sim not).
        kind: EngineKind,
    },
}

/// Compile one engine/query cell once; execute it per document with
/// [`PreparedCell::execute`].
///
/// `cap` bounds the DOM engines' materialized memory (the paper's 512 MB
/// machine); FluX needs no cap — its buffers are the measurement.
pub fn prepare_cell(
    kind: EngineKind,
    query_src: &str,
    dtd: &Dtd,
    cap: Option<usize>,
) -> PreparedCell {
    match kind {
        EngineKind::Flux => {
            let engine = Engine::new(dtd.clone());
            PreparedCell::Flux(engine.prepare(query_src).expect("benchmark queries schedule"))
        }
        EngineKind::GalaxSim | EngineKind::AnonxSim => {
            let projection = if kind == EngineKind::GalaxSim {
                ProjectionMode::Paths
            } else {
                ProjectionMode::None
            };
            let query = parse_xquery(query_src).expect("benchmark queries parse");
            let engine = DomEngine { projection, memory_cap: cap };
            PreparedCell::Dom { prepared: Box::new(engine.prepare(&query)), kind }
        }
    }
}

impl PreparedCell {
    /// Execute over one document file; only this region is timed.
    pub fn execute(&self, data: &Path) -> EngineRun {
        let file = File::open(data).expect("dataset exists");
        let input = BufReader::with_capacity(1 << 20, file);
        match self {
            PreparedCell::Flux(prepared) => {
                let start = Instant::now();
                match prepared.run_to(input, NullSink::default()) {
                    Ok(stats) => EngineRun {
                        seconds: start.elapsed().as_secs_f64(),
                        memory_bytes: Some(stats.peak_buffer_bytes as u64),
                        output_bytes: stats.output_bytes,
                        aborted: None,
                    },
                    Err(e) => EngineRun {
                        seconds: start.elapsed().as_secs_f64(),
                        memory_bytes: None,
                        output_bytes: 0,
                        aborted: Some(e.to_string()),
                    },
                }
            }
            PreparedCell::Dom { prepared, kind } => {
                let start = Instant::now();
                match prepared.run_to(input, NullSink::default()) {
                    Ok(stats) => EngineRun {
                        seconds: start.elapsed().as_secs_f64(),
                        memory_bytes: (*kind == EngineKind::GalaxSim)
                            .then_some(stats.tree_bytes as u64),
                        output_bytes: stats.output_bytes,
                        aborted: None,
                    },
                    Err(BaselineError::MemoryCap { used, cap }) => EngineRun {
                        seconds: start.elapsed().as_secs_f64(),
                        memory_bytes: Some(used as u64),
                        output_bytes: 0,
                        aborted: Some(format!(">{}M cap", cap >> 20)),
                    },
                    Err(e) => EngineRun {
                        seconds: start.elapsed().as_secs_f64(),
                        memory_bytes: None,
                        output_bytes: 0,
                        aborted: Some(e.to_string()),
                    },
                }
            }
        }
    }
}

/// Prepare and execute one cell (convenience for one-shot callers).
pub fn run_cell(
    kind: EngineKind,
    query_src: &str,
    dtd: &Dtd,
    data: &Path,
    cap: Option<usize>,
) -> EngineRun {
    prepare_cell(kind, query_src, dtd, cap).execute(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_xmark::{PAPER_QUERIES, XMARK_DTD};

    #[test]
    fn all_cells_run_and_agree_on_small_data() {
        let dir = std::env::temp_dir().join("flux-bench-test");
        let data = dataset(&dir, "test64k", 64 << 10, 7).unwrap();
        let dtd = Dtd::parse(XMARK_DTD).unwrap();
        for q in PAPER_QUERIES {
            let f = run_cell(EngineKind::Flux, q.source, &dtd, &data.path, None);
            let g = run_cell(EngineKind::GalaxSim, q.source, &dtd, &data.path, None);
            let a = run_cell(EngineKind::AnonxSim, q.source, &dtd, &data.path, None);
            assert!(f.aborted.is_none(), "{}: {:?}", q.name, f.aborted);
            assert!(g.aborted.is_none(), "{}: {:?}", q.name, g.aborted);
            assert_eq!(f.output_bytes, g.output_bytes, "{}: flux vs galax-sim output size", q.name);
            assert_eq!(f.output_bytes, a.output_bytes, "{}: flux vs anonx-sim output size", q.name);
            // FluX memory is far below the DOM's.
            assert!(
                f.memory_bytes.unwrap() < g.memory_bytes.unwrap().max(1),
                "{}: flux {} >= galax {}",
                q.name,
                f.memory_bytes.unwrap(),
                g.memory_bytes.unwrap()
            );
        }
    }

    #[test]
    fn datasets_are_cached() {
        let dir = std::env::temp_dir().join("flux-bench-test-cache");
        let a = dataset(&dir, "c32k", 32 << 10, 3).unwrap();
        let b = dataset(&dir, "c32k", 32 << 10, 3).unwrap();
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.summary, b.summary);
    }

    #[test]
    fn memory_cap_produces_aborts() {
        let dir = std::env::temp_dir().join("flux-bench-test-cap");
        let data = dataset(&dir, "cap128k", 128 << 10, 5).unwrap();
        let dtd = Dtd::parse(XMARK_DTD).unwrap();
        let run = run_cell(EngineKind::AnonxSim, flux_xmark::Q1, &dtd, &data.path, Some(8 << 10));
        assert!(run.aborted.is_some());
    }
}
