//! Proposition 2.2: `Ord_ρ` is computable in O(|ρ|²). We build content
//! models of growing size and time Glushkov construction + constraint
//! computation; the curve should stay (sub-)quadratic.

use flux_bench::micro::bench;
use flux_dtd::constraints::Constraints;
use flux_dtd::parser::parse_content_regex;
use flux_dtd::Glushkov;

/// A one-unambiguous content model with `n` distinct symbols:
/// (a0?, a1?, …, a{n-1}?) interleaved with small alternations.
fn model(n: usize) -> String {
    let mut parts = Vec::with_capacity(n);
    for i in 0..n {
        if i % 3 == 0 {
            parts.push(format!("s{i}?"));
        } else if i % 3 == 1 {
            parts.push(format!("s{i}*"));
        } else {
            parts.push(format!("(s{i}|t{i})"));
        }
    }
    format!("({})", parts.join(","))
}

fn main() {
    for n in [8usize, 16, 32, 64, 128] {
        let src = model(n);
        let re = parse_content_regex(&src).unwrap();
        bench(&format!("ord_scaling/glushkov_and_ord/{n}"), || {
            let g = Glushkov::build(&re).unwrap();
            Constraints::compute(&g);
        });
    }
}
