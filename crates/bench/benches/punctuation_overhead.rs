//! Appendix B's claim: punctuation costs "one validating DFA transition and
//! one constant-time lookup per input token" on top of plain parsing.
//!
//! We measure (a) draining the parser, (b) parsing + full DTD validation
//! (the DFA transitions), and (c) parsing + validation + a `first-past`
//! lookup per transition — the increments should be small and flat.

use flux_bench::micro::bench;
use flux_dtd::past::{Matcher, PastTable};
use flux_dtd::Dtd;
use flux_xmark::{generate_string, XmarkConfig, XMARK_DTD};
use flux_xml::{Event, Reader};

fn drain(doc: &str) -> u64 {
    let mut r = Reader::from_str(doc);
    let mut n = 0;
    while let Some(ev) = r.next_event().unwrap() {
        if matches!(ev, Event::Start(_)) {
            n += 1;
        }
    }
    n
}

fn validate(doc: &str, dtd: &Dtd, with_past: bool) -> u64 {
    // Stack of matchers plus (optionally) a PastTable probe per production.
    let mut r = Reader::from_str(doc);
    let mut stack: Vec<(Matcher<'_>, Option<&PastTable>)> = Vec::new();
    // One prebuilt table per production (site-level punctuation probe).
    let tables: std::collections::HashMap<&str, PastTable> = dtd
        .productions()
        .iter()
        .map(|p| {
            let set: Vec<String> = p.symbols().to_vec();
            (p.name.as_str(), PastTable::build(p.automaton(), p.constraints(), &set))
        })
        .collect();
    let doc_prod = dtd.doc_production();
    stack.push((Matcher::new(doc_prod.automaton()), None));
    let mut fired = 0u64;
    while let Some(ev) = r.next_event().unwrap() {
        match ev {
            Event::Start(name) => {
                let (m, t) = stack.last_mut().unwrap();
                let (old, new) = m.step(name).unwrap();
                if with_past {
                    if let Some(t) = t {
                        if t.fires_on(old, new) {
                            fired += 1;
                        }
                    }
                }
                let prod = dtd.production(name).unwrap();
                let table = with_past.then(|| &tables[&*prod.name]);
                stack.push((Matcher::new(prod.automaton()), table.map(|t| t as _)));
            }
            Event::End(_) => {
                let (m, _) = stack.pop().unwrap();
                m.finish().unwrap();
            }
            Event::Text(_) => {}
        }
    }
    fired
}

fn main() {
    let dtd = Dtd::parse(XMARK_DTD).unwrap();
    let (doc, _) = generate_string(&XmarkConfig::new(512 << 10));
    bench("punctuation_overhead/parse_only", || {
        drain(&doc);
    });
    bench("punctuation_overhead/parse_validate", || {
        validate(&doc, &dtd, false);
    });
    bench("punctuation_overhead/parse_validate_past", || {
        validate(&doc, &dtd, true);
    });
}
