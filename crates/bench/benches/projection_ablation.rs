//! Ablation of the baseline's projection ([14]): DOM with vs without path
//! projection — the optimization the paper's Galax baseline ran with.
//! Projection analysis happens once, at preparation.

use flux_baseline::{DomEngine, ProjectionMode};
use flux_bench::micro::bench;
use flux_query::parse_xquery;
use flux_xmark::{generate_string, XmarkConfig, Q1, Q13};
use flux_xml::writer::NullSink;

fn main() {
    let (doc, _) = generate_string(&XmarkConfig::new(256 << 10));
    for (name, src) in [("Q1", Q1), ("Q13", Q13)] {
        let query = parse_xquery(src).unwrap();
        for (mode_name, mode) in
            [("projected", ProjectionMode::Paths), ("full", ProjectionMode::None)]
        {
            let prepared = DomEngine { projection: mode, memory_cap: None }.prepare(&query);
            let stats = prepared.run_to(doc.as_bytes(), NullSink::default()).unwrap();
            eprintln!(
                "{name}/{mode_name}: tree = {} bytes, {} nodes",
                stats.tree_bytes, stats.nodes
            );
            bench(&format!("projection_ablation/{name}/{mode_name}"), || {
                prepared.run_to(doc.as_bytes(), NullSink::default()).unwrap();
            });
        }
    }
}
