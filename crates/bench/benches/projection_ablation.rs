//! Ablation of the baseline's projection ([14]): DOM with vs without path
//! projection — the optimization the paper's Galax baseline ran with.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flux_baseline::{DomEngine, ProjectionMode};
use flux_query::parse_xquery;
use flux_xmark::{generate_string, XmarkConfig, Q1, Q13};
use flux_xml::writer::NullSink;

fn projection_ablation(c: &mut Criterion) {
    let (doc, _) = generate_string(&XmarkConfig::new(256 << 10));
    let mut group = c.benchmark_group("projection_ablation");
    group.sample_size(10);
    for (name, src) in [("Q1", Q1), ("Q13", Q13)] {
        let query = parse_xquery(src).unwrap();
        for (mode_name, mode) in [("projected", ProjectionMode::Paths), ("full", ProjectionMode::None)] {
            let engine = DomEngine { projection: mode, memory_cap: None };
            let stats = engine.run_to(&query, doc.as_bytes(), NullSink::default()).unwrap();
            eprintln!("{name}/{mode_name}: tree = {} bytes, {} nodes", stats.tree_bytes, stats.nodes);
            group.bench_with_input(BenchmarkId::new(name, mode_name), &doc, |b, doc| {
                b.iter(|| engine.run_to(&query, doc.as_bytes(), NullSink::default()).unwrap());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, projection_ablation);
criterion_main!(benches);
