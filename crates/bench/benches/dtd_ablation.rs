//! Ablation: how much do the DTD's order constraints buy? The same queries
//! are scheduled against the real XMark DTD (Q1/Q13 stream, zero buffers)
//! and against an order-free weakening (everything is `(…)*`, so the
//! scheduler must buffer) — the paper's Section 1 motivation, measured.
//! Plans are prepared once per (query, DTD); the loop times execution only.

use flux::Engine;
use flux_bench::micro::bench;
use flux_bench::XMARK_DTD_WEAK;
use flux_xmark::{generate_string, XmarkConfig, Q1, Q13, XMARK_DTD};
use flux_xml::writer::NullSink;

fn main() {
    let strong = Engine::builder().dtd_str(XMARK_DTD).build().unwrap();
    let weak = Engine::builder().dtd_str(XMARK_DTD_WEAK).build().unwrap();
    let (doc, _) = generate_string(&XmarkConfig::new(256 << 10));

    for (name, src) in [("Q1", Q1), ("Q13", Q13)] {
        for (dtd_name, engine) in [("strong", &strong), ("weak", &weak)] {
            let prepared = engine.prepare(src).unwrap();
            // Report the buffering difference once, outside the timing loop.
            let stats = prepared.run_to(doc.as_bytes(), NullSink::default()).unwrap();
            eprintln!("{name}/{dtd_name}: peak buffer = {} bytes", stats.peak_buffer_bytes);
            bench(&format!("dtd_ablation/{name}/{dtd_name}"), || {
                prepared.run_to(doc.as_bytes(), NullSink::default()).unwrap();
            });
        }
    }
}
