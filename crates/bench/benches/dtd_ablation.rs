//! Ablation: how much do the DTD's order constraints buy? The same queries
//! are scheduled against the real XMark DTD (Q1/Q13 stream, zero buffers)
//! and against an order-free weakening (everything is `(…)*`, so the
//! scheduler must buffer) — the paper's Section 1 motivation, measured.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flux_bench::XMARK_DTD_WEAK;
use flux_core::rewrite_query;
use flux_dtd::Dtd;
use flux_engine::CompiledQuery;
use flux_query::parse_xquery;
use flux_xmark::{generate_string, XmarkConfig, Q1, Q13, XMARK_DTD};
use flux_xml::writer::NullSink;

fn dtd_ablation(c: &mut Criterion) {
    let strong = Dtd::parse(XMARK_DTD).unwrap();
    let weak = Dtd::parse(XMARK_DTD_WEAK).unwrap();
    let (doc, _) = generate_string(&XmarkConfig::new(256 << 10));

    let mut group = c.benchmark_group("dtd_ablation");
    group.sample_size(10);
    for (name, src) in [("Q1", Q1), ("Q13", Q13)] {
        let query = parse_xquery(src).unwrap();
        for (dtd_name, dtd) in [("strong", &strong), ("weak", &weak)] {
            let flux = rewrite_query(&query, dtd).unwrap();
            let compiled = CompiledQuery::compile(&flux, dtd).unwrap();
            // Report the buffering difference once, outside the timing loop.
            let stats = compiled.run(doc.as_bytes(), NullSink::default()).unwrap();
            eprintln!("{name}/{dtd_name}: peak buffer = {} bytes", stats.peak_buffer_bytes);
            group.bench_with_input(
                BenchmarkId::new(name, dtd_name),
                &doc,
                |b, doc| b.iter(|| compiled.run(doc.as_bytes(), NullSink::default()).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, dtd_ablation);
criterion_main!(benches);
