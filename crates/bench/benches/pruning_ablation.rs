//! Ablation of buffer-tree pruning (paper §5: "we only buffer the data of
//! the topmost marked nodes"). Recording behaviour is identical by
//! construction — a capture frame overrides deeper tree nodes — so the
//! measurable effect is plan size and per-event cursor work; this bench
//! tracks plan construction cost and the node-count difference.

use flux_bench::micro::bench;
use flux_engine::bufplan::{pi, BufferTree, Mark};
use flux_query::parse_xquery;

fn trees(prune: bool) -> usize {
    // Q8-like expression: output whole closed_auctions and read several
    // paths below them as well.
    let alpha = parse_xquery(
        "{ for $p in $site/people/person return \
           { for $t in $site/closed_auctions/closed_auction \
             where $t/buyer/buyer_person = $p/person_id return \
             <r> {$t} {$t/price} {$t/date} {$t/itemref} </r> } }",
    )
    .unwrap();
    let mut tree = BufferTree::default();
    for (path, mark) in pi("site", &alpha, true) {
        tree.insert(&path, mark == Mark::Marked);
    }
    if prune {
        tree.prune();
    }
    tree.node_count()
}

fn main() {
    let pruned = trees(true);
    let unpruned = trees(false);
    eprintln!("buffer tree nodes: pruned = {pruned}, unpruned = {unpruned}");
    assert!(pruned < unpruned, "pruning must shrink the plan");

    for (name, prune) in [("pruned", true), ("unpruned", false)] {
        bench(&format!("pruning_ablation/plan_build/{name}"), || {
            trees(prune);
        });
    }
}
