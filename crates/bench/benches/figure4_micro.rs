//! Micro-scale Figure 4: every paper query on small XMark documents,
//! FluX vs the projected DOM baseline. The full-scale table is produced by
//! the `figure4` binary; this bench tracks the same shape continuously.
//!
//! Every query is prepared ONCE, outside the timed region — the numbers
//! measure execution, not re-planning.

use flux::Engine;
use flux_baseline::{DomEngine, ProjectionMode};
use flux_bench::micro::bench;
use flux_query::parse_xquery;
use flux_xmark::{generate_string, XmarkConfig, PAPER_QUERIES, XMARK_DTD};
use flux_xml::writer::NullSink;

fn main() {
    let engine = Engine::builder().dtd_str(XMARK_DTD).build().unwrap();
    let (doc, _) = generate_string(&XmarkConfig::new(256 << 10));

    for q in PAPER_QUERIES {
        let prepared = engine.prepare(q.source).unwrap();
        bench(&format!("figure4_micro/flux/{}", q.name), || {
            prepared.run_to(doc.as_bytes(), NullSink::default()).unwrap();
        });
        let query = parse_xquery(q.source).unwrap();
        let dom = DomEngine { projection: ProjectionMode::Paths, memory_cap: None }.prepare(&query);
        bench(&format!("figure4_micro/galax-sim/{}", q.name), || {
            dom.run_to(doc.as_bytes(), NullSink::default()).unwrap();
        });
    }
}
