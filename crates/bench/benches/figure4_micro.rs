//! Micro-scale Figure 4: every paper query on small XMark documents,
//! FluX vs the projected DOM baseline. The full-scale table is produced by
//! the `figure4` binary; this bench tracks the same shape continuously.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flux_baseline::{DomEngine, ProjectionMode};
use flux_core::rewrite_query;
use flux_dtd::Dtd;
use flux_engine::CompiledQuery;
use flux_query::parse_xquery;
use flux_xmark::{generate_string, XmarkConfig, PAPER_QUERIES, XMARK_DTD};
use flux_xml::writer::NullSink;

fn figure4_micro(c: &mut Criterion) {
    let dtd = Dtd::parse(XMARK_DTD).unwrap();
    let (doc, _) = generate_string(&XmarkConfig::new(256 << 10));

    let mut group = c.benchmark_group("figure4_micro");
    group.sample_size(10);
    for q in PAPER_QUERIES {
        let query = parse_xquery(q.source).unwrap();
        let flux = rewrite_query(&query, &dtd).unwrap();
        let compiled = CompiledQuery::compile(&flux, &dtd).unwrap();
        group.bench_with_input(BenchmarkId::new("flux", q.name), &doc, |b, doc| {
            b.iter(|| compiled.run(doc.as_bytes(), NullSink::default()).unwrap());
        });
        let dom = DomEngine { projection: ProjectionMode::Paths, memory_cap: None };
        group.bench_with_input(BenchmarkId::new("galax-sim", q.name), &doc, |b, doc| {
            b.iter(|| dom.run_to(&query, doc.as_bytes(), NullSink::default()).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, figure4_micro);
criterion_main!(benches);
