//! The DOM baseline engine: materialize (a projection of) the document,
//! then evaluate with the shared XQuery− tree evaluator.

use std::fmt;
use std::io::BufRead;
use std::sync::Arc;

use flux_query::eval::{eval_expr, Env, EvalError};
use flux_query::{Expr, ROOT_VAR};
use flux_xml::{Node, Reader, ReaderOptions, ResolvedEvent, Sink, Symbols, Writer, XmlError};

use crate::mem::{node_overhead, text_overhead};
use crate::projection::{projection_spec, ProjRt, ProjSpec};
use crate::ProjectionMode;

/// Baseline engine failures.
#[derive(Debug)]
pub enum BaselineError {
    /// Input XML failed to parse.
    Xml(XmlError),
    /// Query evaluation failed.
    Eval(EvalError),
    /// Materialization exceeded the configured memory cap (Figure 4's
    /// "- / >500M" cells).
    MemoryCap {
        /// Bytes materialized when the engine gave up.
        used: usize,
        /// The configured cap.
        cap: usize,
    },
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Xml(e) => write!(f, "{e}"),
            BaselineError::Eval(e) => write!(f, "{e}"),
            BaselineError::MemoryCap { used, cap } => {
                write!(f, "materialization aborted: {used} bytes exceeds the {cap}-byte cap")
            }
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<XmlError> for BaselineError {
    fn from(e: XmlError) -> Self {
        BaselineError::Xml(e)
    }
}

impl From<EvalError> for BaselineError {
    fn from(e: EvalError) -> Self {
        BaselineError::Eval(e)
    }
}

/// Statistics of one baseline run.
#[derive(Debug, Clone, Copy, Default)]
pub struct DomStats {
    /// Estimated heap bytes of the materialized (projected) tree.
    pub tree_bytes: usize,
    /// Element nodes materialized.
    pub nodes: usize,
    /// Bytes written to the output sink.
    pub output_bytes: u64,
}

/// Result of a baseline run collecting output in memory.
#[derive(Debug, Clone)]
pub struct DomOutcome {
    /// Serialized query result.
    pub output: String,
    /// Statistics.
    pub stats: DomStats,
}

/// A DOM-based XQuery− engine (see the crate docs).
#[derive(Debug, Clone, Copy)]
pub struct DomEngine {
    /// Whether to project the document while parsing.
    pub projection: ProjectionMode,
    /// Abort materialization beyond this many bytes (`None` = unlimited).
    /// Defaults to 512 MB — the paper's machine.
    pub memory_cap: Option<usize>,
}

impl Default for DomEngine {
    fn default() -> Self {
        DomEngine { projection: ProjectionMode::Paths, memory_cap: Some(512 << 20) }
    }
}

/// A DOM query prepared for repeated execution: the projection analysis
/// (the expensive static part of this baseline) runs once at preparation,
/// mirroring the FluX engine's `PreparedQuery` contract so benchmarks
/// compare pure execution on both engines.
#[derive(Debug, Clone)]
pub struct PreparedDomQuery {
    engine: DomEngine,
    query: Expr,
    spec: Option<ProjSpec>,
    /// Runtime form: the projection vocabulary interned once at prepare,
    /// the trie keyed by [`flux_xml::NameId`]. Parsing resolves each tag
    /// name once and the keep/skip decision is an integer lookup.
    rt: Option<(Arc<Symbols>, ProjRt)>,
}

impl PreparedDomQuery {
    /// The query this preparation runs.
    pub fn query(&self) -> &Expr {
        &self.query
    }

    /// The projection analysis (planning form), when projection is on.
    pub fn projection(&self) -> Option<&ProjSpec> {
        self.spec.as_ref()
    }

    /// Run over one document, collecting the output in memory.
    pub fn run(&self, input: impl BufRead) -> Result<DomOutcome, BaselineError> {
        let mut out = Vec::new();
        let stats = self.run_to(input, &mut out)?;
        Ok(DomOutcome { output: String::from_utf8(out).expect("writer emits UTF-8"), stats })
    }

    /// Run over one document, writing the output to any [`Sink`].
    pub fn run_to<S: Sink>(&self, input: impl BufRead, out: S) -> Result<DomStats, BaselineError> {
        let mut reader = match &self.rt {
            Some((symbols, _)) => {
                Reader::with_symbols(input, ReaderOptions::default(), Arc::clone(symbols))
            }
            None => Reader::new(input, ReaderOptions::default()),
        };
        let mut stats = DomStats::default();
        let rt = self.rt.as_ref().map(|(_, rt)| rt);
        let doc = self.engine.materialize(&mut reader, rt, &mut stats)?;
        let mut w = Writer::new(out);
        let mut env = Env::with(ROOT_VAR, &doc);
        eval_expr(&self.query, &mut env, &mut w)?;
        stats.output_bytes = w.bytes_written();
        Ok(stats)
    }
}

impl DomEngine {
    /// Convenience constructor.
    pub fn new(projection: ProjectionMode) -> DomEngine {
        DomEngine { projection, ..Default::default() }
    }

    /// Analyse the query once (projection paths), for many executions.
    pub fn prepare(&self, q: &Expr) -> PreparedDomQuery {
        let spec = match self.projection {
            ProjectionMode::Paths => Some(projection_spec(q)),
            ProjectionMode::None => None,
        };
        let rt = spec.as_ref().map(|s| {
            let mut symbols = Symbols::new();
            let rt = s.compile(&mut symbols);
            (Arc::new(symbols), rt)
        });
        PreparedDomQuery { engine: *self, query: q.clone(), spec, rt }
    }

    /// Run a query, collecting the output in memory.
    pub fn run(&self, q: &Expr, input: impl BufRead) -> Result<DomOutcome, BaselineError> {
        self.prepare(q).run(input)
    }

    /// Run a query, writing the output to a sink (benchmarks use a
    /// byte-counting null sink).
    pub fn run_to<S: Sink>(
        &self,
        q: &Expr,
        input: impl BufRead,
        out: S,
    ) -> Result<DomStats, BaselineError> {
        self.prepare(q).run_to(input, out)
    }

    /// Parse the stream into a (projected) document node with memory
    /// accounting and cap enforcement. Keep/skip decisions walk the
    /// compiled id-trie — one integer lookup per start tag.
    fn materialize<R: BufRead>(
        &self,
        reader: &mut Reader<R>,
        spec: Option<&ProjRt>,
        stats: &mut DomStats,
    ) -> Result<Node, BaselineError> {
        #[derive(Clone, Copy)]
        enum Keep<'s> {
            At(&'s ProjRt),
            Subtree,
            Skip,
        }
        let mut doc = Node::new("#document");
        // Stack of kept nodes under construction; parallel keep-state stack
        // covers *all* open elements.
        let mut build: Vec<Node> = Vec::new();
        let mut keep: Vec<Keep> = Vec::new();
        let root_keep = match spec {
            None => Keep::Subtree,
            Some(s) => {
                if s.marked {
                    Keep::Subtree
                } else {
                    Keep::At(s)
                }
            }
        };
        let mut bytes = 0usize;
        let cap = self.memory_cap.unwrap_or(usize::MAX);

        while let Some(ev) = reader.next_resolved()? {
            match ev {
                ResolvedEvent::Start(id, name) => {
                    let parent_keep = keep.last().copied().unwrap_or(root_keep);
                    let k = match parent_keep {
                        Keep::Skip => Keep::Skip,
                        Keep::Subtree => Keep::Subtree,
                        Keep::At(s) => match s.child(id) {
                            Some(c) if c.marked => Keep::Subtree,
                            Some(c) => Keep::At(c),
                            None => Keep::Skip,
                        },
                    };
                    if !matches!(k, Keep::Skip) {
                        build.push(Node::new(name));
                        bytes += node_overhead(name.len());
                        stats.nodes += 1;
                        if bytes > cap {
                            return Err(BaselineError::MemoryCap { used: bytes, cap });
                        }
                    }
                    keep.push(k);
                }
                ResolvedEvent::Text(t) => {
                    if matches!(keep.last().copied().unwrap_or(root_keep), Keep::Subtree) {
                        if let Some(top) = build.last_mut() {
                            top.push_text(t);
                            bytes += text_overhead(t.len());
                            if bytes > cap {
                                return Err(BaselineError::MemoryCap { used: bytes, cap });
                            }
                        }
                    }
                }
                ResolvedEvent::End(..) => {
                    let k = keep.pop().expect("reader guarantees balance");
                    if !matches!(k, Keep::Skip) {
                        let done = build.pop().expect("keep/build stacks aligned");
                        match build.last_mut() {
                            Some(parent) => parent.children.push(flux_xml::Child::Elem(done)),
                            None => doc.children.push(flux_xml::Child::Elem(done)),
                        }
                    }
                }
            }
        }
        stats.tree_bytes = bytes;
        Ok(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_query::eval::{eval_query, wrap_document};
    use flux_query::parse_xquery;

    const DOC: &str = "<bib>\
        <book><title>TCP</title><author>Stevens</author><publisher>AW</publisher><year>1994</year></book>\
        <book><title>Web</title><author>Abiteboul</author><publisher>MK</publisher><year>1999</year></book>\
        </bib>";

    #[track_caller]
    fn check(q: &str, mode: ProjectionMode) -> DomOutcome {
        let e = parse_xquery(q).unwrap();
        let engine = DomEngine::new(mode);
        let got = engine.run(&e, DOC.as_bytes()).unwrap();
        let doc = wrap_document(Node::parse_str(DOC).unwrap());
        assert_eq!(got.output, eval_query(&e, &doc).unwrap(), "query: {q}");
        got
    }

    #[test]
    fn projected_and_full_agree_with_reference() {
        for q in [
            "<results>{ for $b in $ROOT/bib/book return <r> {$b/title} </r> }</results>",
            "{ for $b in $ROOT/bib/book where $b/year > 1995 return {$b} }",
            "{ $ROOT/bib/book/author }",
            "{ for $b in $ROOT/bib/book return { for $c in $ROOT/bib/book where $b/author = $c/author return <pair/> } }",
        ] {
            let a = check(q, ProjectionMode::None);
            let b = check(q, ProjectionMode::Paths);
            assert_eq!(a.output, b.output);
            assert!(b.stats.tree_bytes <= a.stats.tree_bytes, "projection can only shrink");
        }
    }

    #[test]
    fn projection_shrinks_memory() {
        let q = "<r>{ for $b in $ROOT/bib/book return {$b/title} }</r>";
        let full = check(q, ProjectionMode::None);
        let proj = check(q, ProjectionMode::Paths);
        assert!(
            proj.stats.tree_bytes < full.stats.tree_bytes / 2,
            "projected {} vs full {}",
            proj.stats.tree_bytes,
            full.stats.tree_bytes
        );
    }

    #[test]
    fn memory_cap_aborts() {
        let q = parse_xquery("{ $ROOT/bib }").unwrap();
        let engine = DomEngine { projection: ProjectionMode::None, memory_cap: Some(64) };
        let err = engine.run(&q, DOC.as_bytes()).unwrap_err();
        assert!(matches!(err, BaselineError::MemoryCap { .. }), "{err}");
    }

    #[test]
    fn dom_memory_far_exceeds_document_size() {
        // The Figure 4 phenomenon: DOM engines pay multiples of the input.
        let full = check("{ $ROOT/bib }", ProjectionMode::None);
        assert!(
            full.stats.tree_bytes > 2 * DOC.len(),
            "tree {} vs doc {}",
            full.stats.tree_bytes,
            DOC.len()
        );
    }

    #[test]
    fn malformed_input_reported() {
        let q = parse_xquery("{ $ROOT/bib }").unwrap();
        let err = DomEngine::default().run(&q, "<bib><oops></bib>".as_bytes()).unwrap_err();
        assert!(matches!(err, BaselineError::Xml(_)));
    }
}
