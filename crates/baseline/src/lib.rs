//! # flux-baseline — DOM-based XQuery− engines (the paper's comparators)
//!
//! The paper's experiments (Section 6) compare the FluX engine against
//! *Galax V0.3.1 with projection turned on* \[14\] and a commercial engine
//! ("AnonX"). Neither is available here, so this crate implements engines
//! with the same algorithmic profile (DESIGN.md §3):
//!
//! * [`DomEngine`] with [`ProjectionMode::Paths`] — "galax-sim": parses the
//!   document into a DOM, *projected* to the paths the query touches
//!   (Marian & Siméon's technique \[14\], which the paper's §5 generalizes), then
//!   evaluates. Memory is linear in the (projected) document size.
//! * [`DomEngine`] with [`ProjectionMode::None`] — "anonx-sim": full
//!   materialization, reported time-only in the Figure 4 reproduction (the
//!   paper could not obtain AnonX's memory numbers either).
//!
//! Both honour a configurable memory cap (default 512 MB, the paper's
//! machine) and abort with [`BaselineError::MemoryCap`] when tree
//! construction exceeds it — reproducing the "- / >500M" cells of Figure 4
//! deterministically instead of by swapping.

pub mod dom_engine;
pub mod mem;
pub mod projection;

pub use dom_engine::{BaselineError, DomEngine, DomOutcome, DomStats, PreparedDomQuery};
pub use projection::{projection_spec, ProjRt, ProjSpec};

/// Projection behaviour of the DOM engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProjectionMode {
    /// Materialize the whole document ("anonx-sim").
    None,
    /// Materialize only the paths the query touches ("galax-sim", \[14\]).
    #[default]
    Paths,
}
