//! Document projection (Marian & Siméon \[14\], the paper's reference
//! baseline optimization).
//!
//! From the query we compute the set of absolute paths it can touch; while
//! parsing, everything off those paths is discarded. Nodes whose *values*
//! are needed (outputs, condition operands) keep their whole subtrees;
//! intermediate steps keep structure only. This is the whole-document
//! analogue of the FluX engine's per-variable buffer trees.

use std::collections::BTreeMap;
use std::collections::HashMap;

use flux_query::{Cond, Expr, ROOT_VAR};
use flux_xml::Symbols;

/// A projection trie over absolute paths from the document node.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProjSpec {
    /// Keep this node's entire subtree.
    pub subtree: bool,
    /// Children to descend into.
    pub children: BTreeMap<String, ProjSpec>,
}

impl ProjSpec {
    fn insert(&mut self, path: &[String], subtree: bool) {
        match path.split_first() {
            None => self.subtree |= subtree,
            Some((h, rest)) => self.children.entry(h.clone()).or_default().insert(rest, subtree),
        }
    }

    /// Remove redundant refinements below subtree-kept nodes.
    fn prune(&mut self) {
        if self.subtree {
            self.children.clear();
        } else {
            self.children.values_mut().for_each(ProjSpec::prune);
        }
    }

    /// Number of trie nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        1 + self.children.values().map(ProjSpec::node_count).sum::<usize>()
    }

    /// Compile to the runtime form, interning every step name (the same
    /// compile-time/per-event split as the FluX engine's buffer trees: the
    /// materialization loop compares interned ids, never strings).
    pub fn compile(&self, symbols: &mut Symbols) -> ProjRt {
        ProjRt {
            marked: self.subtree,
            children: self
                .children
                .iter()
                .map(|(name, c)| (symbols.intern(name), c.compile(symbols)))
                .collect(),
        }
    }
}

/// Runtime projection trie: the shared [`IdTrie`](flux_xml::IdTrie) keyed
/// by interned [`NameId`](flux_xml::NameId)s; `marked` means "keep this
/// node's whole subtree". UNKNOWN never matches a child — names the query
/// does not mention are exactly the ones projection discards.
pub type ProjRt = flux_xml::IdTrie;

/// Compute the projection for a query. Unknown variables (queries that are
/// not closed) project conservatively to "keep everything".
pub fn projection_spec(q: &Expr) -> ProjSpec {
    let mut spec = ProjSpec::default();
    let mut env: HashMap<String, Vec<String>> = HashMap::new();
    env.insert(ROOT_VAR.to_string(), Vec::new());
    collect(q, &mut env, &mut spec);
    spec.prune();
    spec
}

fn abs_path(
    env: &HashMap<String, Vec<String>>,
    var: &str,
    steps: &[String],
) -> Option<Vec<String>> {
    let mut p = env.get(var)?.clone();
    p.extend(steps.iter().cloned());
    Some(p)
}

fn collect(e: &Expr, env: &mut HashMap<String, Vec<String>>, spec: &mut ProjSpec) {
    match e {
        Expr::Empty | Expr::Str(_) => {}
        Expr::Seq(items) => items.iter().for_each(|i| collect(i, env, spec)),
        Expr::OutputVar { var } => match env.get(var) {
            Some(p) => spec.insert(&p.clone(), true),
            None => spec.subtree = true,
        },
        Expr::OutputPath { var, path } => match abs_path(env, var, path.steps()) {
            Some(p) => spec.insert(&p, true),
            None => spec.subtree = true,
        },
        Expr::If { cond, body } => {
            collect_cond(cond, env, spec);
            collect(body, env, spec);
        }
        Expr::For { var, in_var, path, pred, body } => {
            let bound = match abs_path(env, in_var, path.steps()) {
                Some(p) => {
                    spec.insert(&p, false); // the loop needs the nodes' existence
                    p
                }
                None => {
                    spec.subtree = true;
                    Vec::new()
                }
            };
            let prev = env.insert(var.clone(), bound);
            if let Some(c) = pred {
                collect_cond(c, env, spec);
            }
            collect(body, env, spec);
            match prev {
                Some(p) => {
                    env.insert(var.clone(), p);
                }
                None => {
                    env.remove(var);
                }
            }
        }
    }
}

fn collect_cond(c: &Cond, env: &HashMap<String, Vec<String>>, spec: &mut ProjSpec) {
    c.visit_paths(&mut |pr| {
        if let Some(p) = abs_path(env, &pr.var, pr.path.steps()) {
            spec.insert(&p, true); // condition operands need values
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_query::parse_xquery;

    #[test]
    fn simple_query_projects_to_used_paths() {
        let q = parse_xquery(
            "<results>{ for $b in $ROOT/bib/book return <r> {$b/title} </r> }</results>",
        )
        .unwrap();
        let spec = projection_spec(&q);
        let bib = &spec.children["bib"];
        let book = &bib.children["book"];
        assert!(!book.subtree, "book keeps structure only");
        assert!(book.children["title"].subtree, "title values are output");
        assert!(!spec.children.contains_key("other"));
    }

    #[test]
    fn condition_paths_are_kept() {
        let q = parse_xquery(
            "{ for $b in /bib/book where $b/year > 1991 and $b/pub = $b/title return <r/> }",
        )
        .unwrap();
        let spec = projection_spec(&q);
        let book = &spec.children["bib"].children["book"];
        assert!(book.children["year"].subtree);
        assert!(book.children["pub"].subtree);
        assert!(book.children["title"].subtree);
    }

    #[test]
    fn whole_variable_output_keeps_subtree() {
        let q = parse_xquery("{ for $p in /site/people/person return {$p} }").unwrap();
        let spec = projection_spec(&q);
        let person = &spec.children["site"].children["people"].children["person"];
        assert!(person.subtree);
        assert!(person.children.is_empty(), "pruned below subtree-kept node");
    }

    #[test]
    fn multiple_descents_union() {
        let q = parse_xquery(
            "{ for $p in /site/people/person return {$p/name} }\
             { for $a in /site/auctions/auction return {$a/price} }",
        )
        .unwrap();
        let spec = projection_spec(&q);
        let site = &spec.children["site"];
        assert!(site.children.contains_key("people"));
        assert!(site.children.contains_key("auctions"));
    }

    #[test]
    fn free_variables_project_everything() {
        let q = parse_xquery("{$loose}").unwrap();
        let spec = projection_spec(&q);
        assert!(spec.subtree);
    }
}
