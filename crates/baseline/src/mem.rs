//! Memory accounting for materialized trees.
//!
//! A DOM costs far more than the raw document: per-node structs, child
//! vectors and heap string headers. The paper's Figure 4 shows Galax using
//! ~7× the document size; our estimate charges the *actual* Rust-side
//! representation so the same blow-up is visible (and honestly attributable
//! to materialization, not to an arbitrary constant).

use flux_xml::{Child, Node};

/// Estimated heap bytes of one materialized element (excluding children):
/// the node struct itself plus the string header/content of its name.
pub fn node_overhead(name_len: usize) -> usize {
    std::mem::size_of::<Node>() + std::mem::size_of::<Child>() + name_len
}

/// Estimated heap bytes of a text child.
pub fn text_overhead(text_len: usize) -> usize {
    std::mem::size_of::<Child>() + text_len
}

/// Estimated total heap bytes of a materialized subtree.
pub fn tree_bytes(node: &Node) -> usize {
    let mut total = node_overhead(node.name.len());
    for c in &node.children {
        total += match c {
            Child::Text(t) => text_overhead(t.len()),
            Child::Elem(e) => tree_bytes(e),
        };
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_bytes_exceed_serialized_size() {
        let n = Node::parse_str("<a><b>hello</b><c>world</c></a>").unwrap();
        let serialized = n.to_xml().len();
        assert!(
            tree_bytes(&n) > serialized,
            "DOM {} should cost more than text {}",
            tree_bytes(&n),
            serialized
        );
    }

    #[test]
    fn monotone_in_structure() {
        let small = Node::parse_str("<a><b>x</b></a>").unwrap();
        let big = Node::parse_str("<a><b>x</b><b>x</b><b>x</b></a>").unwrap();
        assert!(tree_bytes(&big) > tree_bytes(&small));
    }
}
