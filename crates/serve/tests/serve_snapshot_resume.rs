//! Suspend/resume over the wire: a client mid-run sends `SNAPSHOT`, the
//! server detaches the session into a snapshot file and answers with a
//! token, and *any* later connection — including one to a freshly
//! restarted server process over the same snapshot directory — presents
//! the token in `RESUME` and continues the run.
//!
//! The acceptance bar mirrors the in-process snapshot tests: for every
//! query in the paper's suite, the concatenation of the `RESULT` bytes
//! streamed before the snapshot and after the resume is byte-identical to
//! an uninterrupted run, and the `DONE` counters match exactly.

use std::path::{Path, PathBuf};

use flux::prelude::*;
use flux_serve::{Client, ErrorCode, Server, ServerConfig};
use flux_xmark::{generate_string, XmarkConfig, PAPER_QUERIES, XMARK_DTD};

fn snap_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("flux-serve-snap-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn paper_registry(doc_bytes: usize) -> (String, QueryRegistry, Vec<(&'static str, String, u64)>) {
    let (doc, _) = generate_string(&XmarkConfig::new(doc_bytes));
    let engine = Engine::builder().dtd_str(XMARK_DTD).build().unwrap();
    let mut registry = QueryRegistry::new();
    let mut references = Vec::new();
    for q in PAPER_QUERIES {
        let prepared = engine.prepare(q.source).unwrap();
        let reference = prepared.run_str(&doc).unwrap();
        registry.register(q.name, prepared);
        references.push((q.name, reference.output, reference.stats.events));
    }
    (doc, registry, references)
}

fn server_with_snapshots(registry: QueryRegistry, dir: &Path) -> flux_serve::ServerHandle {
    let cfg = ServerConfig { snapshot_dir: Some(dir.to_path_buf()), ..ServerConfig::default() };
    Server::spawn("127.0.0.1:0", registry, cfg).unwrap()
}

#[test]
fn every_paper_query_survives_snapshot_and_resume_across_a_server_restart() {
    let dir = snap_dir("restart");
    let (doc, registry, references) = paper_registry(8 << 10);

    // Phase 1: one connection per query, half the document, SNAPSHOT.
    let server = server_with_snapshots(registry.clone(), &dir);
    let addr = server.addr();
    let mut suspended = Vec::new();
    for (name, _, _) in &references {
        let mut client = Client::connect(addr).unwrap();
        client.open(name).unwrap();
        let (head, tail) = doc.as_bytes().split_at(doc.len() / 2);
        for chunk in head.chunks(257) {
            client.chunk(chunk).unwrap();
        }
        client.snapshot().unwrap();
        let out = client.collect().unwrap();
        assert_eq!(out.error, None, "{name}: snapshot must not error");
        let token = out.snapshot.expect("SNAPSHOTTED token");
        suspended.push((*name, token, out.output, tail));
    }
    // The server process goes away entirely; only the snapshot directory
    // (and the registry the restarted process recompiles) survives.
    server.shutdown().unwrap();

    // Phase 2: a fresh server over the same directory resumes each token.
    let server = server_with_snapshots(registry, &dir);
    let addr = server.addr();
    for (name, token, mut output, tail) in suspended {
        let mut client = Client::connect(addr).unwrap();
        client.resume(&token).unwrap();
        for chunk in tail.chunks(257) {
            client.chunk(chunk).unwrap();
        }
        client.finish().unwrap();
        let out = client.collect().unwrap();
        assert_eq!(out.error, None, "{name}: resume must not error");
        output.extend_from_slice(&out.output);
        let (_, reference, ref_events) = references.iter().find(|(n, _, _)| *n == name).unwrap();
        assert_eq!(
            String::from_utf8(output).unwrap(),
            *reference,
            "{name}: pre-snapshot + post-resume output must be byte-identical"
        );
        let (events, output_bytes) = out.done.expect("finished");
        assert_eq!(events, *ref_events, "{name}: event count spans the suspension");
        assert_eq!(output_bytes as usize, reference.len(), "{name}");
        // Tokens are single-use: the same token again is refused.
        let mut again = Client::connect(addr).unwrap();
        again.resume(&token).unwrap();
        let out = again.collect().unwrap();
        let (code, _) = out.error.expect("replayed token refused");
        assert_eq!(code, Some(ErrorCode::Engine), "{name}");
    }
    server.shutdown().unwrap();
    assert_eq!(
        std::fs::read_dir(&dir).unwrap().count(),
        0,
        "every consumed token's snapshot file is removed"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shared_fanout_runs_snapshot_and_resume_as_a_whole() {
    let dir = snap_dir("shared");
    let (doc, registry, references) = paper_registry(4 << 10);
    let names: Vec<&str> = references.iter().map(|(n, _, _)| *n).take(3).collect();

    let server = server_with_snapshots(registry, &dir);
    let addr = server.addr();

    let mut client = Client::connect(addr).unwrap();
    client.open_many(&names).unwrap();
    let (head, tail) = doc.as_bytes().split_at(doc.len() / 3);
    for chunk in head.chunks(113) {
        client.chunk(chunk).unwrap();
    }
    client.snapshot().unwrap();
    let outs = client.collect_shared(names.len()).unwrap();
    let token = outs[0].snapshot.clone().expect("SNAPSHOTTED token");
    assert!(outs.iter().all(|o| o.snapshot.as_deref() == Some(token.as_str())));

    // A different connection picks the whole fan-out run back up.
    let mut client = Client::connect(addr).unwrap();
    client.resume(&token).unwrap();
    for chunk in tail.chunks(113) {
        client.chunk(chunk).unwrap();
    }
    client.finish().unwrap();
    let resumed = client.collect_shared(names.len()).unwrap();
    for (sub, name) in names.iter().enumerate() {
        assert_eq!(resumed[sub].error, None, "{name}");
        let mut output = outs[sub].output.clone();
        output.extend_from_slice(&resumed[sub].output);
        let (_, reference, _) = references.iter().find(|(n, _, _)| n == name).unwrap();
        assert_eq!(
            String::from_utf8(output).unwrap(),
            *reference,
            "{name}: subscriber {sub} output must span the suspension byte-identically"
        );
        assert!(resumed[sub].done.is_some(), "{name}");
    }
    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_refusals_leave_the_run_and_connection_usable() {
    // No snapshot directory configured: SNAPSHOT is refused with an
    // Engine error, but the run continues and completes normally.
    let (doc, registry, references) = paper_registry(2 << 10);
    let server = Server::spawn("127.0.0.1:0", registry.clone(), ServerConfig::default()).unwrap();
    let addr = server.addr();
    let (name, reference, _) = &references[0];

    let mut client = Client::connect(addr).unwrap();
    client.open(name).unwrap();
    let (head, tail) = doc.as_bytes().split_at(doc.len() / 2);
    client.chunk(head).unwrap();
    client.snapshot().unwrap();
    let out = client.collect().unwrap();
    let (code, message) = out.error.expect("refused without a snapshot dir");
    assert_eq!(code, Some(ErrorCode::Engine));
    assert!(message.contains("not enabled"), "{message}");
    let mut output = out.output;
    client.chunk(tail).unwrap();
    client.finish().unwrap();
    let out = client.collect().unwrap();
    assert_eq!(out.error, None);
    output.extend_from_slice(&out.output);
    assert_eq!(String::from_utf8(output).unwrap(), *reference);
    server.shutdown().unwrap();

    // Unknown and malformed tokens are refused; the connection stays
    // usable for an ordinary run afterwards.
    let dir = snap_dir("refuse");
    let server = server_with_snapshots(registry, &dir);
    let mut client = Client::connect(server.addr()).unwrap();
    for bad in ["never-issued", "../../etc/passwd", ""] {
        client.resume(bad).unwrap();
        let out = client.collect().unwrap();
        let (code, _) = out.error.expect("bad token refused");
        assert_eq!(code, Some(ErrorCode::Engine), "token {bad:?}");
    }
    let out = client.run_document(name, doc.as_bytes(), 4096).unwrap();
    assert_eq!(out.error, None);
    assert_eq!(String::from_utf8(out.output).unwrap(), *reference);
    server.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
