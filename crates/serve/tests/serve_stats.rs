//! Observability loopback: the `STATS` wire frame and the admin HTTP
//! listener, both answering with the shared registry's Prometheus text.
//!
//! The acceptance bar: a scrape taken mid-run reports the live pressure
//! gauges (sessions, connections) truthfully, and once every `DONE` frame
//! has been collected the scraped engine counters equal the *sum* of the
//! per-run `RunStats` those frames carried — the registry is the same
//! story the wire tells, aggregated.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use flux::prelude::*;
use flux::MetricsRegistry;
use flux_serve::{Client, Server, ServerConfig};

const DTD: &str = "<!ELEMENT bib (book)*><!ELEMENT book (title|author)*>\
    <!ELEMENT title (#PCDATA)><!ELEMENT author (#PCDATA)>";
const QUERY: &str = "<results>{ for $b in $ROOT/bib/book return \
    <result> {$b/title} {$b/author} </result> }</results>";

fn registry() -> QueryRegistry {
    let engine = Engine::builder().dtd_str(DTD).build().unwrap();
    let mut registry = QueryRegistry::new();
    registry.register("books", engine.prepare(QUERY).unwrap());
    registry
}

fn doc(books: usize) -> String {
    let mut d = String::from("<bib>");
    for i in 0..books {
        d.push_str(&format!("<book><title>t{i}</title><author>a{i}</author></book>"));
    }
    d.push_str("</bib>");
    d
}

/// Sum every series of `family` in a rendered exposition (all label sets),
/// skipping `# TYPE` lines and longer names sharing the prefix.
fn family_sum(text: &str, family: &str) -> f64 {
    text.lines()
        .filter(|l| !l.starts_with('#'))
        .filter(|l| {
            l.strip_prefix(family)
                .is_some_and(|rest| rest.starts_with('{') || rest.starts_with(' '))
        })
        .filter_map(|l| l.rsplit(' ').next()?.parse::<f64>().ok())
        .sum()
}

fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn stats_mid_run_gauges_and_final_counters_match_summed_done_stats() {
    let metrics = MetricsRegistry::new();
    let cfg = ServerConfig { shards: 2, metrics: Some(metrics.clone()), ..ServerConfig::default() };
    let server = Server::spawn("127.0.0.1:0", registry(), cfg).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // Mid-run: a session is open with the document half-fed. The scrape
    // must see it live — worker gauges publish on the worker's own loop, so
    // poll until the publication lands.
    let body = doc(50);
    let split = body.len() / 2;
    client.open("books").unwrap();
    client.chunk(&body.as_bytes()[..split]).unwrap();
    wait_for("the live-session gauge to reflect the open run", || {
        let text = client.scrape().unwrap();
        family_sum(&text, "flux_runtime_live_sessions") == 1.0
    });
    let text = client.scrape().unwrap();
    assert_eq!(family_sum(&text, "flux_serve_active_connections"), 1.0, "{text}");
    assert!(
        family_sum(&text, "flux_serve_frames_total") >= 2.0,
        "OPEN and CHUNK were counted: {text}"
    );
    assert!(family_sum(&text, "flux_serve_scrapes_total") >= 1.0, "a scrape sees itself: {text}");
    assert_eq!(family_sum(&text, "flux_engine_runs_total"), 0.0, "nothing finished yet: {text}");

    // Finish this run and push two more through; sum what the DONE frames
    // claim.
    client.chunk(&body.as_bytes()[split..]).unwrap();
    client.finish().unwrap();
    let mut done = vec![client.collect().unwrap().done.expect("finished")];
    for books in [1, 17] {
        let out = client.run_document("books", doc(books).as_bytes(), 64).unwrap();
        done.push(out.done.expect("finished"));
    }
    let events: u64 = done.iter().map(|d| d.0).sum();
    let output_bytes: u64 = done.iter().map(|d| d.1).sum();

    // note_run folds a run into the registry *before* its completion event
    // is sent, so a scrape taken after collecting the DONEs must already
    // include every run — strict equality, no polling.
    let text = client.scrape().unwrap();
    assert_eq!(family_sum(&text, "flux_engine_runs_total"), done.len() as f64, "{text}");
    assert_eq!(family_sum(&text, "flux_engine_events_total"), events as f64, "{text}");
    assert_eq!(family_sum(&text, "flux_engine_output_bytes_total"), output_bytes as f64, "{text}");
    assert_eq!(
        family_sum(&text, "flux_serve_frames_total{dir=\"out\",kind=\"done\"}"),
        done.len() as f64,
        "{text}"
    );
    assert_eq!(family_sum(&text, "flux_engine_run_errors_total"), 0.0, "{text}");
    wait_for("the live-session gauge to drain", || {
        let text = client.scrape().unwrap();
        family_sum(&text, "flux_runtime_live_sessions") == 0.0
    });

    // The wire text and a direct registry render are the same exposition.
    let direct = metrics.render_text();
    for family in
        ["flux_engine_runs_total", "flux_engine_events_total", "flux_engine_output_bytes_total"]
    {
        assert_eq!(family_sum(&direct, family), family_sum(&text, family), "{family}");
    }
    server.shutdown().unwrap();
}

#[test]
fn admin_listener_answers_http_with_the_prometheus_exposition() {
    let metrics = MetricsRegistry::new();
    let cfg = ServerConfig {
        metrics: Some(metrics.clone()),
        admin: Some("127.0.0.1:0".into()),
        ..ServerConfig::default()
    };
    let server = Server::spawn("127.0.0.1:0", registry(), cfg).unwrap();
    let admin = server.admin_addr().expect("admin listener configured");

    // One data-plane run first, so the scrape has engine series to show.
    let mut client = Client::connect(server.addr()).unwrap();
    let out = client.run_document("books", doc(5).as_bytes(), 32).unwrap();
    assert!(out.done.is_some());

    let mut stream = TcpStream::connect(admin).unwrap();
    stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();

    assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");
    assert!(response.contains("Content-Type: text/plain; version=0.0.4"), "{response}");
    let body = response.split("\r\n\r\n").nth(1).expect("header/body split");
    assert!(body.contains("# TYPE flux_engine_runs_total counter"), "{body}");
    assert_eq!(family_sum(body, "flux_engine_runs_total"), 1.0, "{body}");
    assert_eq!(family_sum(body, "flux_serve_scrapes_total{via=\"http\"}"), 1.0, "{body}");

    // The admin endpoint and the wire frame render the same registry.
    let wire = client.scrape().unwrap();
    assert_eq!(family_sum(&wire, "flux_engine_runs_total"), 1.0, "{wire}");
    server.shutdown().unwrap();
}

#[test]
fn stats_without_a_registry_answers_empty() {
    let server = Server::spawn("127.0.0.1:0", registry(), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    assert_eq!(client.scrape().unwrap(), "");
    // The connection stays fully usable after the empty scrape.
    let out = client.run_document("books", doc(3).as_bytes(), 16).unwrap();
    assert!(out.done.is_some());
    server.shutdown().unwrap();
}
