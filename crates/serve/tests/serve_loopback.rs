//! Loopback integration: the wire protocol, the connection state machine,
//! admission-control stalls, and budget hygiene — all over real TCP.
//!
//! The acceptance bar: results over the network are byte-identical to
//! in-process `CompiledQuery` runs for every query in the paper's suite,
//! whatever the chunking, including under admission-control stalls; and a
//! dropped connection aborts its session with *full* budget release
//! (witnessed by an independent counting hook returning to zero).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use flux::prelude::*;
use flux_serve::{Client, ErrorCode, FrameKind, Server, ServerConfig, ServerMsg, StallReason};
use flux_xmark::{generate_string, XmarkConfig, PAPER_QUERIES, XMARK_DTD};

/// The weak schema forces author buffering until each book closes — the
/// workload that parks bytes in the shared budget at will.
const WEAK_DTD: &str = "<!ELEMENT bib (book)*><!ELEMENT book (title|author)*>\
    <!ELEMENT title (#PCDATA)><!ELEMENT author (#PCDATA)>";
const QUERY: &str = "<results>{ for $b in $ROOT/bib/book return \
    <result> {$b/title} {$b/author} </result> }</results>";

fn hold_prefix(payload: usize) -> String {
    format!("<bib><book><author>{}</author>", "x".repeat(payload))
}

const SUFFIX: &str = "<title>t</title></book></bib>";

fn weak_registry() -> (QueryRegistry, PreparedQuery) {
    let engine = Engine::builder().dtd_str(WEAK_DTD).build().unwrap();
    let q = engine.prepare(QUERY).unwrap();
    let mut registry = QueryRegistry::new();
    registry.register("weak", q.clone());
    (registry, q)
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn concurrent_clients_with_tiny_chunks_match_one_shot_for_every_query() {
    // Every query of the paper's suite over the same XMark document, many
    // concurrent connections, chunk sizes from pathological to sane — all
    // byte-identical to the in-process run.
    let (doc, _) = generate_string(&XmarkConfig::new(24 << 10));
    let engine = Engine::builder().dtd_str(XMARK_DTD).build().unwrap();
    let mut registry = QueryRegistry::new();
    let mut references = Vec::new();
    for q in PAPER_QUERIES {
        let prepared = engine.prepare(q.source).unwrap();
        let reference = prepared.run_str(&doc).unwrap();
        registry.register(q.name, prepared);
        references.push((q.name, reference));
    }

    let cfg = ServerConfig { shards: 2, ..ServerConfig::default() };
    let server = Server::spawn("127.0.0.1:0", registry, cfg).unwrap();
    let addr = server.addr();
    let doc = Arc::new(doc);
    let references = Arc::new(references);

    let mut handles = Vec::new();
    for qi in 0..references.len() {
        for chunk_size in [3usize, 17, 257, 4096] {
            let doc = Arc::clone(&doc);
            let references = Arc::clone(&references);
            handles.push(std::thread::spawn(move || {
                let (name, reference) = &references[qi];
                let mut client = Client::connect(addr).expect("connect");
                let outcome = client.run_document(name, doc.as_bytes(), chunk_size).expect("run");
                assert_eq!(outcome.error, None, "{name}/{chunk_size}");
                assert_eq!(
                    String::from_utf8(outcome.output).unwrap(),
                    reference.output,
                    "{name} chunked at {chunk_size} must match the one-shot run"
                );
                let (events, output_bytes) = outcome.done.expect("finished");
                assert_eq!(events, reference.stats.events, "{name}/{chunk_size}");
                assert_eq!(output_bytes, reference.stats.output_bytes, "{name}/{chunk_size}");
                // The DONE frame carries the scanner telemetry: the
                // server-side kernel label plus non-trivial byte counters.
                let scan = outcome.scan.expect("scanner telemetry in DONE");
                assert_eq!(scan.backend, flux::xml::Scanner::detect().backend());
                assert!(scan.fast_path_bytes + scan.general_path_bytes > 0, "{name}/{chunk_size}");
                // …and the delivery-tape telemetry: under tape delivery
                // every event travels a batch; under FLUX_FORCE_PULL the
                // counters are present but zero.
                let tape = outcome.tape.expect("tape telemetry in DONE");
                if std::env::var_os("FLUX_FORCE_PULL").is_none_or(|v| v.is_empty()) {
                    assert!(tape.batches > 0, "{name}/{chunk_size}");
                    assert_eq!(tape.events, events, "{name}/{chunk_size}");
                } else {
                    assert_eq!((tape.batches, tape.events), (0, 0), "{name}/{chunk_size}");
                }
            }));
        }
    }
    for h in handles {
        h.join().expect("client thread");
    }
    server.shutdown().unwrap();
}

#[test]
fn admission_stalls_surface_on_the_wire_and_preserve_results() {
    // Deterministic stall choreography: two connections park enough bytes
    // to close the admission gate, a third *must* receive STALLED, and
    // once the first completes it must receive RESUMED — with all three
    // results byte-identical to the in-process run.
    let (registry, q) = weak_registry();
    let reference = q.run_str(&(hold_prefix(1000) + SUFFIX)).unwrap();
    let ctrl = AdmissionController::with_reserve(3000, 1200);
    let cfg = ServerConfig { shards: 1, budget: Some(ctrl.hook()), ..ServerConfig::default() };
    let server = Server::spawn("127.0.0.1:0", registry, cfg).unwrap();
    let addr = server.addr();

    let prefix = hold_prefix(1000);
    let mut a = Client::connect(addr).unwrap();
    a.open("weak").unwrap();
    a.chunk(prefix.as_bytes()).unwrap();
    wait_until("A's buffers to charge the pool", || ctrl.used() >= 1000);

    let mut b = Client::connect(addr).unwrap();
    b.open("weak").unwrap();
    b.chunk(prefix.as_bytes()).unwrap();
    wait_until("the pool to go tight", || ctrl.is_tight());

    // C holds nothing: its first chunk stalls, and the client sees it.
    let mut c = Client::connect(addr).unwrap();
    c.open("weak").unwrap();
    c.chunk(prefix.as_bytes()).unwrap();
    assert_eq!(
        c.next_msg().unwrap(),
        ServerMsg::Stalled { reason: StallReason::Budget },
        "C must stall on the tight pool, blaming the budget"
    );

    // A completes: its release re-opens the gate, C resumes on the edge.
    a.chunk(SUFFIX.as_bytes()).unwrap();
    a.finish().unwrap();
    let out_a = a.collect().unwrap();
    assert_eq!(String::from_utf8(out_a.output).unwrap(), reference.output);
    // RESUMED must arrive — but the resumed run's first RESULT bytes may
    // legitimately beat it onto the wire (output is produced on the worker
    // before the resume notification crosses the event channel).
    let mut early_results = Vec::new();
    loop {
        match c.next_msg().unwrap() {
            ServerMsg::Resumed => break,
            ServerMsg::Result(bytes) => early_results.extend_from_slice(&bytes),
            other => panic!("expected RESUMED after A's release, got {other:?}"),
        }
    }

    c.chunk(SUFFIX.as_bytes()).unwrap();
    c.finish().unwrap();
    let out_c = c.collect().unwrap();
    let full_c = [early_results, out_c.output].concat();
    assert_eq!(String::from_utf8(full_c).unwrap(), reference.output);

    b.chunk(SUFFIX.as_bytes()).unwrap();
    b.finish().unwrap();
    let out_b = b.collect().unwrap();
    assert_eq!(String::from_utf8(out_b.output).unwrap(), reference.output);

    wait_until("all budget to release", || ctrl.used() == 0);
    assert!(ctrl.peak_used() <= ctrl.budget());
    server.shutdown().unwrap();
}

#[test]
fn malformed_and_oversized_frames_get_structured_errors_and_close() {
    let (registry, _) = weak_registry();
    let cfg = ServerConfig { max_frame_payload: 1 << 10, ..ServerConfig::default() };
    let server = Server::spawn("127.0.0.1:0", registry, cfg).unwrap();
    let addr = server.addr();

    // Unknown kind byte: structured protocol error, then EOF.
    let mut bad = Client::connect(addr).unwrap();
    bad.send_raw(&[0x7f, 0, 0, 0, 0]).unwrap();
    match bad.next_msg().unwrap() {
        ServerMsg::Error { code, message } => {
            assert_eq!(code, Some(ErrorCode::Protocol));
            assert!(message.contains("0x7f"), "{message}");
        }
        other => panic!("expected a protocol error, got {other:?}"),
    }
    let eof = bad.next_msg();
    assert!(eof.is_err(), "connection must close after a protocol error: {eof:?}");

    // Oversized declared length: refused from the header alone (no payload
    // follows), mid-run — and the half-run session is torn down with it.
    let mut big = Client::connect(addr).unwrap();
    big.open("weak").unwrap();
    big.chunk(b"<bib><book>").unwrap();
    big.send_raw(&flux_serve::client::header(FrameKind::Chunk, 1 << 20)).unwrap();
    match big.next_msg().unwrap() {
        ServerMsg::Error { code, message } => {
            assert_eq!(code, Some(ErrorCode::Protocol));
            assert!(message.contains("1048576"), "{message}");
        }
        other => panic!("expected a protocol error, got {other:?}"),
    }
    assert!(big.next_msg().is_err(), "connection must close after an oversized frame");

    // State violation: CHUNK before OPEN.
    let mut early = Client::connect(addr).unwrap();
    early.chunk(b"<bib>").unwrap();
    match early.next_msg().unwrap() {
        ServerMsg::Error { code, .. } => assert_eq!(code, Some(ErrorCode::State)),
        other => panic!("expected a state error, got {other:?}"),
    }
    assert!(early.next_msg().is_err(), "connection must close after a state error");

    // Unknown query id: structured error, but the connection survives and
    // a valid OPEN still works.
    let mut retry = Client::connect(addr).unwrap();
    retry.open("nope").unwrap();
    match retry.next_msg().unwrap() {
        ServerMsg::Error { code, message } => {
            assert_eq!(code, Some(ErrorCode::UnknownQuery));
            assert!(message.contains("nope"), "{message}");
        }
        other => panic!("expected an unknown-query error, got {other:?}"),
    }
    let doc = hold_prefix(10) + SUFFIX;
    let outcome = retry.run_document("weak", doc.as_bytes(), 16).unwrap();
    assert!(outcome.done.is_some(), "the connection stays usable: {outcome:?}");

    // The documented recovery also holds for a *pipelining* client: the
    // doomed run's CHUNKs and FINISH were already in flight when the
    // refusal arrived — the server absorbs them, and the same connection
    // serves the corrected run.
    let mut pipelined = Client::connect(addr).unwrap();
    let bad = pipelined.run_document("nope", doc.as_bytes(), 8).unwrap();
    assert!(
        matches!(bad.error, Some((Some(ErrorCode::UnknownQuery), _))),
        "refusal answers the pipelined run: {bad:?}"
    );
    let ok = pipelined.run_document("weak", doc.as_bytes(), 8).unwrap();
    assert!(ok.done.is_some(), "pipelined client recovers on the same connection: {ok:?}");
    server.shutdown().unwrap();
}

#[test]
fn engine_errors_are_structured_and_keep_the_connection_open() {
    let (registry, _) = weak_registry();
    let server = Server::spawn("127.0.0.1:0", registry, ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // A schema violation fails the run; the error arrives at FINISH with
    // the engine's own message, and the connection accepts the next OPEN.
    let outcome = client.run_document("weak", b"<bib><zzz/></bib>", 4).unwrap();
    let (code, message) = outcome.error.expect("schema violation surfaces");
    assert_eq!(code, Some(ErrorCode::Engine));
    assert!(message.contains("zzz"), "{message}");

    let doc = hold_prefix(10) + SUFFIX;
    let ok = client.run_document("weak", doc.as_bytes(), 16).unwrap();
    assert!(ok.done.is_some(), "connection survives an engine error: {ok:?}");
    server.shutdown().unwrap();
}

#[test]
fn abort_frame_is_acknowledged_and_releases_the_budget() {
    let (registry, _) = weak_registry();
    let ctrl = AdmissionController::new(1 << 20);
    let cfg = ServerConfig { budget: Some(ctrl.hook()), ..ServerConfig::default() };
    let server = Server::spawn("127.0.0.1:0", registry, cfg).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    client.open("weak").unwrap();
    client.chunk(hold_prefix(2000).as_bytes()).unwrap();
    wait_until("the session to charge the pool", || ctrl.used() >= 2000);
    client.abort().unwrap();
    let outcome = client.collect().unwrap();
    assert!(outcome.aborted, "{outcome:?}");
    wait_until("the aborted session to release", || ctrl.used() == 0);

    // The connection is immediately reusable.
    let doc = hold_prefix(10) + SUFFIX;
    assert!(client.run_document("weak", doc.as_bytes(), 16).unwrap().done.is_some());
    server.shutdown().unwrap();
}

#[test]
fn multiple_opens_share_one_parse_and_demux_per_subscriber() {
    // Shared fan-out over the wire: several OPENs before the first CHUNK
    // become one shared parse, and every subscriber's tagged result stream
    // is byte-identical to its in-process one-shot run — including a
    // duplicate subscription of the same query.
    let (doc, _) = generate_string(&XmarkConfig::new(24 << 10));
    let engine = Engine::builder().dtd_str(XMARK_DTD).build().unwrap();
    let mut registry = QueryRegistry::new();
    let mut references = std::collections::HashMap::new();
    for q in PAPER_QUERIES {
        let prepared = engine.prepare(q.source).unwrap();
        references.insert(q.name, prepared.run_str(&doc).unwrap());
        registry.register(q.name, prepared);
    }
    let server = Server::spawn("127.0.0.1:0", registry, ServerConfig::default()).unwrap();

    let ids = ["Q1", "Q13", "Q20", "Q1"];
    for chunk_size in [3usize, 257, 4096] {
        let mut client = Client::connect(server.addr()).unwrap();
        let outs = client.run_document_shared(&ids, doc.as_bytes(), chunk_size).unwrap();
        assert_eq!(outs.len(), ids.len());
        for (id, out) in ids.iter().zip(&outs) {
            let reference = &references[id];
            assert_eq!(out.error, None, "{id}@{chunk_size}");
            assert_eq!(
                String::from_utf8(out.output.clone()).unwrap(),
                reference.output,
                "{id} over the shared parse must match its one-shot run @{chunk_size}"
            );
            let (events, output_bytes) = out.done.expect("finished");
            assert_eq!(events, reference.stats.events, "{id}@{chunk_size}");
            assert_eq!(output_bytes, reference.stats.output_bytes, "{id}@{chunk_size}");
        }
        // The same connection runs a classic single-query request next:
        // the seal picks the untagged path again.
        let single = client.run_document("Q13", doc.as_bytes(), chunk_size).unwrap();
        assert_eq!(
            String::from_utf8(single.output).unwrap(),
            references["Q13"].output,
            "single mode on the same connection @{chunk_size}"
        );
    }
    server.shutdown().unwrap();
}

#[test]
fn shared_abort_acknowledges_every_subscriber_and_releases_the_budget() {
    let (registry, _) = weak_registry();
    let ctrl = AdmissionController::new(1 << 20);
    let cfg = ServerConfig { budget: Some(ctrl.hook()), ..ServerConfig::default() };
    let server = Server::spawn("127.0.0.1:0", registry, cfg).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // All three subscribers buffer their own copy of the held author.
    client.open_many(&["weak", "weak", "weak"]).unwrap();
    client.chunk(hold_prefix(2000).as_bytes()).unwrap();
    wait_until("all three subscribers to charge the pool", || ctrl.used() >= 3 * 2000);

    client.abort().unwrap();
    let outs = client.collect_shared(3).unwrap();
    for out in &outs {
        assert!(out.aborted, "{outs:?}");
    }
    wait_until("the aborted shared session to release every byte", || ctrl.used() == 0);

    // Aborting a collected-but-never-chunked set acks without a session …
    client.open_many(&["weak", "weak"]).unwrap();
    client.abort().unwrap();
    let outs = client.collect_shared(2).unwrap();
    assert!(outs.iter().all(|o| o.aborted), "{outs:?}");

    // … and the connection stays usable for a fresh shared run.
    let doc = hold_prefix(10) + SUFFIX;
    let outs = client.run_document_shared(&["weak", "weak"], doc.as_bytes(), 16).unwrap();
    assert!(outs.iter().all(|o| o.done.is_some()), "{outs:?}");
    assert_eq!(outs[0].output, outs[1].output);
    server.shutdown().unwrap();
}

#[test]
fn shared_stall_pauses_the_whole_parse_and_resumes_for_all() {
    // Budget stalls in shared mode are stream-level: the connection gets
    // one untagged STALLED/RESUMED pair while another session holds the
    // pool, and both subscribers' results still match the reference.
    let (registry, q) = weak_registry();
    // The shared run's document is small enough that both subscribers fit
    // beside the remaining holder once the gate reopens.
    let shared_prefix = hold_prefix(300);
    let reference = q.run_str(&(shared_prefix.clone() + SUFFIX)).unwrap();
    let ctrl = AdmissionController::with_reserve(3000, 1200);
    let cfg = ServerConfig { shards: 1, budget: Some(ctrl.hook()), ..ServerConfig::default() };
    let server = Server::spawn("127.0.0.1:0", registry, cfg).unwrap();

    let prefix = hold_prefix(1000);
    let mut holder = Client::connect(server.addr()).unwrap();
    holder.open("weak").unwrap();
    holder.chunk(prefix.as_bytes()).unwrap();
    wait_until("the holder to charge the pool", || ctrl.used() >= 1000);
    let mut holder2 = Client::connect(server.addr()).unwrap();
    holder2.open("weak").unwrap();
    holder2.chunk(prefix.as_bytes()).unwrap();
    wait_until("the pool to go tight", || ctrl.is_tight());

    let mut shared = Client::connect(server.addr()).unwrap();
    shared.open_many(&["weak", "weak"]).unwrap();
    shared.chunk(shared_prefix.as_bytes()).unwrap();
    assert_eq!(
        shared.next_msg().unwrap(),
        ServerMsg::Stalled { reason: StallReason::Budget },
        "shared run stalls as a whole, blaming the budget"
    );

    // Free the pool; the shared parse resumes and completes.
    holder.chunk(SUFFIX.as_bytes()).unwrap();
    holder.finish().unwrap();
    assert!(holder.collect().unwrap().done.is_some());
    holder2.chunk(SUFFIX.as_bytes()).unwrap();
    holder2.finish().unwrap();
    assert!(holder2.collect().unwrap().done.is_some());

    shared.chunk(SUFFIX.as_bytes()).unwrap();
    shared.finish().unwrap();
    let outs = shared.collect_shared(2).unwrap();
    for out in &outs {
        assert_eq!(String::from_utf8(out.output.clone()).unwrap(), reference.output);
        assert!(out.resumes >= 1, "the resume reached the client: {out:?}");
        assert_eq!(out.stall_reasons.len(), out.stalls, "one reason per STALLED: {out:?}");
        assert!(
            out.stall_reasons.iter().all(|&r| r == StallReason::Budget),
            "every stall here is a budget stall: {out:?}"
        );
    }
    wait_until("all budget to release", || ctrl.used() == 0);
    server.shutdown().unwrap();
}

/// An independent witness wrapped around the controller: the disconnect
/// test's proof that *everything* charged was released, whatever the
/// controller claims about itself.
struct CountingHook {
    inner: Arc<dyn BudgetHook>,
    used: AtomicUsize,
    grown: AtomicUsize,
}

impl BudgetHook for CountingHook {
    fn try_grow(&self, bytes: usize) -> bool {
        if !self.inner.try_grow(bytes) {
            return false;
        }
        self.used.fetch_add(bytes, Ordering::SeqCst);
        self.grown.fetch_add(bytes, Ordering::SeqCst);
        true
    }
    fn release(&self, bytes: usize) {
        // Count down before returning the bytes to the pool (see the
        // CountingHook in tests/admission.rs): keeps the witness's view
        // from transiently exceeding the pool's under concurrency.
        self.used.fetch_sub(bytes, Ordering::SeqCst);
        self.inner.release(bytes);
    }
    fn should_pause(&self) -> bool {
        self.inner.should_pause()
    }
    fn subscribe_waker(&self, waker: &Arc<BudgetWaker>) {
        self.inner.subscribe_waker(waker);
    }
}

#[test]
fn mid_stream_disconnect_aborts_the_session_and_releases_every_byte() {
    let (registry, _) = weak_registry();
    let ctrl = AdmissionController::new(1 << 20);
    let counting = Arc::new(CountingHook {
        inner: ctrl.hook(),
        used: AtomicUsize::new(0),
        grown: AtomicUsize::new(0),
    });
    let cfg = ServerConfig {
        budget: Some(counting.clone() as Arc<dyn BudgetHook>),
        ..ServerConfig::default()
    };
    let server = Server::spawn("127.0.0.1:0", registry, cfg).unwrap();

    // Three connections park buffers, then vanish mid-stream.
    for _ in 0..3 {
        let mut client = Client::connect(server.addr()).unwrap();
        client.open("weak").unwrap();
        // `grown` is monotonic and sampled before the chunk goes out, so
        // this wait can neither race the charge nor the release of a
        // previously dropped session.
        let before = counting.grown.load(Ordering::SeqCst);
        client.chunk(hold_prefix(2000).as_bytes()).unwrap();
        wait_until("the session to charge the pool", || {
            counting.grown.load(Ordering::SeqCst) >= before + 2000
        });
        drop(client); // TCP close, no ABORT frame
    }
    wait_until("dropped connections to release every charged byte", || {
        counting.used.load(Ordering::SeqCst) == 0
    });
    assert!(
        counting.grown.load(Ordering::SeqCst) >= 6000,
        "the sessions really did charge: {}",
        counting.grown.load(Ordering::SeqCst)
    );
    assert_eq!(ctrl.used(), 0, "controller agrees: aggregate back to zero");
    server.shutdown().unwrap();
}
