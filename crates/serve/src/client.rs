//! A small blocking client for the flux-serve wire protocol — what the
//! loopback tests, the example and the `netbench` driver speak. Production
//! clients in other languages only need the frame table in
//! [`protocol`](crate::protocol).
//!
//! Writes are internally buffered and flushed opportunistically without
//! blocking, and reads drain whenever a write would block — so a caller may
//! push an arbitrarily large document before collecting results without
//! deadlocking on full TCP buffers in both directions.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use flux_xml::{Backend, ScanTelemetry, TapeTelemetry};

use crate::protocol::{
    encode_frame, DecodePoll, ErrorCode, FrameDecoder, FrameKind, StallReason, HEADER_LEN,
};

/// One decoded server→client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerMsg {
    /// A chunk of query output.
    Result(Vec<u8>),
    /// The run finished; counters from the engine's `RunStats`.
    Done {
        /// Input events the engine processed.
        events: u64,
        /// Total output bytes (across all `RESULT` frames).
        output_bytes: u64,
        /// Scanner telemetry from the server's tokenizer; `None` when the
        /// server speaks the pre-telemetry 17-byte `DONE` payload.
        scan: Option<ScanTelemetry>,
        /// Delivery-tape telemetry (batches, tape-delivered events,
        /// fast-forwarded events); `None` when the server speaks a
        /// pre-tape `DONE` payload.
        tape: Option<TapeTelemetry>,
    },
    /// The run was aborted (acknowledges `ABORT`).
    AbortAck,
    /// The session paused on the server's admission control.
    Stalled {
        /// Why (from the frame's reason byte; [`StallReason::Unknown`] from
        /// a pre-reason server's empty payload).
        reason: StallReason,
    },
    /// The stalled session resumed.
    Resumed,
    /// The server's metrics snapshot, Prometheus text (answers
    /// [`Client::scrape`]; empty if the server has no registry).
    Stats {
        /// The rendered text exposition.
        text: String,
    },
    /// Structured failure.
    Error {
        /// Decoded error code (`None` for a code this client is too old to
        /// know).
        code: Option<ErrorCode>,
        /// Human-readable cause.
        message: String,
    },
    /// The run was suspended server-side (acknowledges `SNAPSHOT`); present
    /// the token in a later [`Client::resume`] — on any connection, even
    /// after a server restart — to continue it.
    Snapshotted {
        /// The opaque resume token.
        token: String,
    },
}

/// Everything a full client→server run produced, collected by
/// [`Client::collect`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Concatenated `RESULT` payloads, in order.
    pub output: Vec<u8>,
    /// `(events, output_bytes)` from the `DONE` frame, if the run finished.
    pub done: Option<(u64, u64)>,
    /// Scanner telemetry from the `DONE` frame (`None` until the run
    /// finishes, or from a pre-telemetry server).
    pub scan: Option<ScanTelemetry>,
    /// Delivery-tape telemetry from the `DONE` frame (`None` until the
    /// run finishes, or from a pre-tape server).
    pub tape: Option<TapeTelemetry>,
    /// The run acknowledged an abort.
    pub aborted: bool,
    /// The `ERROR` frame, if any ended the run.
    pub error: Option<(Option<ErrorCode>, String)>,
    /// `STALLED` frames observed.
    pub stalls: usize,
    /// The reason byte of each `STALLED` frame, in arrival order (always
    /// `stalls` entries).
    pub stall_reasons: Vec<StallReason>,
    /// `RESUMED` frames observed.
    pub resumes: usize,
    /// The resume token, if a `SNAPSHOTTED` frame suspended the run.
    pub snapshot: Option<String>,
}

/// A blocking protocol client — see the [module docs](self).
pub struct Client {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Encoded frames not yet accepted by the socket.
    pending: Vec<u8>,
    pending_pos: usize,
    /// Complete inbound frames, decoded lazily: shared fan-out runs read
    /// them tagged, everything else as plain [`ServerMsg`]s.
    inbox: VecDeque<(FrameKind, Vec<u8>)>,
    scratch: Vec<u8>,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            // Generous: the client accepts whatever the server frames.
            decoder: FrameDecoder::new(64 << 20),
            pending: Vec::new(),
            pending_pos: 0,
            inbox: VecDeque::new(),
            scratch: vec![0; 16 << 10],
        })
    }

    /// Queue an `OPEN` for the registered query `id`.
    pub fn open(&mut self, id: &str) -> io::Result<()> {
        self.send(FrameKind::Open, id.as_bytes())
    }

    /// Queue the next document chunk.
    pub fn chunk(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.send(FrameKind::Chunk, bytes)
    }

    /// Queue end-of-document.
    pub fn finish(&mut self) -> io::Result<()> {
        self.send(FrameKind::Finish, &[])
    }

    /// Queue a mid-stream abort.
    pub fn abort(&mut self) -> io::Result<()> {
        self.send(FrameKind::Abort, &[])
    }

    /// Ask the server to suspend the running session to a snapshot and
    /// detach; the token arrives as [`ServerMsg::Snapshotted`] (after any
    /// remaining `RESULT` frames).
    pub fn snapshot(&mut self) -> io::Result<()> {
        self.send(FrameKind::Snapshot, &[])
    }

    /// Re-attach a suspended run by its snapshot token; on success the
    /// connection is mid-run again and `chunk`/`finish` continue it.
    pub fn resume(&mut self, token: &str) -> io::Result<()> {
        self.send(FrameKind::Resume, token.as_bytes())
    }

    /// Scrape the server's metrics: send a `STATS` frame and block for the
    /// `STATS_REPLY`, returning the Prometheus text snapshot (empty if the
    /// server has no registry). Legal in any state, even mid-run — frames
    /// of an in-flight run that arrive first are stashed and re-queued, so
    /// a following [`Client::collect`] still sees them in order.
    pub fn scrape(&mut self) -> io::Result<String> {
        self.send(FrameKind::Stats, &[])?;
        let mut stash = Vec::new();
        loop {
            let (kind, payload) = self.next_frame()?;
            if kind == FrameKind::StatsReply {
                for frame in stash.into_iter().rev() {
                    self.inbox.push_front(frame);
                }
                return Ok(String::from_utf8_lossy(&payload).into_owned());
            }
            stash.push((kind, payload));
        }
    }

    /// Queue raw pre-encoded bytes (protocol-violation testing).
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.pending.extend_from_slice(bytes);
        self.drive()
    }

    fn send(&mut self, kind: FrameKind, payload: &[u8]) -> io::Result<()> {
        encode_frame(&mut self.pending, kind, payload);
        self.drive()
    }

    /// Non-blocking progress: push pending writes, drain available reads.
    fn drive(&mut self) -> io::Result<()> {
        self.stream.set_nonblocking(true)?;
        let res = self.drive_nonblocking();
        // Restore blocking mode for `next_msg` before surfacing any error.
        self.stream.set_nonblocking(false)?;
        res
    }

    fn drive_nonblocking(&mut self) -> io::Result<()> {
        loop {
            let mut progressed = false;
            while self.pending_pos < self.pending.len() {
                match self.stream.write(&self.pending[self.pending_pos..]) {
                    Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                    Ok(n) => {
                        self.pending_pos += n;
                        progressed = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
            if self.pending_pos == self.pending.len() {
                self.pending.clear();
                self.pending_pos = 0;
            }
            // Drain whatever the server already produced so neither side's
            // TCP buffer can deadlock a large exchange.
            match self.stream.read(&mut self.scratch) {
                Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
                Ok(n) => {
                    self.decoder.feed(&self.scratch[..n]);
                    self.decode_into_inbox()?;
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
            if self.pending.is_empty() || !progressed {
                return Ok(());
            }
        }
    }

    fn decode_into_inbox(&mut self) -> io::Result<()> {
        loop {
            match self.decoder.poll() {
                Ok(DecodePoll::Frame { kind, payload }) => {
                    self.inbox.push_back((kind, payload.to_vec()));
                }
                Ok(DecodePoll::NeedMoreData) => return Ok(()),
                Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            }
        }
    }

    /// The next server message, blocking until one arrives. Pending writes
    /// keep flushing while waiting.
    pub fn next_msg(&mut self) -> io::Result<ServerMsg> {
        let (kind, payload) = self.next_frame()?;
        decode_msg(kind, &payload)
    }

    /// The next raw frame, blocking until one arrives.
    fn next_frame(&mut self) -> io::Result<(FrameKind, Vec<u8>)> {
        loop {
            if let Some(frame) = self.inbox.pop_front() {
                return Ok(frame);
            }
            if !self.pending.is_empty() {
                self.drive()?;
                if !self.pending.is_empty() && self.inbox.is_empty() {
                    // The server is not draining us yet (backpressure):
                    // yield rather than spin.
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                continue;
            }
            // Blocking read (stream is left in blocking mode by drive()).
            match self.stream.read(&mut self.scratch) {
                Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
                Ok(n) => {
                    self.decoder.feed(&self.scratch[..n]);
                    self.decode_into_inbox()?;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Collect messages until the run ends (`DONE` or `ERROR`).
    pub fn collect(&mut self) -> io::Result<Outcome> {
        let mut out = Outcome::default();
        loop {
            match self.next_msg()? {
                ServerMsg::Result(bytes) => out.output.extend_from_slice(&bytes),
                ServerMsg::Done { events, output_bytes, scan, tape } => {
                    out.done = Some((events, output_bytes));
                    out.scan = scan;
                    out.tape = tape;
                    return Ok(out);
                }
                ServerMsg::AbortAck => {
                    out.aborted = true;
                    return Ok(out);
                }
                ServerMsg::Stalled { reason } => {
                    out.stalls += 1;
                    out.stall_reasons.push(reason);
                }
                ServerMsg::Resumed => out.resumes += 1,
                // A scrape answer that outran a previous caller: not part
                // of the run, skip it.
                ServerMsg::Stats { .. } => {}
                ServerMsg::Error { code, message } => {
                    out.error = Some((code, message));
                    return Ok(out);
                }
                ServerMsg::Snapshotted { token } => {
                    out.snapshot = Some(token);
                    return Ok(out);
                }
            }
        }
    }

    /// Open `id`, stream `doc` in `chunk_size`-byte chunks, finish, and
    /// collect the whole exchange.
    pub fn run_document(&mut self, id: &str, doc: &[u8], chunk_size: usize) -> io::Result<Outcome> {
        self.open(id)?;
        for chunk in doc.chunks(chunk_size.max(1)) {
            self.chunk(chunk)?;
        }
        self.finish()?;
        self.collect()
    }

    /// Queue one `OPEN` per id: a shared fan-out run (the server parses the
    /// document once for all of them). Follow with `chunk`/`finish` and
    /// [`Client::collect_shared`].
    pub fn open_many<I: AsRef<str>>(&mut self, ids: &[I]) -> io::Result<()> {
        for id in ids {
            self.open(id.as_ref())?;
        }
        Ok(())
    }

    /// Collect a shared fan-out run of `subs` subscribers: demultiplex the
    /// subscriber-tagged `RESULT`/`DONE`/`ERROR` frames into one
    /// [`Outcome`] per subscriber (in `OPEN` order), until every
    /// subscriber has its terminal frame. `STALLED`/`RESUMED` are
    /// connection-level — the shared parse pauses as a whole — and are
    /// counted on every subscriber.
    ///
    /// A connection-level (untagged) `ERROR` ends every remaining
    /// subscriber with that error.
    pub fn collect_shared(&mut self, subs: usize) -> io::Result<Vec<Outcome>> {
        let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
        let mut outs = vec![Outcome::default(); subs];
        let mut open = vec![true; subs];
        while open.iter().any(|&o| o) {
            let (kind, payload) = self.next_frame()?;
            match kind {
                FrameKind::Stalled => {
                    let reason = StallReason::from_payload(&payload);
                    outs.iter_mut().for_each(|o| {
                        o.stalls += 1;
                        o.stall_reasons.push(reason);
                    });
                }
                FrameKind::Resumed => outs.iter_mut().for_each(|o| o.resumes += 1),
                // A scrape answer that outran a previous caller: not part
                // of the run, skip it.
                FrameKind::StatsReply => {}
                // A snapshot suspends the shared run as a whole: one
                // untagged token answers every subscriber.
                FrameKind::Snapshotted => {
                    let token = String::from_utf8_lossy(&payload).into_owned();
                    outs.iter_mut().for_each(|o| o.snapshot = Some(token.clone()));
                    return Ok(outs);
                }
                FrameKind::Error if untagged_error(&payload, subs) => {
                    // Connection-fatal refusal (protocol/state/compile):
                    // one untagged frame answers the whole run.
                    let msg = decode_msg(kind, &payload)?;
                    let ServerMsg::Error { code, message } = msg else { unreachable!() };
                    for (o, live) in outs.iter_mut().zip(&open) {
                        if *live {
                            o.error = Some((code, message.clone()));
                        }
                    }
                    return Ok(outs);
                }
                FrameKind::Result | FrameKind::Done | FrameKind::Error => {
                    if payload.len() < 4 {
                        return Err(bad("shared-mode frame shorter than its subscriber tag"));
                    }
                    let sub =
                        u32::from_be_bytes(payload[..4].try_into().expect("4 bytes")) as usize;
                    if sub >= subs {
                        return Err(bad("subscriber tag out of range"));
                    }
                    match decode_msg(kind, &payload[4..])? {
                        ServerMsg::Result(bytes) => outs[sub].output.extend_from_slice(&bytes),
                        ServerMsg::Done { events, output_bytes, scan, tape } => {
                            outs[sub].done = Some((events, output_bytes));
                            outs[sub].scan = scan;
                            outs[sub].tape = tape;
                            open[sub] = false;
                        }
                        ServerMsg::AbortAck => {
                            outs[sub].aborted = true;
                            open[sub] = false;
                        }
                        ServerMsg::Error { code, message } => {
                            outs[sub].error = Some((code, message));
                            open[sub] = false;
                        }
                        ServerMsg::Stalled { .. }
                        | ServerMsg::Resumed
                        | ServerMsg::Stats { .. }
                        | ServerMsg::Snapshotted { .. } => {
                            return Err(bad("tagged flow-control frame"))
                        }
                    }
                }
                _ => return Err(bad("client-to-server frame from server")),
            }
        }
        Ok(outs)
    }

    /// Open every id as one shared run, stream `doc` once, and collect the
    /// per-subscriber outcomes.
    pub fn run_document_shared<I: AsRef<str>>(
        &mut self,
        ids: &[I],
        doc: &[u8],
        chunk_size: usize,
    ) -> io::Result<Vec<Outcome>> {
        self.open_many(ids)?;
        for chunk in doc.chunks(chunk_size.max(1)) {
            self.chunk(chunk)?;
        }
        self.finish()?;
        self.collect_shared(ids.len())
    }

    /// The underlying stream (for tests that need raw socket control).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }
}

/// Is this `ERROR` payload connection-level (untagged)? A tagged payload
/// starts with a valid in-range 4-byte subscriber index followed by a known
/// error-code byte; an untagged one starts with the code byte itself (1-4,
/// never 0 — the high byte of any real subscriber index).
fn untagged_error(payload: &[u8], subs: usize) -> bool {
    let tagged = payload.len() >= 5
        && (u32::from_be_bytes(payload[..4].try_into().expect("4 bytes")) as usize) < subs
        && ErrorCode::from_byte(payload[4]).is_some();
    !tagged
}

fn decode_msg(kind: FrameKind, payload: &[u8]) -> io::Result<ServerMsg> {
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    Ok(match kind {
        FrameKind::Result => ServerMsg::Result(payload.to_vec()),
        FrameKind::Done => match payload.first() {
            // The current 58-byte payload (scanner + tape telemetry), the
            // pre-tape 34-byte one, and the pre-telemetry 17-byte one all
            // decode: a new client can talk to an old server.
            Some(0) if matches!(payload.len(), 17 | 34 | 58) => ServerMsg::Done {
                events: u64::from_be_bytes(payload[1..9].try_into().expect("8 bytes")),
                output_bytes: u64::from_be_bytes(payload[9..17].try_into().expect("8 bytes")),
                scan: if payload.len() >= 34 {
                    Some(ScanTelemetry {
                        backend: Backend::from_code(payload[17])
                            .ok_or_else(|| bad("unknown scanner backend code in DONE"))?,
                        fast_path_bytes: u64::from_be_bytes(
                            payload[18..26].try_into().expect("8 bytes"),
                        ),
                        general_path_bytes: u64::from_be_bytes(
                            payload[26..34].try_into().expect("8 bytes"),
                        ),
                    })
                } else {
                    None
                },
                tape: if payload.len() >= 58 {
                    Some(TapeTelemetry {
                        batches: u64::from_be_bytes(payload[34..42].try_into().expect("8 bytes")),
                        events: u64::from_be_bytes(payload[42..50].try_into().expect("8 bytes")),
                        fast_forwarded: u64::from_be_bytes(
                            payload[50..58].try_into().expect("8 bytes"),
                        ),
                        ..TapeTelemetry::default()
                    })
                } else {
                    None
                },
            },
            Some(1) => ServerMsg::AbortAck,
            _ => return Err(bad("malformed DONE payload")),
        },
        FrameKind::Stalled => ServerMsg::Stalled { reason: StallReason::from_payload(payload) },
        FrameKind::Resumed => ServerMsg::Resumed,
        FrameKind::StatsReply => {
            ServerMsg::Stats { text: String::from_utf8_lossy(payload).into_owned() }
        }
        FrameKind::Error => {
            let (code, message) = payload.split_first().ok_or_else(|| bad("empty ERROR"))?;
            ServerMsg::Error {
                code: ErrorCode::from_byte(*code),
                message: String::from_utf8_lossy(message).into_owned(),
            }
        }
        FrameKind::Snapshotted => {
            ServerMsg::Snapshotted { token: String::from_utf8_lossy(payload).into_owned() }
        }
        FrameKind::Open
        | FrameKind::Chunk
        | FrameKind::Finish
        | FrameKind::Abort
        | FrameKind::Snapshot
        | FrameKind::Resume
        | FrameKind::Stats => return Err(bad("client-to-server frame from server")),
    })
}

/// A valid frame header for `len` payload bytes of `kind` (testing aid).
pub fn header(kind: FrameKind, len: u32) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0] = kind.byte();
    h[1..].copy_from_slice(&len.to_be_bytes());
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn done_decodes_current_and_legacy_payloads() {
        // Current 58-byte payload: counters + scanner + tape telemetry.
        let scan = ScanTelemetry {
            backend: Backend::Avx2,
            fast_path_bytes: 4096,
            general_path_bytes: 128,
        };
        let tape =
            TapeTelemetry { batches: 2, events: 9, fast_forwarded: 4, ..TapeTelemetry::default() };
        let payload = crate::protocol::done_finished_payload(10, 20, scan, tape);
        match decode_msg(FrameKind::Done, &payload).unwrap() {
            ServerMsg::Done { events: 10, output_bytes: 20, scan: Some(got), tape: Some(t) } => {
                assert_eq!(got.backend, Backend::Avx2);
                assert_eq!(got.fast_path_bytes, 4096);
                assert_eq!(got.general_path_bytes, 128);
                assert_eq!(t.batches, 2);
                assert_eq!(t.events, 9);
                assert_eq!(t.fast_forwarded, 4);
            }
            other => panic!("{other:?}"),
        }

        // Pre-tape 34-byte payload still decodes, with tape absent.
        match decode_msg(FrameKind::Done, &payload[..34]).unwrap() {
            ServerMsg::Done { events: 10, output_bytes: 20, scan: Some(_), tape: None } => {}
            other => panic!("{other:?}"),
        }

        // Pre-telemetry 17-byte payload still decodes, with scan absent.
        match decode_msg(FrameKind::Done, &payload[..17]).unwrap() {
            ServerMsg::Done { events: 10, output_bytes: 20, scan: None, tape: None } => {}
            other => panic!("{other:?}"),
        }

        // An unknown backend code is malformed, not silently mislabeled.
        let mut bad_code = payload;
        bad_code[17] = 0xFF;
        assert!(decode_msg(FrameKind::Done, &bad_code).is_err());

        // Any other length is malformed.
        assert!(decode_msg(FrameKind::Done, &payload[..20]).is_err());
    }
}
