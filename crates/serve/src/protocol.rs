//! The flux-serve wire protocol: length-prefixed frames over a byte
//! stream.
//!
//! Every frame is `[1-byte kind][4-byte big-endian payload length][payload]`
//! — trivially incremental to encode and decode, self-describing enough for
//! a client in any language, and free of per-byte escaping so document
//! chunks travel verbatim.
//!
//! | kind | dir | name      | payload |
//! |------|-----|-----------|---------|
//! | 0x01 | c→s | `OPEN`    | UTF-8 query id (resolved against the server's [`QueryRegistry`](flux::QueryRegistry)) |
//! | 0x02 | c→s | `CHUNK`   | next bytes of the XML document (any split) |
//! | 0x03 | c→s | `FINISH`  | empty — end of document, complete the run |
//! | 0x04 | c→s | `ABORT`   | empty — drop the run mid-stream |
//! | 0x05 | c→s | `SNAPSHOT`| empty — suspend the run to a server-side snapshot and detach |
//! | 0x06 | c→s | `RESUME`  | UTF-8 snapshot token — re-attach a suspended run |
//! | 0x07 | c→s | `STATS`   | empty — scrape the server's metrics registry |
//! | 0x81 | s→c | `RESULT`  | next bytes of the query output (any split) |
//! | 0x82 | s→c | `DONE`    | 1 status byte (0 finished / 1 aborted); on 0: two u64-BE — events, output bytes — then scanner telemetry: 1 backend-code byte ([`Backend::code`](flux_xml::Backend::code)) + two u64-BE — fast-path bytes, general-path bytes — then tape telemetry: three u64-BE — batches drained, tape-delivered events, fast-forwarded events (all 0 under per-event delivery). Decoders accept the pre-tape 34-byte body for compatibility. |
//! | 0x83 | s→c | `STALLED` | 1 [`StallReason`] byte — the session paused on a shared resource; ease off. Pre-reason servers send an empty payload, which decodes as [`StallReason::Unknown`]. |
//! | 0x84 | s→c | `RESUMED` | empty — the session is executing again |
//! | 0x85 | s→c | `ERROR`   | 1 [`ErrorCode`] byte + UTF-8 message |
//! | 0x86 | s→c | `SNAPSHOTTED` | UTF-8 snapshot token |
//! | 0x87 | s→c | `STATS_REPLY` | Prometheus text exposition of the aggregated metrics snapshot; empty when the server runs without a metrics registry |
//!
//! ## Suspend / resume
//!
//! A client mid-run may send `SNAPSHOT`: the server serializes the
//! session's complete resumable state (`flux-state` bytes plus the query
//! ids) under its snapshot directory, flushes the output produced so far,
//! and answers `SNAPSHOTTED` with an opaque token. The run is then
//! *detached* — the connection returns to idle and may close. Any client
//! presenting the token in a `RESUME` frame later — on a new connection,
//! even to a freshly restarted server process over the same registry —
//! continues the run exactly where it left off: the concatenation of
//! `RESULT` bytes before the snapshot and after the resume is
//! byte-identical to an uninterrupted run. Tokens are single-use; the
//! snapshot file is consumed by a successful `RESUME`.
//!
//! ## Shared fan-out mode
//!
//! A client may send *several* `OPEN` frames before its first `CHUNK`:
//! the server collects the query ids and seals the set when document bytes
//! start flowing. One `OPEN` is the classic single-query run above. Two or
//! more compile into one shared plan
//! ([`SubscriptionSet`](flux::SubscriptionSet)) executed in a **single
//! pass** over the document — and the per-run frames demultiplex: in
//! shared mode every `RESULT`, `DONE` and `ERROR` payload is prefixed with
//! a 4-byte big-endian subscriber index (the position of the `OPEN` that
//! created it), each subscriber getting its own result stream, terminal
//! status and counters. `STALLED`/`RESUMED` stay connection-level — the
//! shared parse pauses as a whole. `ABORT` before the terminal frames
//! drops the whole run and is acknowledged with one tagged aborted-`DONE`
//! per subscriber.
//!
//! [`FrameDecoder`] mirrors the incremental reader's `FeedSource` style:
//! bytes arrive via [`FrameDecoder::feed`] with arbitrary boundaries,
//! [`FrameDecoder::poll`] yields complete frames (borrowing the payload
//! from the window — committed on the *next* poll, so no copy) or
//! [`DecodePoll::NeedMoreData`], and the committed prefix is reclaimed on
//! the next feed so a long-lived connection retains only the tail of one
//! unfinished frame. Malformed input — an unknown kind byte, or a declared
//! payload length over the decoder's cap — is a [`FrameError`], detected
//! from the 5 header bytes alone (an oversized length never waits for, or
//! buffers, its payload).

use std::fmt;

use flux_xml::{ScanTelemetry, TapeTelemetry};

/// Bytes of a frame header: kind + u32 payload length.
pub const HEADER_LEN: usize = 5;

/// Frame type tags. Values `< 0x80` travel client→server, `>= 0x80`
/// server→client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client→server: start a run of the registered query named in the
    /// payload.
    Open,
    /// Client→server: the next chunk of the document.
    Chunk,
    /// Client→server: end of document.
    Finish,
    /// Client→server: drop the run mid-stream.
    Abort,
    /// Client→server: suspend the run to a server-side snapshot, detach,
    /// and hand back a resume token.
    Snapshot,
    /// Client→server: re-attach a suspended run by its snapshot token.
    Resume,
    /// Client→server: scrape the server's metrics registry.
    Stats,
    /// Server→client: the next chunk of query output.
    Result,
    /// Server→client: the run is over (status byte: 0 finished, 1
    /// aborted).
    Done,
    /// Server→client: the session paused on a shared resource; the
    /// payload is one [`StallReason`] byte (empty from pre-reason
    /// servers).
    Stalled,
    /// Server→client: the stalled session resumed.
    Resumed,
    /// Server→client: structured failure ([`ErrorCode`] + message).
    Error,
    /// Server→client: the run was suspended; the payload is the resume
    /// token.
    Snapshotted,
    /// Server→client: the metrics scrape, as Prometheus text.
    StatsReply,
}

impl FrameKind {
    /// Wire tag of this kind.
    pub fn byte(self) -> u8 {
        match self {
            FrameKind::Open => 0x01,
            FrameKind::Chunk => 0x02,
            FrameKind::Finish => 0x03,
            FrameKind::Abort => 0x04,
            FrameKind::Snapshot => 0x05,
            FrameKind::Resume => 0x06,
            FrameKind::Stats => 0x07,
            FrameKind::Result => 0x81,
            FrameKind::Done => 0x82,
            FrameKind::Stalled => 0x83,
            FrameKind::Resumed => 0x84,
            FrameKind::Error => 0x85,
            FrameKind::Snapshotted => 0x86,
            FrameKind::StatsReply => 0x87,
        }
    }

    /// Parse a wire tag.
    pub fn from_byte(b: u8) -> Option<FrameKind> {
        Some(match b {
            0x01 => FrameKind::Open,
            0x02 => FrameKind::Chunk,
            0x03 => FrameKind::Finish,
            0x04 => FrameKind::Abort,
            0x05 => FrameKind::Snapshot,
            0x06 => FrameKind::Resume,
            0x07 => FrameKind::Stats,
            0x81 => FrameKind::Result,
            0x82 => FrameKind::Done,
            0x83 => FrameKind::Stalled,
            0x84 => FrameKind::Resumed,
            0x85 => FrameKind::Error,
            0x86 => FrameKind::Snapshotted,
            0x87 => FrameKind::StatsReply,
            _ => return None,
        })
    }
}

/// Why a `STALLED` frame was sent — its one-byte payload.
///
/// [`StallReason::Unknown`] never travels: it is what a *decoder* reports
/// for the zero-length payload a pre-reason server sends, so new clients
/// interoperate with old servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallReason {
    /// The shared buffer budget refused new growth; headroom returns when
    /// other sessions release buffers.
    Budget,
    /// The admission controller's re-entry reserve refused to wake a
    /// parked (suspended/migrated) session back in.
    AdmissionReserve,
    /// The peer predates reason codes (empty payload).
    Unknown,
}

impl StallReason {
    /// Wire value ([`StallReason::Unknown`] has none).
    pub fn byte(self) -> u8 {
        match self {
            StallReason::Budget => 1,
            StallReason::AdmissionReserve => 2,
            StallReason::Unknown => 0,
        }
    }

    /// Decode a `STALLED` payload: the first byte when present and known,
    /// [`StallReason::Unknown`] for the legacy empty payload or an
    /// unrecognized value.
    pub fn from_payload(payload: &[u8]) -> StallReason {
        match payload.first() {
            Some(1) => StallReason::Budget,
            Some(2) => StallReason::AdmissionReserve,
            _ => StallReason::Unknown,
        }
    }
}

/// First payload byte of an `ERROR` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed or oversized frame; the server closes the connection.
    Protocol,
    /// `OPEN` named an id the server's registry does not hold; the
    /// connection stays open.
    UnknownQuery,
    /// The run failed (XML syntax, schema violation, budget denial …); the
    /// connection stays open for the next `OPEN`.
    Engine,
    /// A frame arrived in a state that cannot accept it (e.g. `CHUNK`
    /// before `OPEN`, or a second `OPEN` mid-run); the server closes the
    /// connection.
    State,
}

impl ErrorCode {
    /// Wire value.
    pub fn byte(self) -> u8 {
        match self {
            ErrorCode::Protocol => 1,
            ErrorCode::UnknownQuery => 2,
            ErrorCode::Engine => 3,
            ErrorCode::State => 4,
        }
    }

    /// Parse a wire value.
    pub fn from_byte(b: u8) -> Option<ErrorCode> {
        Some(match b {
            1 => ErrorCode::Protocol,
            2 => ErrorCode::UnknownQuery,
            3 => ErrorCode::Engine,
            4 => ErrorCode::State,
            _ => return None,
        })
    }
}

/// What [`FrameDecoder::poll`] produced.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodePoll<'a> {
    /// A complete frame. The payload borrows the decoder's window and is
    /// committed (reclaimed) on the next `poll`/`feed`.
    Frame {
        /// The frame type.
        kind: FrameKind,
        /// The frame payload.
        payload: &'a [u8],
    },
    /// The fed bytes end mid-frame: feed more and poll again.
    NeedMoreData,
}

/// A protocol violation in the inbound byte stream. Fatal for the
/// connection: framing is lost, so the peer gets a structured
/// [`ErrorCode::Protocol`] and the stream is closed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The kind byte is not a known frame tag.
    BadKind(u8),
    /// The declared payload length exceeds the decoder's cap.
    Oversized {
        /// Declared payload length.
        len: usize,
        /// The decoder's configured maximum.
        max: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadKind(b) => write!(f, "unknown frame kind byte 0x{b:02x}"),
            FrameError::Oversized { len, max } => {
                write!(f, "declared payload of {len} bytes exceeds the {max}-byte frame cap")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Incremental, resumable frame decoder — see the [module docs](self).
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
    /// Bytes of the last returned frame, committed on the next poll so the
    /// returned payload can borrow the window.
    defer: usize,
    max_payload: usize,
}

impl FrameDecoder {
    /// A decoder refusing frames with payloads over `max_payload` bytes.
    pub fn new(max_payload: usize) -> FrameDecoder {
        FrameDecoder { buf: Vec::new(), pos: 0, defer: 0, max_payload }
    }

    /// Append the next bytes off the stream (any boundary).
    pub fn feed(&mut self, bytes: &[u8]) {
        self.commit();
        // Reclaim the consumed prefix before growing, like `FeedSource`: a
        // long-lived connection retains only one unfinished frame's tail.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Decode the next complete frame out of the fed bytes.
    pub fn poll(&mut self) -> Result<DecodePoll<'_>, FrameError> {
        self.commit();
        let avail = &self.buf[self.pos..];
        if avail.len() < HEADER_LEN {
            return Ok(DecodePoll::NeedMoreData);
        }
        let kind = FrameKind::from_byte(avail[0]).ok_or(FrameError::BadKind(avail[0]))?;
        let len = u32::from_be_bytes(avail[1..HEADER_LEN].try_into().expect("4 bytes")) as usize;
        if len > self.max_payload {
            // Checked from the header alone: an oversized declaration is
            // refused before a single payload byte is buffered.
            return Err(FrameError::Oversized { len, max: self.max_payload });
        }
        if avail.len() < HEADER_LEN + len {
            return Ok(DecodePoll::NeedMoreData);
        }
        self.defer = HEADER_LEN + len;
        Ok(DecodePoll::Frame { kind, payload: &avail[HEADER_LEN..HEADER_LEN + len] })
    }

    /// Bytes fed but not yet consumed as complete frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos - self.defer
    }

    fn commit(&mut self) {
        self.pos += self.defer;
        self.defer = 0;
    }
}

/// Append one encoded frame to `out`.
pub fn encode_frame(out: &mut Vec<u8>, kind: FrameKind, payload: &[u8]) {
    let len = u32::try_from(payload.len()).expect("frame payloads fit in u32");
    out.push(kind.byte());
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(payload);
}

/// Append an `ERROR` frame.
pub fn encode_error(out: &mut Vec<u8>, code: ErrorCode, message: &str) {
    let mut payload = Vec::with_capacity(1 + message.len());
    payload.push(code.byte());
    payload.extend_from_slice(message.as_bytes());
    encode_frame(out, FrameKind::Error, &payload);
}

/// The payload of a finished-run `DONE` frame: status 0, two u64-BE run
/// counters, the scanner telemetry (backend code byte + two u64-BE
/// per-path byte counters), then the delivery-tape telemetry (three
/// u64-BE: batches, tape-delivered events, fast-forwarded events — all 0
/// under per-event delivery). Shared fan-out prefixes this with a
/// subscriber tag, so the body is built separately from the frame.
pub fn done_finished_payload(
    events: u64,
    output_bytes: u64,
    scan: ScanTelemetry,
    tape: TapeTelemetry,
) -> [u8; 58] {
    let mut payload = [0u8; 58];
    payload[1..9].copy_from_slice(&events.to_be_bytes());
    payload[9..17].copy_from_slice(&output_bytes.to_be_bytes());
    payload[17] = scan.backend.code();
    payload[18..26].copy_from_slice(&scan.fast_path_bytes.to_be_bytes());
    payload[26..34].copy_from_slice(&scan.general_path_bytes.to_be_bytes());
    payload[34..42].copy_from_slice(&tape.batches.to_be_bytes());
    payload[42..50].copy_from_slice(&tape.events.to_be_bytes());
    payload[50..58].copy_from_slice(&tape.fast_forwarded.to_be_bytes());
    payload
}

/// Append a `DONE` frame for a completed run.
pub fn encode_done_finished(
    out: &mut Vec<u8>,
    events: u64,
    output_bytes: u64,
    scan: ScanTelemetry,
    tape: TapeTelemetry,
) {
    encode_frame(out, FrameKind::Done, &done_finished_payload(events, output_bytes, scan, tape));
}

/// Append a `DONE` frame acknowledging an abort.
pub fn encode_done_aborted(out: &mut Vec<u8>) {
    encode_frame(out, FrameKind::Done, &[1]);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(dec: &mut FrameDecoder) -> Vec<(FrameKind, Vec<u8>)> {
        let mut out = Vec::new();
        while let DecodePoll::Frame { kind, payload } = dec.poll().unwrap() {
            out.push((kind, payload.to_vec()));
        }
        out
    }

    #[test]
    fn roundtrip_at_every_split_offset() {
        let mut wire = Vec::new();
        encode_frame(&mut wire, FrameKind::Open, b"q1");
        encode_frame(&mut wire, FrameKind::Chunk, b"<bib><book>");
        encode_frame(&mut wire, FrameKind::Chunk, b"");
        encode_frame(&mut wire, FrameKind::Finish, b"");
        let expect = vec![
            (FrameKind::Open, b"q1".to_vec()),
            (FrameKind::Chunk, b"<bib><book>".to_vec()),
            (FrameKind::Chunk, Vec::new()),
            (FrameKind::Finish, Vec::new()),
        ];
        for split in 0..=wire.len() {
            let mut dec = FrameDecoder::new(1 << 10);
            let mut got = Vec::new();
            dec.feed(&wire[..split]);
            got.extend(frames(&mut dec));
            dec.feed(&wire[split..]);
            got.extend(frames(&mut dec));
            assert_eq!(got, expect, "split at {split}");
        }
    }

    #[test]
    fn byte_at_a_time_retains_only_the_open_frame_tail() {
        let mut wire = Vec::new();
        encode_frame(&mut wire, FrameKind::Chunk, &[7u8; 100]);
        encode_frame(&mut wire, FrameKind::Chunk, &[9u8; 100]);
        let mut dec = FrameDecoder::new(1 << 10);
        let mut seen = 0;
        for &b in &wire {
            dec.feed(std::slice::from_ref(&b));
            while let DecodePoll::Frame { kind, payload } = dec.poll().unwrap() {
                assert_eq!(kind, FrameKind::Chunk);
                assert_eq!(payload.len(), 100);
                seen += 1;
            }
            assert!(dec.buffered() <= HEADER_LEN + 100);
        }
        assert_eq!(seen, 2);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn bad_kind_and_oversized_are_errors_from_the_header_alone() {
        let mut dec = FrameDecoder::new(1 << 10);
        dec.feed(&[0x7f, 0, 0, 0, 0]);
        assert_eq!(dec.poll(), Err(FrameError::BadKind(0x7f)));

        let mut dec = FrameDecoder::new(16);
        // Header declares 1 GiB; not a single payload byte follows.
        let mut hdr = vec![FrameKind::Chunk.byte()];
        hdr.extend_from_slice(&(1u32 << 30).to_be_bytes());
        dec.feed(&hdr);
        assert!(
            matches!(dec.poll(), Err(FrameError::Oversized { len, max: 16 }) if len == 1 << 30)
        );
    }

    #[test]
    fn done_frames_carry_status_and_stats() {
        let scan = ScanTelemetry {
            backend: flux_xml::Backend::Sse2,
            fast_path_bytes: 900,
            general_path_bytes: 100,
        };
        let tape = TapeTelemetry {
            batches: 3,
            events: 40,
            fast_forwarded: 11,
            ..TapeTelemetry::default()
        };
        let mut out = Vec::new();
        encode_done_finished(&mut out, 42, 7, scan, tape);
        let mut dec = FrameDecoder::new(64);
        dec.feed(&out);
        match dec.poll().unwrap() {
            DecodePoll::Frame { kind: FrameKind::Done, payload } => {
                assert_eq!(payload.len(), 58);
                assert_eq!(payload[0], 0);
                assert_eq!(u64::from_be_bytes(payload[1..9].try_into().unwrap()), 42);
                assert_eq!(u64::from_be_bytes(payload[9..17].try_into().unwrap()), 7);
                assert_eq!(payload[17], flux_xml::Backend::Sse2.code());
                assert_eq!(u64::from_be_bytes(payload[18..26].try_into().unwrap()), 900);
                assert_eq!(u64::from_be_bytes(payload[26..34].try_into().unwrap()), 100);
                assert_eq!(u64::from_be_bytes(payload[34..42].try_into().unwrap()), 3);
                assert_eq!(u64::from_be_bytes(payload[42..50].try_into().unwrap()), 40);
                assert_eq!(u64::from_be_bytes(payload[50..58].try_into().unwrap()), 11);
            }
            other => panic!("{other:?}"),
        }
        let mut out = Vec::new();
        encode_done_aborted(&mut out);
        let mut dec = FrameDecoder::new(64);
        dec.feed(&out);
        assert!(matches!(
            dec.poll().unwrap(),
            DecodePoll::Frame { kind: FrameKind::Done, payload: &[1] }
        ));
    }

    #[test]
    fn error_frames_are_structured() {
        let mut out = Vec::new();
        encode_error(&mut out, ErrorCode::UnknownQuery, "no such query: zz");
        let mut dec = FrameDecoder::new(1 << 10);
        dec.feed(&out);
        match dec.poll().unwrap() {
            DecodePoll::Frame { kind: FrameKind::Error, payload } => {
                assert_eq!(ErrorCode::from_byte(payload[0]), Some(ErrorCode::UnknownQuery));
                assert_eq!(&payload[1..], b"no such query: zz");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn every_kind_roundtrips_its_tag() {
        for kind in [
            FrameKind::Open,
            FrameKind::Chunk,
            FrameKind::Finish,
            FrameKind::Abort,
            FrameKind::Snapshot,
            FrameKind::Resume,
            FrameKind::Stats,
            FrameKind::Result,
            FrameKind::Done,
            FrameKind::Stalled,
            FrameKind::Resumed,
            FrameKind::Error,
            FrameKind::Snapshotted,
            FrameKind::StatsReply,
        ] {
            assert_eq!(FrameKind::from_byte(kind.byte()), Some(kind));
        }
        assert_eq!(FrameKind::from_byte(0x00), None);
    }

    #[test]
    fn stall_reasons_roundtrip_and_empty_payload_is_unknown() {
        for reason in [StallReason::Budget, StallReason::AdmissionReserve] {
            assert_eq!(StallReason::from_payload(&[reason.byte()]), reason);
        }
        // The legacy empty payload and unrecognized bytes both decode —
        // a reason-aware client never fails on an old server.
        assert_eq!(StallReason::from_payload(&[]), StallReason::Unknown);
        assert_eq!(StallReason::from_payload(&[0xEE]), StallReason::Unknown);
    }
}
