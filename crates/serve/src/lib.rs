//! # flux-serve — a std-only TCP front-end over the FluX runtime
//!
//! FluX evaluates XQuery over XML *streams* in provably minimal memory —
//! and the natural production source of such streams is the network. This
//! crate turns the facade's poll-shaped [`Runtime`](flux::Runtime) into a
//! socket server with nothing beyond the standard library: non-blocking
//! `std::net` sockets driven by a readiness loop, so the offline build
//! stays dependency-free and a tokio/io_uring backend can layer on later
//! without reshaping anything underneath.
//!
//! The pieces:
//!
//! * [`protocol`] — the length-prefixed wire protocol (`OPEN` / `CHUNK` /
//!   `FINISH` / `ABORT` in; `RESULT` / `DONE` / `STALLED` / `RESUMED` /
//!   `ERROR` out) with an incremental, resumable [`FrameDecoder`] in the
//!   style of the XML reader's `FeedSource`.
//! * [`poller`] — socket readiness behind the small [`Poller`] trait
//!   (registry + poll), with a `poll(2)`-backed unix backend and a portable
//!   fallback; the seam where epoll/io_uring slot in.
//! * [`server`] — the [`Server`]: a connection state machine per socket,
//!   sessions multiplexed onto a [`Runtime`](flux::Runtime), per-connection
//!   write-backpressure (an unwritable socket parks the session's reads
//!   instead of buffering without bound), and admission-control stalls
//!   surfaced as `STALLED`/`RESUMED` frames.
//! * [`client`] — a small blocking [`Client`] for tests, benches and
//!   examples.
//!
//! Observability rides the same loop: give [`ServerConfig::metrics`] a
//! [`MetricsRegistry`](flux::MetricsRegistry) and the server instruments
//! itself and its runtime; a `STATS` frame (any state, even mid-run) or a
//! GET against the optional [`ServerConfig::admin`] listener answers with
//! the registry's aggregated Prometheus text snapshot.
//!
//! ## Quickstart
//!
//! ```no_run
//! use flux::prelude::*;
//! use flux_serve::{Client, Server, ServerConfig};
//!
//! let engine = Engine::builder()
//!     .dtd_str("<!ELEMENT doc (#PCDATA)>")
//!     .build().unwrap();
//! let mut registry = QueryRegistry::new();
//! registry.register("all", engine.prepare("{ $ROOT/doc }").unwrap());
//!
//! let server = Server::spawn("127.0.0.1:0", registry, ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let outcome = client.run_document("all", b"<doc>hi</doc>", 4).unwrap();
//! assert_eq!(outcome.output, b"<doc>hi</doc>");
//! server.shutdown().unwrap();
//! ```

mod conn;
mod metrics;

pub mod client;
pub mod poller;
pub mod protocol;
pub mod server;

pub use client::{Client, Outcome, ServerMsg};
#[cfg(unix)]
pub use poller::SysPoller;
pub use poller::{default_poller, Interest, Poller, Readiness, ScanPoller, Token};
pub use protocol::{DecodePoll, ErrorCode, FrameDecoder, FrameError, FrameKind, StallReason};
pub use server::{Server, ServerConfig, ServerHandle};
