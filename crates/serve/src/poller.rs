//! Socket readiness, abstracted behind a small [`Poller`] registry trait.
//!
//! The server's event loop is written against `register` / `reregister` /
//! `deregister` / `poll` — the same shape as epoll or mio's `Poll` — so a
//! platform backend (epoll, kqueue, io_uring) can slot in without touching
//! the connection state machine. Two std-only backends ship here:
//!
//! * [`SysPoller`] (unix): real readiness via the `poll(2)` syscall,
//!   declared directly against the C library the Rust runtime already
//!   links — no crate dependency, no busy-waiting.
//! * [`ScanPoller`] (any platform): the degenerate fallback — sleeps the
//!   timeout, then reports every registered interest as ready, relying on
//!   the non-blocking sockets' `WouldBlock` to sort out reality. Correct,
//!   portable, and proportionally wasteful; only the seam's last resort.
//!
//! [`default_poller`] picks the best available backend.

use std::collections::HashMap;
use std::io;
use std::time::Duration;

/// Identifies one registered socket across the poller API.
pub type Token = u32;

/// Which readiness a registration cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    /// Wake when the socket is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the socket accepts writes.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest { readable: true, writable: false };
    /// Write-only interest.
    pub const WRITE: Interest = Interest { readable: false, writable: true };
    /// Read + write interest.
    pub const BOTH: Interest = Interest { readable: true, writable: true };
    /// No interest (parked registration; never reported ready).
    pub const NONE: Interest = Interest { readable: false, writable: false };

    /// Is any readiness requested?
    pub fn is_none(self) -> bool {
        !self.readable && !self.writable
    }
}

/// One readiness report from [`Poller::poll`].
#[derive(Debug, Clone, Copy)]
pub struct Readiness {
    /// The registration this readiness belongs to.
    pub token: Token,
    /// Reading will make progress (data, EOF, or an error to collect).
    pub readable: bool,
    /// Writing will make progress.
    pub writable: bool,
}

/// The raw handle a registration polls. On unix this is the socket's file
/// descriptor; backends that do not inspect handles (like [`ScanPoller`])
/// ignore it.
#[cfg(unix)]
pub type RawHandle = std::os::unix::io::RawFd;
/// Fallback handle type on platforms without unix fds.
#[cfg(not(unix))]
pub type RawHandle = i64;

/// A readiness registry — see the [module docs](self).
pub trait Poller: Send {
    /// Start watching `handle` under `token`.
    fn register(&mut self, token: Token, handle: RawHandle, interest: Interest);

    /// Change what an existing registration waits for.
    fn reregister(&mut self, token: Token, interest: Interest);

    /// Stop watching a registration.
    fn deregister(&mut self, token: Token);

    /// Wait up to `timeout` for readiness; push one [`Readiness`] per ready
    /// registration onto `out` (which the caller has cleared).
    fn poll(&mut self, out: &mut Vec<Readiness>, timeout: Duration) -> io::Result<()>;
}

/// The best backend for this platform: [`SysPoller`] on unix,
/// [`ScanPoller`] elsewhere.
pub fn default_poller() -> Box<dyn Poller> {
    #[cfg(unix)]
    {
        Box::new(SysPoller::new())
    }
    #[cfg(not(unix))]
    {
        Box::new(ScanPoller::new())
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    token: Token,
    handle: RawHandle,
    interest: Interest,
}

/// Registry bookkeeping shared by both backends.
#[derive(Debug, Default)]
struct Registry {
    entries: Vec<Entry>,
    index: HashMap<Token, usize>,
}

impl Registry {
    fn register(&mut self, token: Token, handle: RawHandle, interest: Interest) {
        assert!(
            !self.index.contains_key(&token),
            "token {token} is already registered; reregister to change interest"
        );
        self.index.insert(token, self.entries.len());
        self.entries.push(Entry { token, handle, interest });
    }

    fn reregister(&mut self, token: Token, interest: Interest) {
        let i = *self.index.get(&token).expect("reregister of an unregistered token");
        self.entries[i].interest = interest;
    }

    fn deregister(&mut self, token: Token) {
        let i = self.index.remove(&token).expect("deregister of an unregistered token");
        self.entries.swap_remove(i);
        if let Some(moved) = self.entries.get(i) {
            self.index.insert(moved.token, i);
        }
    }
}

/// `poll(2)`-backed readiness on unix — see the [module docs](self).
#[cfg(unix)]
pub struct SysPoller {
    registry: Registry,
    /// Scratch pollfd array, kept between calls to avoid re-allocation.
    fds: Vec<sys::PollFd>,
    /// Entry index behind each scratch pollfd.
    back: Vec<usize>,
}

#[cfg(unix)]
mod sys {
    //! The two symbols of `poll(2)`, declared against the libc the Rust
    //! std runtime already links (this crate stays dependency-free).
    use std::os::unix::io::RawFd;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        pub fd: RawFd,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        pub fn poll(
            fds: *mut PollFd,
            nfds: core::ffi::c_ulong,
            timeout: core::ffi::c_int,
        ) -> core::ffi::c_int;
    }
}

#[cfg(unix)]
impl SysPoller {
    /// An empty registry.
    pub fn new() -> SysPoller {
        SysPoller { registry: Registry::default(), fds: Vec::new(), back: Vec::new() }
    }
}

#[cfg(unix)]
impl Default for SysPoller {
    fn default() -> SysPoller {
        SysPoller::new()
    }
}

#[cfg(unix)]
impl Poller for SysPoller {
    fn register(&mut self, token: Token, handle: RawHandle, interest: Interest) {
        self.registry.register(token, handle, interest);
    }

    fn reregister(&mut self, token: Token, interest: Interest) {
        self.registry.reregister(token, interest);
    }

    fn deregister(&mut self, token: Token) {
        self.registry.deregister(token);
    }

    fn poll(&mut self, out: &mut Vec<Readiness>, timeout: Duration) -> io::Result<()> {
        self.fds.clear();
        self.back.clear();
        for (i, e) in self.registry.entries.iter().enumerate() {
            if e.interest.is_none() {
                continue; // parked: not polled at all
            }
            let mut events = 0i16;
            if e.interest.readable {
                events |= sys::POLLIN;
            }
            if e.interest.writable {
                events |= sys::POLLOUT;
            }
            self.fds.push(sys::PollFd { fd: e.handle, events, revents: 0 });
            self.back.push(i);
        }
        let timeout_ms = i32::try_from(timeout.as_millis()).unwrap_or(i32::MAX);
        if self.fds.is_empty() {
            // Nothing pollable: honour the timeout so the caller's loop
            // still ticks (runtime events are drained between polls).
            std::thread::sleep(timeout);
            return Ok(());
        }
        let n = unsafe {
            sys::poll(self.fds.as_mut_ptr(), self.fds.len() as core::ffi::c_ulong, timeout_ms)
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(()); // EINTR: just an early tick
            }
            return Err(err);
        }
        for (pfd, &i) in self.fds.iter().zip(&self.back) {
            if pfd.revents == 0 {
                continue;
            }
            let entry = self.registry.entries[i];
            // HUP/ERR surface as readability: the next read collects the
            // EOF or the error, which is how the connection learns.
            let fatal = pfd.revents & (sys::POLLERR | sys::POLLHUP) != 0;
            out.push(Readiness {
                token: entry.token,
                readable: pfd.revents & sys::POLLIN != 0 || fatal,
                writable: pfd.revents & sys::POLLOUT != 0 || fatal,
            });
        }
        Ok(())
    }
}

/// Portable fallback backend — see the [module docs](self).
pub struct ScanPoller {
    registry: Registry,
}

impl ScanPoller {
    /// An empty registry.
    pub fn new() -> ScanPoller {
        ScanPoller { registry: Registry::default() }
    }
}

impl Default for ScanPoller {
    fn default() -> ScanPoller {
        ScanPoller::new()
    }
}

impl Poller for ScanPoller {
    fn register(&mut self, token: Token, handle: RawHandle, interest: Interest) {
        self.registry.register(token, handle, interest);
    }

    fn reregister(&mut self, token: Token, interest: Interest) {
        self.registry.reregister(token, interest);
    }

    fn deregister(&mut self, token: Token) {
        self.registry.deregister(token);
    }

    fn poll(&mut self, out: &mut Vec<Readiness>, timeout: Duration) -> io::Result<()> {
        // No readiness source: pace the loop, then let WouldBlock decide.
        std::thread::sleep(timeout);
        for e in &self.registry.entries {
            if e.interest.is_none() {
                continue;
            }
            out.push(Readiness {
                token: e.token,
                readable: e.interest.readable,
                writable: e.interest.writable,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_tracks_register_reregister_deregister() {
        let mut r = Registry::default();
        r.register(1, 10, Interest::READ);
        r.register(2, 20, Interest::BOTH);
        r.register(3, 30, Interest::WRITE);
        r.reregister(2, Interest::NONE);
        r.deregister(1); // swap_remove moves token 3 into slot 0
        assert_eq!(r.entries.len(), 2);
        r.reregister(3, Interest::READ);
        let e3 = r.entries[*r.index.get(&3).unwrap()];
        assert_eq!(e3.interest, Interest::READ);
        r.deregister(3);
        r.deregister(2);
        assert!(r.entries.is_empty());
    }

    #[cfg(unix)]
    #[test]
    fn sys_poller_reports_loopback_readiness() {
        use std::io::Write as _;
        use std::net::{TcpListener, TcpStream};
        use std::os::unix::io::AsRawFd;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut p = SysPoller::new();
        p.register(7, server.as_raw_fd(), Interest::READ);

        // Nothing to read yet: the poll times out empty.
        let mut out = Vec::new();
        p.poll(&mut out, Duration::from_millis(1)).unwrap();
        assert!(out.is_empty(), "{out:?}");

        client.write_all(b"ping").unwrap();
        client.flush().unwrap();
        let mut out = Vec::new();
        // Generous bound; readiness normally arrives on the first tick.
        for _ in 0..1000 {
            p.poll(&mut out, Duration::from_millis(5)).unwrap();
            if !out.is_empty() {
                break;
            }
        }
        assert!(out.iter().any(|r| r.token == 7 && r.readable), "{out:?}");

        // Parked interest is silent even with data pending.
        p.reregister(7, Interest::NONE);
        let mut out = Vec::new();
        p.poll(&mut out, Duration::from_millis(1)).unwrap();
        assert!(out.is_empty(), "{out:?}");
        p.deregister(7);
    }
}
