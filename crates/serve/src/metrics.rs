//! Server-side metric instruments: one [`ServeMetrics`] bundle per
//! [`Server`](crate::Server), registered on its own shard of the
//! configured [`MetricsRegistry`] (index = the runtime's worker count, so
//! the server thread never contends with the workers' shards).
//!
//! Everything here is a held `Arc` to a lock-free instrument — recording
//! on the hot paths (read/flush passes, frame dispatch) is a relaxed
//! atomic op, never a registry lookup. The only lookup that happens after
//! startup is the per-query run-latency histogram, interned on first
//! completion of each query id (run completion is not a hot path).

use std::sync::Arc;

use flux_obs::{Counter, Gauge, Histogram, MetricsRegistry, MetricsShard};

use crate::protocol::FrameKind;

/// Wire direction of a counted frame.
#[derive(Clone, Copy)]
pub(crate) enum Dir {
    In,
    Out,
}

/// The server's instrument bundle — see the [module docs](self).
pub(crate) struct ServeMetrics {
    /// The registry shard owned by the server thread, kept for the
    /// dynamically-named per-query histograms.
    shard: Arc<MetricsShard>,
    /// `flux_serve_connections_total` — data-plane connections accepted.
    pub(crate) accepted: Arc<Counter>,
    /// `flux_serve_active_connections` — accepted minus reaped.
    pub(crate) active: Arc<Gauge>,
    /// `flux_serve_bytes_total{dir=..}` — payload + framing bytes moved.
    pub(crate) bytes_in: Arc<Counter>,
    pub(crate) bytes_out: Arc<Counter>,
    /// `flux_serve_decode_errors_total` — malformed inbound streams.
    pub(crate) decode_errors: Arc<Counter>,
    /// `flux_serve_write_parks_total` — read interest parked because the
    /// outbound buffer crossed the high-water mark.
    pub(crate) write_parks: Arc<Counter>,
    /// `flux_serve_scrapes_total{via=..}` — STATS frames and admin HTTP
    /// scrapes answered.
    pub(crate) scrapes_wire: Arc<Counter>,
    pub(crate) scrapes_http: Arc<Counter>,
    /// `flux_serve_frames_total{dir="in",kind=..}` in wire-tag order of
    /// the client→server kinds.
    frames_in: [Arc<Counter>; 7],
    /// `flux_serve_frames_total{dir="out",kind=..}` in wire-tag order of
    /// the server→client kinds.
    frames_out: [Arc<Counter>; 7],
}

/// Lowercase label value for a frame kind.
fn kind_label(kind: FrameKind) -> &'static str {
    match kind {
        FrameKind::Open => "open",
        FrameKind::Chunk => "chunk",
        FrameKind::Finish => "finish",
        FrameKind::Abort => "abort",
        FrameKind::Snapshot => "snapshot",
        FrameKind::Resume => "resume",
        FrameKind::Stats => "stats",
        FrameKind::Result => "result",
        FrameKind::Done => "done",
        FrameKind::Stalled => "stalled",
        FrameKind::Resumed => "resumed",
        FrameKind::Error => "error",
        FrameKind::Snapshotted => "snapshotted",
        FrameKind::StatsReply => "stats_reply",
    }
}

const IN_KINDS: [FrameKind; 7] = [
    FrameKind::Open,
    FrameKind::Chunk,
    FrameKind::Finish,
    FrameKind::Abort,
    FrameKind::Snapshot,
    FrameKind::Resume,
    FrameKind::Stats,
];

const OUT_KINDS: [FrameKind; 7] = [
    FrameKind::Result,
    FrameKind::Done,
    FrameKind::Stalled,
    FrameKind::Resumed,
    FrameKind::Error,
    FrameKind::Snapshotted,
    FrameKind::StatsReply,
];

impl ServeMetrics {
    /// Register every instrument on `registry` shard `shard_idx`.
    pub(crate) fn register(registry: &MetricsRegistry, shard_idx: usize) -> Arc<ServeMetrics> {
        let shard = registry.shard(shard_idx);
        let frame = |dir: &str, kind: FrameKind| {
            shard.counter(&format!(
                "flux_serve_frames_total{{dir=\"{dir}\",kind=\"{}\"}}",
                kind_label(kind)
            ))
        };
        Arc::new(ServeMetrics {
            accepted: shard.counter("flux_serve_connections_total"),
            active: shard.gauge("flux_serve_active_connections"),
            bytes_in: shard.counter("flux_serve_bytes_total{dir=\"in\"}"),
            bytes_out: shard.counter("flux_serve_bytes_total{dir=\"out\"}"),
            decode_errors: shard.counter("flux_serve_decode_errors_total"),
            write_parks: shard.counter("flux_serve_write_parks_total"),
            scrapes_wire: shard.counter("flux_serve_scrapes_total{via=\"wire\"}"),
            scrapes_http: shard.counter("flux_serve_scrapes_total{via=\"http\"}"),
            frames_in: IN_KINDS.map(|k| frame("in", k)),
            frames_out: OUT_KINDS.map(|k| frame("out", k)),
            shard,
        })
    }

    /// Count one frame moved across the wire.
    pub(crate) fn note_frame(&self, dir: Dir, kind: FrameKind) {
        let (kinds, counters): (&[FrameKind], &[Arc<Counter>]) = match dir {
            Dir::In => (&IN_KINDS, &self.frames_in),
            Dir::Out => (&OUT_KINDS, &self.frames_out),
        };
        if let Some(i) = kinds.iter().position(|&k| k == kind) {
            counters[i].inc();
        }
    }

    /// The end-to-end run-latency histogram for one query id (interned on
    /// first use): `flux_serve_run_duration_us{query=..}`. Shared fan-out
    /// runs record once per run under the joined id list.
    pub(crate) fn run_histogram(&self, query: &str) -> Arc<Histogram> {
        self.shard.histogram(&format!("flux_serve_run_duration_us{{query=\"{query}\"}}"))
    }
}
