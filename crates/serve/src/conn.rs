//! Per-connection state: the inbound frame decoder, the outbound write
//! buffer, the session lifecycle, and the engine→socket output seam.
//!
//! A connection is a small state machine ([`ConnState`]): `Idle` until an
//! `OPEN` frame binds it to a runtime session, `Running` while `CHUNK`s
//! flow, then `Finishing`/`Aborting` until the runtime confirms with its
//! terminal event. Engine output crosses threads through a [`SharedOut`]
//! buffer: the session's [`FrameSink`] (executing on a runtime worker)
//! appends raw result bytes, and the server thread drains them into
//! `RESULT` frames on the connection's write buffer.
//!
//! Backpressure is structural, not buffered: when the socket stops
//! accepting writes and the outbound buffer crosses the server's high-water
//! mark — or the session stalls on the shared admission budget — the
//! connection's *read* interest is parked ([`Conn::wants_read`] turns
//! false). No further frames are decoded, no further chunks reach the
//! engine, so no further output is produced; TCP pushes the wait back to
//! the client. Bytes already in flight are bounded by what was read before
//! the mark was crossed.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use flux::RuntimeId;
use flux_xml::{ScanTelemetry, Sink, TapeTelemetry};

use crate::metrics::{Dir, ServeMetrics};
use crate::poller::Interest;
use crate::protocol::{done_finished_payload, encode_frame, ErrorCode, FrameDecoder, FrameKind};

/// Where a connection is in the session lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConnState {
    /// No session: `OPEN` is the only acceptable next frame.
    Idle,
    /// One or more valid `OPEN`s received, no document bytes yet. Further
    /// `OPEN`s join the set ([`Conn::pending_opens`]); the first `CHUNK`
    /// or `FINISH` seals it into a session (single for one id, shared
    /// fan-out for several).
    Collecting,
    /// An `OPEN` was refused (unknown query id) but the connection lives
    /// on. A pipelining client may already have the doomed run's `CHUNK`s
    /// and `FINISH` in flight: they are absorbed silently (`FINISH` /
    /// `ABORT` return the state to `Idle`, and a fresh `OPEN` is accepted
    /// directly — the client moved on without ever chunking).
    Rejected,
    /// A session is live: `CHUNK` / `FINISH` / `ABORT` are acceptable.
    Running(RuntimeId),
    /// `FINISH` sent to the runtime; awaiting its `Finished` event.
    Finishing(RuntimeId),
    /// `ABORT` sent to the runtime; awaiting its `Aborted` event.
    Aborting(RuntimeId),
}

impl ConnState {
    /// The session to abort if this connection dies right now. Only
    /// `Running` qualifies: `Finishing`/`Aborting` ids are already dead to
    /// commands — their terminal event is in flight.
    pub(crate) fn abort_on_death(self) -> Option<RuntimeId> {
        match self {
            ConnState::Running(id) => Some(id),
            _ => None,
        }
    }
}

/// The engine→connection output buffer, shared between a session's
/// [`FrameSink`] (on a runtime worker thread) and the server thread.
#[derive(Debug, Default)]
pub(crate) struct SharedOut {
    buf: Mutex<Vec<u8>>,
    /// Mirror of `buf.len()`, so the server's per-tick scan costs one
    /// relaxed load per connection instead of a lock.
    len: AtomicUsize,
}

impl SharedOut {
    pub(crate) fn new() -> Arc<SharedOut> {
        Arc::new(SharedOut::default())
    }

    /// Bytes currently buffered (racy read; the drain locks).
    pub(crate) fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    fn append(&self, bytes: &[u8]) {
        let mut buf = self.buf.lock().expect("session output buffer");
        buf.extend_from_slice(bytes);
        self.len.store(buf.len(), Ordering::Relaxed);
    }

    /// Take everything buffered so far (output order is append order).
    pub(crate) fn take(&self) -> Vec<u8> {
        let mut buf = self.buf.lock().expect("session output buffer");
        self.len.store(0, Ordering::Relaxed);
        std::mem::take(&mut buf)
    }
}

/// The [`Sink`] handed to the runtime for each server session: appends the
/// engine's output bytes to the connection's [`SharedOut`]. Framing into
/// `RESULT` frames happens on the server thread at drain time, so the
/// engine's write granularity never dictates frame sizes.
pub(crate) struct FrameSink(pub(crate) Arc<SharedOut>);

impl Sink for FrameSink {
    fn write_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.0.append(bytes);
        Ok(())
    }

    fn flush_sink(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// What one non-blocking read pass produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReadPass {
    /// Bytes were fed to the decoder; there may be more to read.
    Progress,
    /// The socket has no more bytes right now.
    Drained,
    /// The peer closed (EOF or a hard error).
    PeerGone,
}

/// One client connection — see the [module docs](self).
pub(crate) struct Conn {
    pub(crate) stream: TcpStream,
    pub(crate) decoder: FrameDecoder,
    /// Encoded outbound frames waiting for the socket.
    out: Vec<u8>,
    /// Consumed prefix of `out` (partial writes).
    out_pos: usize,
    pub(crate) state: ConnState,
    /// Query ids collected from `OPEN` frames, awaiting the seal
    /// (`Collecting` only).
    pub(crate) pending_opens: Vec<String>,
    /// Query ids of the sealed run, in subscriber order — what a
    /// `SNAPSHOT` records in the snapshot envelope so `RESUME` can
    /// recompile the same plan.
    pub(crate) run_ids: Vec<String>,
    /// The live session's output seam (present from `OPEN` to the terminal
    /// runtime event).
    pub(crate) shared: Option<Arc<SharedOut>>,
    /// Shared fan-out mode: one output seam per subscriber, drained into
    /// subscriber-tagged `RESULT` frames. Empty in single mode.
    pub(crate) multi: Vec<Arc<SharedOut>>,
    /// The session is paused on the shared admission budget: reads are
    /// parked so the client's chunks queue in its own socket, not here.
    pub(crate) stalled: bool,
    /// A fatal frame was sent (`ERROR`): flush `out`, then close.
    pub(crate) close_after_flush: bool,
    /// The peer disconnected: reap this connection this tick.
    pub(crate) peer_gone: bool,
    /// Interest currently registered with the poller (to skip redundant
    /// reregistration).
    pub(crate) registered: Interest,
    /// When the current run's opens were sealed into a session — feeds the
    /// per-query `flux_serve_run_duration_us` histogram at `DONE` time.
    pub(crate) run_started: Option<std::time::Instant>,
    /// The server's instrument bundle, if metrics are configured; every
    /// frame and byte through this connection counts against it.
    pub(crate) metrics: Option<Arc<ServeMetrics>>,
}

impl Conn {
    pub(crate) fn new(
        stream: TcpStream,
        max_frame_payload: usize,
        metrics: Option<Arc<ServeMetrics>>,
    ) -> Conn {
        Conn {
            stream,
            decoder: FrameDecoder::new(max_frame_payload),
            out: Vec::new(),
            out_pos: 0,
            state: ConnState::Idle,
            pending_opens: Vec::new(),
            run_ids: Vec::new(),
            shared: None,
            multi: Vec::new(),
            stalled: false,
            close_after_flush: false,
            peer_gone: false,
            registered: Interest::READ,
            run_started: None,
            metrics,
        }
    }

    /// Bytes queued for the socket.
    pub(crate) fn out_len(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// Queue one frame for the client — the single outbound funnel, so
    /// every server→client frame counts once in the metrics.
    pub(crate) fn queue(&mut self, kind: FrameKind, payload: &[u8]) {
        if let Some(m) = &self.metrics {
            m.note_frame(Dir::Out, kind);
        }
        encode_frame(&mut self.out, kind, payload);
    }

    /// Queue a structured `ERROR` frame.
    pub(crate) fn queue_error(&mut self, code: ErrorCode, message: &str) {
        let mut payload = Vec::with_capacity(1 + message.len());
        payload.push(code.byte());
        payload.extend_from_slice(message.as_bytes());
        self.queue(FrameKind::Error, &payload);
    }

    /// Queue the `DONE` frame for a completed run.
    pub(crate) fn queue_done_finished(
        &mut self,
        events: u64,
        output_bytes: u64,
        scan: ScanTelemetry,
        tape: TapeTelemetry,
    ) {
        let payload = done_finished_payload(events, output_bytes, scan, tape);
        self.queue(FrameKind::Done, &payload);
    }

    /// Queue the `DONE` frame acknowledging an abort.
    pub(crate) fn queue_done_aborted(&mut self) {
        self.queue(FrameKind::Done, &[1]);
    }

    /// Queue a subscriber-tagged frame (shared fan-out mode): the payload
    /// is prefixed with the 4-byte big-endian subscriber index.
    pub(crate) fn queue_tagged(&mut self, sub: u32, kind: FrameKind, payload: &[u8]) {
        let mut tagged = Vec::with_capacity(4 + payload.len());
        tagged.extend_from_slice(&sub.to_be_bytes());
        tagged.extend_from_slice(payload);
        self.queue(kind, &tagged);
    }

    /// Queue a subscriber-tagged `ERROR` frame.
    pub(crate) fn queue_error_tagged(&mut self, sub: u32, code: ErrorCode, message: &str) {
        let mut payload = Vec::with_capacity(1 + message.len());
        payload.push(code.byte());
        payload.extend_from_slice(message.as_bytes());
        self.queue_tagged(sub, FrameKind::Error, &payload);
    }

    /// Queue a subscriber-tagged finished-`DONE` frame.
    pub(crate) fn queue_done_finished_tagged(
        &mut self,
        sub: u32,
        events: u64,
        output_bytes: u64,
        scan: ScanTelemetry,
        tape: TapeTelemetry,
    ) {
        self.queue_tagged(
            sub,
            FrameKind::Done,
            &done_finished_payload(events, output_bytes, scan, tape),
        );
    }

    /// Queue a subscriber-tagged aborted-`DONE` frame.
    pub(crate) fn queue_done_aborted_tagged(&mut self, sub: u32) {
        self.queue_tagged(sub, FrameKind::Done, &[1]);
    }

    /// Drain the session's output into `RESULT` frames of at most
    /// `frame_max` payload bytes each — untagged in single mode, tagged
    /// per subscriber in shared mode.
    pub(crate) fn drain_results(&mut self, frame_max: usize) {
        if !self.multi.is_empty() {
            for sub in 0..self.multi.len() {
                self.drain_sub(sub, frame_max);
            }
            return;
        }
        let Some(shared) = &self.shared else { return };
        if shared.len() == 0 {
            return;
        }
        let bytes = shared.take();
        for chunk in bytes.chunks(frame_max.max(1)) {
            self.queue(FrameKind::Result, chunk);
        }
    }

    /// Drain one shared-mode subscriber's output into tagged `RESULT`
    /// frames. The tag rides inside the payload, so the data slice shrinks
    /// by the tag's 4 bytes to respect the configured payload cap.
    pub(crate) fn drain_sub(&mut self, sub: usize, frame_max: usize) {
        if self.multi[sub].len() == 0 {
            return;
        }
        let bytes = self.multi[sub].take();
        for chunk in bytes.chunks(frame_max.saturating_sub(4).max(1)) {
            self.queue_tagged(sub as u32, FrameKind::Result, chunk);
        }
    }

    /// Should the poller watch this connection for readability?
    pub(crate) fn wants_read(&self, high_water: usize) -> bool {
        !self.peer_gone && !self.close_after_flush && !self.stalled && self.out_len() <= high_water
    }

    /// One non-blocking read pass: pull at most one buffer of bytes into
    /// the decoder. The caller decodes frames between passes so state
    /// changes (errors, backpressure) take effect mid-stream.
    pub(crate) fn read_pass(&mut self, scratch: &mut [u8]) -> ReadPass {
        loop {
            match self.stream.read(scratch) {
                Ok(0) => return ReadPass::PeerGone,
                Ok(n) => {
                    if let Some(m) = &self.metrics {
                        m.bytes_in.add(n as u64);
                    }
                    self.decoder.feed(&scratch[..n]);
                    return ReadPass::Progress;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return ReadPass::Drained,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return ReadPass::PeerGone,
            }
        }
    }

    /// Write as much of `out` as the socket accepts right now.
    pub(crate) fn flush_pass(&mut self) {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => {
                    self.peer_gone = true;
                    break;
                }
                Ok(n) => {
                    if let Some(m) = &self.metrics {
                        m.bytes_out.add(n as u64);
                    }
                    self.out_pos += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.peer_gone = true;
                    break;
                }
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        } else if self.out_pos > (64 << 10) {
            // Reclaim the written prefix so slow readers do not pin the
            // whole history of their stream.
            self.out.drain(..self.out_pos);
            self.out_pos = 0;
        }
    }
}
