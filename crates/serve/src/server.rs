//! The server: many TCP connections multiplexed onto one
//! [`flux::Runtime`].
//!
//! One thread owns all the sockets. Each tick ([`Server::step`]) it polls
//! the [`Poller`] for readiness, accepts new connections, decodes inbound
//! frames into runtime commands (`OPEN` → [`Runtime::open`], `CHUNK` →
//! [`Runtime::feed`], …), drains the runtime's completion/flow-control
//! events back into outbound frames, moves engine output from the
//! per-session [`SharedOut`] buffers into `RESULT` frames, and flushes
//! write buffers. The engine itself executes on the runtime's worker
//! threads; the server thread only shovels bytes — which is why a single
//! poll loop drives thousands of connections.
//!
//! Shared fan-out composes with all of it: a client sending several
//! `OPEN`s before its first `CHUNK` gets them compiled (through a
//! catalog-validated [`SubscriptionSet`] cache) into **one** shared
//! session — the document is parsed once for all of them and every
//! subscriber's `RESULT`/`DONE`/`ERROR` frames come back tagged with its
//! subscriber index.
//!
//! Admission control composes: configure a budget
//! ([`ServerConfig::budget`]) and sessions that would outgrow the shared
//! pool stall inside the runtime, surface here as `STALLED` frames, park
//! the connection's reads (TCP backpressure does the rest), and resume on
//! the budget-release wakeup with a `RESUMED` frame.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use flux::{
    MetricsRegistry, QueryRegistry, Runtime, RuntimeBuilder, RuntimeEvent, RuntimeId, StallCause,
    SubscriptionSet, TraceEvent, Tracer,
};
use flux_engine::BudgetHook;

use crate::conn::{Conn, ConnState, FrameSink, ReadPass, SharedOut};
use crate::metrics::{Dir, ServeMetrics};
use crate::poller::{default_poller, Interest, Poller, Readiness, Token};
use crate::protocol::{DecodePoll, ErrorCode, FrameKind, StallReason};

/// Tuning knobs for a [`Server`].
pub struct ServerConfig {
    /// Worker threads in the underlying [`Runtime`].
    pub shards: usize,
    /// Shared buffer budget all sessions charge (admission control); `None`
    /// = unbounded.
    pub budget: Option<Arc<dyn BudgetHook>>,
    /// Largest accepted inbound frame payload; a header declaring more is a
    /// protocol error. Also the cap for outbound `RESULT` payloads the
    /// server produces.
    pub max_frame_payload: usize,
    /// Outbound high-water mark: a connection whose write buffer exceeds
    /// this stops reading (and so stops feeding the engine) until the
    /// socket drains.
    pub outbuf_high_water: usize,
    /// Largest `RESULT` frame payload the server emits.
    pub result_frame_max: usize,
    /// Readiness poll granularity — also the latency floor for runtime
    /// events landing while every socket is quiet.
    pub poll_timeout: Duration,
    /// Where `SNAPSHOT` frames persist suspended runs (the envelope: query
    /// ids + the session's `flux-state` bytes). `None` disables the
    /// suspend/resume frames — a `SNAPSHOT` is answered with an `ERROR`.
    /// Point a restarted server at the same directory and outstanding
    /// tokens keep resuming.
    pub snapshot_dir: Option<PathBuf>,
    /// Metrics registry the server and its runtime record into. The
    /// runtime's workers own shards `0..shards`, the server thread owns
    /// shard `shards`. `STATS` frames (and the admin listener) answer
    /// with this registry's aggregated snapshot; without one they answer
    /// empty. The handle stays usable by the caller — scrape it whenever.
    pub metrics: Option<MetricsRegistry>,
    /// Tracer receiving lifecycle [`TraceEvent`]s from the runtime plus
    /// this server's connection open/close events. `None` = tracing off
    /// (one branch per would-be event), unless the `trace` feature routes
    /// the runtime's events to its global buffer.
    pub tracer: Option<Arc<dyn Tracer>>,
    /// Bind an admin listener on this address (e.g. `"127.0.0.1:0"`) that
    /// answers every HTTP request with the metrics registry's Prometheus
    /// text exposition. `None` = no admin endpoint. The data-plane wire
    /// protocol never travels this listener.
    pub admin: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            shards: 1,
            budget: None,
            max_frame_payload: 1 << 20,
            outbuf_high_water: 256 << 10,
            result_frame_max: 32 << 10,
            poll_timeout: Duration::from_millis(1),
            snapshot_dir: None,
            metrics: None,
            tracer: None,
            admin: None,
        }
    }
}

const LISTENER: Token = 0;
/// Poller token of the optional admin (metrics scrape) listener.
const ADMIN: Token = 1;

/// A TCP front-end over a [`Runtime`] — see the [module docs](self).
pub struct Server {
    listener: TcpListener,
    /// The optional metrics-scrape listener (HTTP, Prometheus text).
    admin: Option<TcpListener>,
    poller: Box<dyn Poller>,
    runtime: Runtime<FrameSink>,
    registry: QueryRegistry,
    /// The server thread's own instrument bundle (shard `cfg.shards` of
    /// `cfg.metrics`).
    metrics: Option<Arc<ServeMetrics>>,
    cfg: ServerConfig,
    conns: HashMap<Token, Conn>,
    by_session: HashMap<RuntimeId, Token>,
    /// Compiled shared plans keyed by their subscriber-ordered id list, so
    /// repeat fan-out opens (the dissemination hot path) skip compilation.
    /// Entries are revalidated against the registry catalog on every hit.
    set_cache: HashMap<Vec<String>, SubscriptionSet>,
    next_token: Token,
    /// Monotonic counter behind snapshot tokens (unique per process; the
    /// process id in the token keeps restarts from colliding).
    next_snap: u64,
    scratch: Vec<u8>,
    readiness: Vec<Readiness>,
}

impl Server {
    /// Bind on `addr` with the platform's default [`Poller`] backend.
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: QueryRegistry,
        cfg: ServerConfig,
    ) -> io::Result<Server> {
        Server::bind_with_poller(addr, registry, cfg, default_poller())
    }

    /// Bind with an explicit poller backend (the epoll/io_uring seam).
    pub fn bind_with_poller(
        addr: impl ToSocketAddrs,
        registry: QueryRegistry,
        cfg: ServerConfig,
        mut poller: Box<dyn Poller>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let mut builder = RuntimeBuilder::new(cfg.shards);
        if let Some(hook) = &cfg.budget {
            builder = builder.budget(Arc::clone(hook));
        }
        if let Some(registry) = &cfg.metrics {
            builder = builder.metrics(registry);
        }
        if let Some(tracer) = &cfg.tracer {
            builder = builder.tracer(Arc::clone(tracer));
        }
        let runtime = builder.build();
        let metrics = cfg.metrics.as_ref().map(|r| ServeMetrics::register(r, cfg.shards));
        poller.register(LISTENER, raw_handle_listener(&listener), Interest::READ);
        let admin = match &cfg.admin {
            Some(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                l.set_nonblocking(true)?;
                poller.register(ADMIN, raw_handle_listener(&l), Interest::READ);
                Some(l)
            }
            None => None,
        };
        Ok(Server {
            listener,
            admin,
            poller,
            runtime,
            registry,
            metrics,
            cfg,
            conns: HashMap::new(),
            by_session: HashMap::new(),
            set_cache: HashMap::new(),
            next_token: ADMIN + 1,
            next_snap: 0,
            scratch: vec![0; 16 << 10],
            readiness: Vec::new(),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The admin (metrics scrape) listener's bound address, if configured.
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.admin.as_ref().and_then(|l| l.local_addr().ok())
    }

    /// Connections currently accepted.
    pub fn connections(&self) -> usize {
        self.conns.len()
    }

    /// Sessions currently live in the runtime.
    pub fn live_sessions(&self) -> usize {
        self.runtime.live_sessions()
    }

    /// Serve forever.
    pub fn run(mut self) -> io::Result<()> {
        self.run_until(|| false)
    }

    /// Serve until `stop` returns true (checked once per tick, so shutdown
    /// latency is one poll timeout).
    pub fn run_until(&mut self, stop: impl Fn() -> bool) -> io::Result<()> {
        while !stop() {
            self.step()?;
        }
        Ok(())
    }

    /// Bind + serve on a background thread; the returned handle stops and
    /// joins it on [`ServerHandle::shutdown`] (or drop).
    pub fn spawn(
        addr: impl ToSocketAddrs,
        registry: QueryRegistry,
        cfg: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let mut server = Server::bind(addr, registry, cfg)?;
        let addr = server.local_addr()?;
        let admin_addr = server.admin_addr();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let join = std::thread::Builder::new()
            .name("flux-serve".into())
            .spawn(move || server.run_until(|| stop_flag.load(Ordering::Relaxed)))
            .expect("spawn server thread");
        Ok(ServerHandle { addr, admin_addr, stop, join: Some(join) })
    }

    /// One event-loop tick: poll readiness, do all I/O that is ready, pump
    /// runtime events and session output, flush writes.
    pub fn step(&mut self) -> io::Result<()> {
        let mut readiness = std::mem::take(&mut self.readiness);
        readiness.clear();
        self.poller.poll(&mut readiness, self.cfg.poll_timeout)?;
        for r in &readiness {
            if r.token == LISTENER {
                self.accept_ready();
            } else if r.token == ADMIN {
                self.admin_ready();
            } else if r.readable {
                self.read_ready(r.token);
            }
            // Writability is consumed by the flush pass below.
        }
        self.readiness = readiness;
        self.pump_runtime_events();
        self.pump_session_output();
        self.flush_and_sweep();
        Ok(())
    }

    /// Accept every pending connection.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue; // broken before it began
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.alloc_token();
                    self.poller.register(token, raw_handle(&stream), Interest::READ);
                    if let Some(m) = &self.metrics {
                        m.accepted.inc();
                        m.active.inc();
                    }
                    if let Some(t) = &self.cfg.tracer {
                        t.emit(TraceEvent::ConnOpen);
                    }
                    let conn = Conn::new(stream, self.cfg.max_frame_payload, self.metrics.clone());
                    self.conns.insert(token, conn);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept errors (ECONNABORTED etc): skip.
                Err(_) => break,
            }
        }
    }

    fn alloc_token(&mut self) -> Token {
        loop {
            let t = self.next_token;
            self.next_token = self.next_token.wrapping_add(1).max(ADMIN + 1);
            if !self.conns.contains_key(&t) {
                return t;
            }
        }
    }

    /// Answer every pending admin connection with one Prometheus text
    /// scrape. Admin exchanges are synchronous on the server thread — one
    /// short read (the request line is ignored), one buffered write, close
    /// — with a short timeout so a wedged scraper cannot hold the loop.
    fn admin_ready(&mut self) {
        let Some(listener) = &self.admin else { return };
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if let Some(m) = &self.metrics {
                        m.scrapes_http.inc();
                    }
                    let body =
                        self.cfg.metrics.as_ref().map(|r| r.render_text()).unwrap_or_default();
                    answer_scrape(stream, &body);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    /// Read and decode everything one connection has for us, translating
    /// frames into runtime commands as they complete.
    fn read_ready(&mut self, token: Token) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        loop {
            if !conn.wants_read(self.cfg.outbuf_high_water) {
                break; // backpressured, stalled, or closing: leave it in TCP
            }
            let pass = conn.read_pass(&mut self.scratch);
            // Decode whatever is buffered, even on EOF: the peer may have
            // written complete frames and closed.
            loop {
                match conn.decoder.poll() {
                    Ok(DecodePoll::Frame { kind, payload }) => {
                        if let Some(m) = &self.metrics {
                            m.note_frame(Dir::In, kind);
                        }
                        match kind {
                            FrameKind::Stats => {
                                // Control-plane: answered inline in any state,
                                // so a client can scrape mid-run. Counted before
                                // rendering, so a scrape sees itself.
                                if let Some(m) = &self.metrics {
                                    m.scrapes_wire.inc();
                                }
                                let text = self
                                    .cfg
                                    .metrics
                                    .as_ref()
                                    .map(|r| r.render_text())
                                    .unwrap_or_default();
                                conn.queue(FrameKind::StatsReply, text.as_bytes());
                            }
                            FrameKind::Open => {
                                let query_id = String::from_utf8_lossy(payload).into_owned();
                                match conn.state {
                                    // `Rejected` accepts a fresh OPEN directly:
                                    // the client abandoned the refused run
                                    // without ever chunking it. Further OPENs
                                    // while `Collecting` join the fan-out set;
                                    // the first document bytes seal it.
                                    ConnState::Idle
                                    | ConnState::Rejected
                                    | ConnState::Collecting => {
                                        if self.registry.get(&query_id).is_some() {
                                            conn.pending_opens.push(query_id);
                                            conn.state = ConnState::Collecting;
                                        } else {
                                            conn.queue_error(
                                                ErrorCode::UnknownQuery,
                                                &format!(
                                                    "no query registered under id {query_id:?}"
                                                ),
                                            );
                                            conn.pending_opens.clear();
                                            conn.state = ConnState::Rejected;
                                        }
                                    }
                                    _ => {
                                        fail_state(conn, &mut self.runtime, "OPEN during a run");
                                        break;
                                    }
                                }
                            }
                            FrameKind::Chunk => match conn.state {
                                ConnState::Running(id) => self.runtime.feed(id, payload),
                                ConnState::Collecting => {
                                    // Copy releases the decoder borrow before
                                    // the seal takes the connection mutably —
                                    // once per run, on its first chunk only.
                                    let first = payload.to_vec();
                                    if let Some(id) = seal(
                                        conn,
                                        token,
                                        &mut self.runtime,
                                        &self.registry,
                                        &mut self.set_cache,
                                        &mut self.by_session,
                                    ) {
                                        self.runtime.feed(id, &first);
                                    }
                                    // A failed seal left the connection
                                    // `Rejected`: absorb the doomed chunks.
                                }
                                // A pipelined chunk of a refused OPEN: absorb.
                                ConnState::Rejected => {}
                                _ => {
                                    fail_state(
                                        conn,
                                        &mut self.runtime,
                                        "CHUNK without an open run",
                                    );
                                    break;
                                }
                            },
                            FrameKind::Finish => match conn.state {
                                ConnState::Running(id) => {
                                    self.runtime.finish(id);
                                    conn.state = ConnState::Finishing(id);
                                }
                                // An empty document is a legal run: seal and
                                // finish in one step.
                                ConnState::Collecting => {
                                    match seal(
                                        conn,
                                        token,
                                        &mut self.runtime,
                                        &self.registry,
                                        &mut self.set_cache,
                                        &mut self.by_session,
                                    ) {
                                        Some(id) => {
                                            self.runtime.finish(id);
                                            conn.state = ConnState::Finishing(id);
                                        }
                                        // The seal's ERROR frame answered the
                                        // run; this FINISH closes it out.
                                        None => conn.state = ConnState::Idle,
                                    }
                                }
                                // End of the refused run's pipelined frames;
                                // the ERROR already answered it.
                                ConnState::Rejected => conn.state = ConnState::Idle,
                                _ => {
                                    fail_state(
                                        conn,
                                        &mut self.runtime,
                                        "FINISH without an open run",
                                    );
                                    break;
                                }
                            },
                            FrameKind::Abort => match conn.state {
                                ConnState::Running(id) => {
                                    self.runtime.abort(id);
                                    conn.state = ConnState::Aborting(id);
                                }
                                // Aborting before any document bytes: nothing
                                // ran, acknowledge each pending open directly.
                                ConnState::Collecting => {
                                    let opens = std::mem::take(&mut conn.pending_opens);
                                    if opens.len() == 1 {
                                        conn.queue_done_aborted();
                                    } else {
                                        for sub in 0..opens.len() {
                                            conn.queue_done_aborted_tagged(sub as u32);
                                        }
                                    }
                                    conn.state = ConnState::Idle;
                                }
                                ConnState::Rejected => conn.state = ConnState::Idle,
                                _ => {
                                    fail_state(
                                        conn,
                                        &mut self.runtime,
                                        "ABORT without an open run",
                                    );
                                    break;
                                }
                            },
                            FrameKind::Snapshot => match conn.state {
                                ConnState::Running(id) => {
                                    snapshot_run(
                                        conn,
                                        id,
                                        &mut self.runtime,
                                        self.cfg.snapshot_dir.as_deref(),
                                        self.cfg.result_frame_max,
                                        &mut self.by_session,
                                        &mut self.next_snap,
                                    );
                                }
                                _ => {
                                    fail_state(
                                        conn,
                                        &mut self.runtime,
                                        "SNAPSHOT without a running session",
                                    );
                                    break;
                                }
                            },
                            FrameKind::Resume => match conn.state {
                                ConnState::Idle | ConnState::Rejected => {
                                    let snap = String::from_utf8_lossy(payload).into_owned();
                                    resume_run(
                                        conn,
                                        token,
                                        &snap,
                                        &mut self.runtime,
                                        &self.registry,
                                        &mut self.set_cache,
                                        self.cfg.snapshot_dir.as_deref(),
                                        &mut self.by_session,
                                    );
                                }
                                _ => {
                                    fail_state(conn, &mut self.runtime, "RESUME during a run");
                                    break;
                                }
                            },
                            // Server→client tags coming *from* a client are a
                            // protocol violation.
                            FrameKind::Result
                            | FrameKind::Done
                            | FrameKind::Stalled
                            | FrameKind::Resumed
                            | FrameKind::Error
                            | FrameKind::Snapshotted
                            | FrameKind::StatsReply => {
                                fail_protocol(
                                    conn,
                                    &mut self.runtime,
                                    &format!(
                                        "server-to-client frame 0x{:02x} from client",
                                        kind.byte()
                                    ),
                                );
                                break;
                            }
                        }
                    }
                    Ok(DecodePoll::NeedMoreData) => break,
                    Err(e) => {
                        if let Some(m) = &self.metrics {
                            m.decode_errors.inc();
                        }
                        fail_protocol(conn, &mut self.runtime, &e.to_string());
                        break;
                    }
                }
            }
            match pass {
                ReadPass::Progress => continue,
                ReadPass::Drained => break,
                ReadPass::PeerGone => {
                    conn.peer_gone = true;
                    break;
                }
            }
        }
    }

    /// Translate runtime events into outbound frames.
    fn pump_runtime_events(&mut self) {
        for ev in self.runtime.poll_events() {
            match ev {
                RuntimeEvent::Stalled { id, cause } => {
                    if let Some(conn) = self.by_session.get(&id).and_then(|t| self.conns.get_mut(t))
                    {
                        let reason = match cause {
                            StallCause::Budget => StallReason::Budget,
                            StallCause::AdmissionReserve => StallReason::AdmissionReserve,
                        };
                        conn.stalled = true;
                        conn.queue(FrameKind::Stalled, &[reason.byte()]);
                    }
                }
                RuntimeEvent::Resumed { id } => {
                    if let Some(conn) = self.by_session.get(&id).and_then(|t| self.conns.get_mut(t))
                    {
                        conn.stalled = false;
                        conn.queue(FrameKind::Resumed, &[]);
                    }
                }
                RuntimeEvent::Finished { id, result, sink } => {
                    let token = self.by_session.remove(&id);
                    drop(sink); // same SharedOut the connection holds
                    if let Some(conn) = token.and_then(|t| self.conns.get_mut(&t)) {
                        note_run_latency(&self.metrics, conn);
                        conn.stalled = false;
                        conn.state = ConnState::Idle;
                        if conn.close_after_flush {
                            // A fatal error already ended this stream on
                            // the wire: the `ERROR` frame is the last word.
                            conn.shared = None;
                            continue;
                        }
                        conn.drain_results(self.cfg.result_frame_max);
                        conn.shared = None;
                        match result {
                            Ok(stats) => {
                                conn.queue_done_finished(
                                    stats.events,
                                    stats.output_bytes,
                                    stats.scan,
                                    stats.tape,
                                );
                            }
                            Err(e) => {
                                conn.queue_error(ErrorCode::Engine, &e.to_string());
                            }
                        }
                    }
                }
                RuntimeEvent::FinishedShared { id, results } => {
                    let token = self.by_session.remove(&id);
                    if let Some(conn) = token.and_then(|t| self.conns.get_mut(&t)) {
                        note_run_latency(&self.metrics, conn);
                        conn.stalled = false;
                        conn.state = ConnState::Idle;
                        if conn.close_after_flush {
                            conn.multi.clear();
                            continue;
                        }
                        // Flush each subscriber's remaining output before
                        // its terminal frame, so tagged RESULTs never trail
                        // the tagged DONE.
                        for sub in 0..conn.multi.len() {
                            conn.drain_sub(sub, self.cfg.result_frame_max);
                        }
                        conn.multi.clear();
                        for (sub, (result, sink)) in results.into_iter().enumerate() {
                            drop(sink); // same SharedOut the connection held
                            match result {
                                Ok(stats) => conn.queue_done_finished_tagged(
                                    sub as u32,
                                    stats.events,
                                    stats.output_bytes,
                                    stats.scan,
                                    stats.tape,
                                ),
                                Err(e) => conn.queue_error_tagged(
                                    sub as u32,
                                    ErrorCode::Engine,
                                    &e.to_string(),
                                ),
                            }
                        }
                    }
                }
                // The server never detaches individual subscribers (the
                // wire protocol aborts whole runs), but the runtime API
                // allows embedders to: tolerate the event.
                RuntimeEvent::SubAborted { .. } => {}
                // Shard rebalancing and idle spills keep the session id
                // valid and its output seam in place — nothing for the
                // wire. (A refused `Runtime::detach` also re-adopts the
                // session onto its own shard, confirmed this way.)
                RuntimeEvent::Migrated { .. } | RuntimeEvent::Suspended { .. } => {}
                RuntimeEvent::Aborted { id } => {
                    let token = self.by_session.remove(&id);
                    if let Some(conn) = token.and_then(|t| self.conns.get_mut(&t)) {
                        conn.run_started = None; // aborted runs don't record latency
                        conn.shared = None;
                        let subs = conn.multi.len();
                        conn.multi.clear();
                        conn.stalled = false;
                        let acked = matches!(conn.state, ConnState::Aborting(_));
                        conn.state = ConnState::Idle;
                        if acked && !conn.close_after_flush {
                            if subs > 0 {
                                for sub in 0..subs {
                                    conn.queue_done_aborted_tagged(sub as u32);
                                }
                            } else {
                                conn.queue_done_aborted();
                            }
                        }
                    }
                }
            }
        }
    }

    /// Move engine output from the shared buffers into `RESULT` frames.
    fn pump_session_output(&mut self) {
        for conn in self.conns.values_mut() {
            conn.drain_results(self.cfg.result_frame_max);
        }
    }

    /// Flush write buffers, update poll interests, reap dead connections.
    fn flush_and_sweep(&mut self) {
        let mut dead = Vec::new();
        for (&token, conn) in &mut self.conns {
            if conn.out_len() > 0 && !conn.peer_gone {
                conn.flush_pass();
            }
            if conn.peer_gone || (conn.close_after_flush && conn.out_len() == 0) {
                dead.push(token);
                continue;
            }
            let interest = Interest {
                readable: conn.wants_read(self.cfg.outbuf_high_water),
                writable: conn.out_len() > 0,
            };
            if interest != conn.registered {
                // Count the park only when it is the outbound buffer (not a
                // stall or teardown) that took the read interest away.
                if conn.registered.readable
                    && !interest.readable
                    && conn.out_len() > self.cfg.outbuf_high_water
                {
                    if let Some(m) = &self.metrics {
                        m.write_parks.inc();
                    }
                }
                self.poller.reregister(token, interest);
                conn.registered = interest;
            }
        }
        for token in dead {
            let conn = self.conns.remove(&token).expect("dead list tracks live conns");
            self.poller.deregister(token);
            if let Some(m) = &self.metrics {
                m.active.dec();
            }
            if let Some(t) = &self.cfg.tracer {
                t.emit(TraceEvent::ConnClose);
            }
            if let Some(id) = conn.state.abort_on_death() {
                // Mid-stream disconnect: abort the session. Its buffers and
                // budget charges release inside the runtime; the Aborted
                // event finds the connection gone and is dropped.
                self.runtime.abort(id);
            }
            // Finishing/Aborting sessions complete on their own; their
            // terminal event cleans up `by_session` above.
        }
    }
}

/// Seal a `Collecting` connection's pending opens into a session: a plain
/// runtime session for one id, a shared fan-out session for several.
/// Returns the session id, or `None` if compilation refused the set (the
/// connection is left `Rejected` with the `ERROR` frame queued, exactly
/// like an unknown-query refusal — the client's pipelined document frames
/// are absorbed).
fn seal(
    conn: &mut Conn,
    token: Token,
    runtime: &mut Runtime<FrameSink>,
    registry: &QueryRegistry,
    set_cache: &mut HashMap<Vec<String>, SubscriptionSet>,
    by_session: &mut HashMap<RuntimeId, Token>,
) -> Option<RuntimeId> {
    let ids = std::mem::take(&mut conn.pending_opens);
    if ids.len() == 1 {
        // Single-query run: the classic untagged path, byte-identical on
        // the wire to the pre-fan-out protocol.
        let Some(q) = registry.get(&ids[0]).cloned() else {
            conn.queue_error(
                ErrorCode::UnknownQuery,
                &format!("no query registered under id {:?}", ids[0]),
            );
            conn.state = ConnState::Rejected;
            return None;
        };
        let shared = SharedOut::new();
        let id = runtime.open(&q, FrameSink(Arc::clone(&shared)));
        conn.shared = Some(shared);
        conn.run_ids = ids;
        conn.run_started = Some(Instant::now());
        conn.state = ConnState::Running(id);
        by_session.insert(id, token);
        return Some(id);
    }
    let set = match cached_set(registry, set_cache, &ids) {
        Ok(set) => set,
        Err(e) => {
            conn.queue_error(ErrorCode::Engine, &e.to_string());
            conn.state = ConnState::Rejected;
            return None;
        }
    };
    let outs: Vec<Arc<SharedOut>> = (0..ids.len()).map(|_| SharedOut::new()).collect();
    let sinks = outs.iter().map(|o| FrameSink(Arc::clone(o))).collect();
    let id = runtime.open_shared(&set, sinks);
    conn.multi = outs;
    conn.run_ids = ids;
    conn.run_started = Some(Instant::now());
    conn.state = ConnState::Running(id);
    by_session.insert(id, token);
    Some(id)
}

/// Record one completed run's wall-clock latency under its query-id label
/// (shared fan-out runs record once, under the joined id list).
fn note_run_latency(metrics: &Option<Arc<ServeMetrics>>, conn: &mut Conn) {
    if let (Some(m), Some(t0)) = (metrics, conn.run_started.take()) {
        let us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
        m.run_histogram(&conn.run_ids.join("+")).record(us);
    }
}

/// Suspend a running session to a snapshot file and detach it: the
/// envelope (the run's query ids + the session's `flux-state` bytes)
/// lands under the server's snapshot directory, the output produced so
/// far flushes to the client, and the resume token comes back in a
/// `SNAPSHOTTED` frame. Refusals are `ERROR Engine` frames: with no
/// snapshot directory, or a session that cannot serialize right now
/// (failed, or stalled with queued chunks), the run continues in place.
fn snapshot_run(
    conn: &mut Conn,
    id: RuntimeId,
    runtime: &mut Runtime<FrameSink>,
    snapshot_dir: Option<&Path>,
    result_frame_max: usize,
    by_session: &mut HashMap<RuntimeId, Token>,
    next_snap: &mut u64,
) {
    let Some(dir) = snapshot_dir else {
        conn.queue_error(ErrorCode::Engine, "snapshots are not enabled on this server");
        return;
    };
    let state = match runtime.detach(id) {
        Ok(bytes) => bytes,
        Err(e) => {
            // Refused: the session is still running in place with its id
            // valid — the client may keep chunking or retry later.
            conn.queue_error(ErrorCode::Engine, &e.to_string());
            return;
        }
    };
    // The id is dead from here on: the run exists only as bytes.
    by_session.remove(&id);
    let snap = format!("s{}-{}", std::process::id(), *next_snap);
    *next_snap += 1;
    let envelope = encode_envelope(&conn.run_ids, &state);
    let path = dir.join(format!("{snap}.fsnap"));
    let written = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, &envelope));
    // Flush the output streamed so far ahead of the marker frame, then
    // return the connection to idle — detached, it has no run.
    conn.drain_results(result_frame_max);
    conn.shared = None;
    conn.multi.clear();
    conn.stalled = false;
    conn.run_started = None; // the suspended run records at its resumed finish
    conn.state = ConnState::Idle;
    match written {
        Ok(()) => conn.queue(FrameKind::Snapshotted, snap.as_bytes()),
        Err(e) => {
            // The state was already detached and could not be saved: the
            // run is gone. Say so rather than pretend it is resumable.
            conn.queue_error(ErrorCode::Engine, &format!("snapshot write failed, run lost: {e}"));
        }
    }
}

/// Re-attach a suspended run by its snapshot token: read the envelope,
/// recompile the plan from the registry (single query or shared set),
/// restore the session onto the runtime with fresh output seams, and put
/// the connection back into `Running`. Tokens are single-use — the file
/// is consumed on success. All refusals are `ERROR Engine` frames and
/// leave the connection idle and usable.
#[allow(clippy::too_many_arguments)]
fn resume_run(
    conn: &mut Conn,
    token: Token,
    snap: &str,
    runtime: &mut Runtime<FrameSink>,
    registry: &QueryRegistry,
    set_cache: &mut HashMap<Vec<String>, SubscriptionSet>,
    snapshot_dir: Option<&Path>,
    by_session: &mut HashMap<RuntimeId, Token>,
) {
    let Some(dir) = snapshot_dir else {
        conn.queue_error(ErrorCode::Engine, "snapshots are not enabled on this server");
        return;
    };
    let well_formed = !snap.is_empty()
        && snap.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_');
    if !well_formed {
        // Tokens never need escaping, so anything else (path separators,
        // `..`) is refused before it touches the filesystem.
        conn.queue_error(ErrorCode::Engine, "malformed snapshot token");
        return;
    }
    let path = dir.join(format!("{snap}.fsnap"));
    let Ok(envelope) = std::fs::read(&path) else {
        conn.queue_error(ErrorCode::Engine, &format!("unknown snapshot token {snap:?}"));
        return;
    };
    let Some((ids, state)) = decode_envelope(&envelope) else {
        conn.queue_error(ErrorCode::Engine, "corrupt snapshot envelope");
        return;
    };
    let attached = if ids.len() == 1 {
        let Some(q) = registry.get(&ids[0]).cloned() else {
            conn.queue_error(
                ErrorCode::Engine,
                &format!("no query registered under id {:?}", ids[0]),
            );
            return;
        };
        let shared = SharedOut::new();
        runtime.attach(&q, FrameSink(Arc::clone(&shared)), state).inspect(|_| {
            conn.shared = Some(shared);
        })
    } else {
        let set = match cached_set(registry, set_cache, &ids) {
            Ok(set) => set,
            Err(e) => {
                conn.queue_error(ErrorCode::Engine, &e.to_string());
                return;
            }
        };
        let outs: Vec<Arc<SharedOut>> = (0..ids.len()).map(|_| SharedOut::new()).collect();
        let sinks = outs.iter().map(|o| Some(FrameSink(Arc::clone(o)))).collect();
        runtime.attach_shared(&set, sinks, state).inspect(|_| {
            conn.multi = outs;
        })
    };
    match attached {
        Ok(id) => {
            let _ = std::fs::remove_file(&path); // tokens are single-use
            conn.run_ids = ids;
            conn.run_started = Some(Instant::now());
            conn.state = ConnState::Running(id);
            by_session.insert(id, token);
        }
        // Plan mismatch (the registry changed under the token), budget
        // refusal, corrupt state bytes: the file stays for a later retry.
        Err(e) => {
            conn.shared = None;
            conn.multi.clear();
            conn.queue_error(ErrorCode::Engine, &e.to_string());
        }
    }
}

/// Snapshot-envelope layout: `[u32-BE id count]` then per id
/// `[u32-BE length][UTF-8 bytes]`, then the session's `flux-state` bytes
/// to the end of the file.
fn encode_envelope(ids: &[String], state: &[u8]) -> Vec<u8> {
    let mut out =
        Vec::with_capacity(4 + ids.iter().map(|i| 4 + i.len()).sum::<usize>() + state.len());
    out.extend_from_slice(&u32::try_from(ids.len()).expect("id count fits u32").to_be_bytes());
    for id in ids {
        out.extend_from_slice(&u32::try_from(id.len()).expect("id fits u32").to_be_bytes());
        out.extend_from_slice(id.as_bytes());
    }
    out.extend_from_slice(state);
    out
}

/// Decode [`encode_envelope`]'s layout; `None` on any truncation.
fn decode_envelope(bytes: &[u8]) -> Option<(Vec<String>, &[u8])> {
    fn take<'a>(rest: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
        if rest.len() < n {
            return None;
        }
        let (head, tail) = rest.split_at(n);
        *rest = tail;
        Some(head)
    }
    let mut rest = bytes;
    let count = u32::from_be_bytes(take(&mut rest, 4)?.try_into().expect("4 bytes")) as usize;
    if count == 0 || count > 1 << 16 {
        return None;
    }
    let mut ids = Vec::with_capacity(count);
    for _ in 0..count {
        let len = u32::from_be_bytes(take(&mut rest, 4)?.try_into().expect("4 bytes")) as usize;
        ids.push(String::from_utf8(take(&mut rest, len)?.to_vec()).ok()?);
    }
    Some((ids, rest))
}

/// The compiled shared plan for `ids`, from the cache when its snapshot
/// still matches the registry's catalog, recompiled (and re-cached)
/// otherwise.
fn cached_set(
    registry: &QueryRegistry,
    set_cache: &mut HashMap<Vec<String>, SubscriptionSet>,
    ids: &[String],
) -> Result<SubscriptionSet, flux::FluxError> {
    if let Some(set) = set_cache.get(ids) {
        if set.is_current(registry) {
            return Ok(set.clone());
        }
    }
    let set = SubscriptionSet::compile_subset(registry, ids)?;
    set_cache.insert(ids.to_vec(), set.clone());
    Ok(set)
}

/// Put a connection into fatal-protocol-error teardown.
fn fail_protocol(conn: &mut Conn, runtime: &mut Runtime<FrameSink>, message: &str) {
    conn.queue_error(ErrorCode::Protocol, message);
    teardown(conn, runtime);
}

/// Put a connection into fatal-state-error teardown.
fn fail_state(conn: &mut Conn, runtime: &mut Runtime<FrameSink>, message: &str) {
    conn.queue_error(ErrorCode::State, message);
    teardown(conn, runtime);
}

fn teardown(conn: &mut Conn, runtime: &mut Runtime<FrameSink>) {
    if let Some(id) = conn.state.abort_on_death() {
        runtime.abort(id);
        conn.state = ConnState::Aborting(id);
    }
    // The `ERROR` frame is the stream's last word: drop the output seams so
    // result bytes the aborted run already produced cannot trail it.
    conn.shared = None;
    conn.multi.clear();
    conn.pending_opens.clear();
    conn.close_after_flush = true;
}

/// Answer one admin connection: swallow the request head, write the whole
/// Prometheus text page, close. Blocking with short timeouts — a wedged
/// scraper costs the loop at most ~half a second, and admin listeners are
/// expected to be loopback-only.
fn answer_scrape(mut stream: TcpStream, body: &str) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let mut req = [0u8; 1024];
    let _ = stream.read(&mut req); // request line + headers, ignored
    let head = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// A running server on a background thread (see [`Server::spawn`]).
pub struct ServerHandle {
    addr: SocketAddr,
    admin_addr: Option<SocketAddr>,
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<io::Result<()>>>,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The admin (metrics scrape) listener's address, if one is configured.
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.admin_addr
    }

    /// Stop the loop and join the thread, surfacing any I/O error the loop
    /// died with.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.stop.store(true, Ordering::Relaxed);
        match self.join.take() {
            Some(join) => join.join().expect("server thread panicked"),
            None => Ok(()),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

#[cfg(unix)]
fn raw_handle(stream: &TcpStream) -> crate::poller::RawHandle {
    use std::os::unix::io::AsRawFd;
    stream.as_raw_fd()
}

#[cfg(not(unix))]
fn raw_handle(_stream: &TcpStream) -> crate::poller::RawHandle {
    -1
}

#[cfg(unix)]
fn raw_handle_listener(listener: &TcpListener) -> crate::poller::RawHandle {
    use std::os::unix::io::AsRawFd;
    listener.as_raw_fd()
}

#[cfg(not(unix))]
fn raw_handle_listener(_listener: &TcpListener) -> crate::poller::RawHandle {
    -1
}
