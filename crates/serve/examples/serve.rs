//! Spawn a flux-serve server, drive two concurrent clients over loopback,
//! and print their results.
//!
//! ```text
//! cargo run -p flux-serve --example serve
//! ```

use flux::prelude::*;
use flux_serve::{Client, Server, ServerConfig};

const DTD: &str = "<!ELEMENT bib (book)*>\
    <!ELEMENT book (title,(author+|editor+),publisher,price)>\
    <!ELEMENT title (#PCDATA)><!ELEMENT author (#PCDATA)><!ELEMENT editor (#PCDATA)>\
    <!ELEMENT publisher (#PCDATA)><!ELEMENT price (#PCDATA)>";
const QUERY: &str = "<results>{ for $b in $ROOT/bib/book return \
    <result> {$b/title} {$b/author} </result> }</results>";

fn doc(tag: &str) -> String {
    format!(
        "<bib><book><title>{tag}-title</title><author>{tag}-author</author>\
         <publisher>pub</publisher><price>7</price></book></bib>"
    )
}

fn main() {
    // Compile once, serve many: the registry maps wire ids to prepared
    // queries.
    let engine = Engine::builder().dtd_str(DTD).build().expect("DTD parses");
    let mut registry = QueryRegistry::new();
    registry.register("titles", engine.prepare(QUERY).expect("query schedules"));
    let reference = registry.get("titles").unwrap().clone();

    let server =
        Server::spawn("127.0.0.1:0", registry, ServerConfig::default()).expect("server binds");
    println!("serving on {}", server.addr());

    // Two clients stream documents concurrently, in deliberately tiny
    // chunks — boundaries are invisible end to end.
    let addr = server.addr();
    let handles: Vec<_> = ["alpha", "beta"]
        .into_iter()
        .map(|tag| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let outcome = client.run_document("titles", doc(tag).as_bytes(), 5).expect("run");
                (tag, outcome)
            })
        })
        .collect();

    for h in handles {
        let (tag, outcome) = h.join().expect("client thread");
        let output = String::from_utf8(outcome.output).expect("UTF-8 result");
        let expected = reference.run_str(&doc(tag)).expect("reference run").output;
        assert_eq!(output, expected, "{tag}: server result matches the in-process run");
        let (events, output_bytes) = outcome.done.expect("run finished");
        println!("{tag}: {output}");
        println!("{tag}: {events} events, {output_bytes} output bytes");
    }

    server.shutdown().expect("clean shutdown");
    println!("ok");
}
