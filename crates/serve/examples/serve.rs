//! Spawn a flux-serve server with the observability layer on, drive two
//! concurrent clients over loopback, scrape the metrics (both over the
//! wire and from the admin HTTP endpoint), and print the results.
//!
//! ```text
//! cargo run -p flux-serve --example serve
//! ```

use std::io::{Read, Write};
use std::net::TcpStream;

use flux::prelude::*;
use flux_serve::{Client, Server, ServerConfig};

const DTD: &str = "<!ELEMENT bib (book)*>\
    <!ELEMENT book (title,(author+|editor+),publisher,price)>\
    <!ELEMENT title (#PCDATA)><!ELEMENT author (#PCDATA)><!ELEMENT editor (#PCDATA)>\
    <!ELEMENT publisher (#PCDATA)><!ELEMENT price (#PCDATA)>";
const QUERY: &str = "<results>{ for $b in $ROOT/bib/book return \
    <result> {$b/title} {$b/author} </result> }</results>";

fn doc(tag: &str) -> String {
    format!(
        "<bib><book><title>{tag}-title</title><author>{tag}-author</author>\
         <publisher>pub</publisher><price>7</price></book></bib>"
    )
}

fn main() {
    // Compile once, serve many: the registry maps wire ids to prepared
    // queries.
    let engine = Engine::builder().dtd_str(DTD).build().expect("DTD parses");
    let mut registry = QueryRegistry::new();
    registry.register("titles", engine.prepare(QUERY).expect("query schedules"));
    let reference = registry.get("titles").unwrap().clone();

    // One registry observes every layer: the runtime's workers, the engine
    // runs, and the server's wire traffic all record into it.
    let metrics = MetricsRegistry::new();
    let cfg = ServerConfig {
        metrics: Some(metrics.clone()),
        admin: Some("127.0.0.1:0".into()),
        ..ServerConfig::default()
    };
    let server = Server::spawn("127.0.0.1:0", registry, cfg).expect("server binds");
    println!("serving on {}", server.addr());
    let admin = server.admin_addr().expect("admin listener bound");
    println!("metrics on http://{admin}/metrics");

    // Two clients stream documents concurrently, in deliberately tiny
    // chunks — boundaries are invisible end to end.
    let addr = server.addr();
    let handles: Vec<_> = ["alpha", "beta"]
        .into_iter()
        .map(|tag| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let outcome = client.run_document("titles", doc(tag).as_bytes(), 5).expect("run");
                (tag, outcome)
            })
        })
        .collect();

    for h in handles {
        let (tag, outcome) = h.join().expect("client thread");
        let output = String::from_utf8(outcome.output).expect("UTF-8 result");
        let expected = reference.run_str(&doc(tag)).expect("reference run").output;
        assert_eq!(output, expected, "{tag}: server result matches the in-process run");
        let (events, output_bytes) = outcome.done.expect("run finished");
        println!("{tag}: {output}");
        println!("{tag}: {events} events, {output_bytes} output bytes");
    }

    // Scrape over the wire protocol (a STATS frame on a data connection)…
    let mut client = Client::connect(addr).expect("connect");
    let wire_text = client.scrape().expect("STATS scrape");
    let runs = flux::obs::series_value(&wire_text, "flux_engine_runs_total");
    println!("wire scrape: flux_engine_runs_total = {}", runs.unwrap_or(0.0));
    assert_eq!(runs, Some(2.0), "both runs are in the registry");

    // …and over the admin HTTP endpoint: same registry, same text.
    let mut stream = TcpStream::connect(admin).expect("admin connect");
    stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").expect("request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response");
    assert!(response.starts_with("HTTP/1.0 200 OK"), "admin scrape succeeds");
    let body = response.split("\r\n\r\n").nth(1).expect("body");
    assert_eq!(flux::obs::series_value(body, "flux_engine_runs_total"), Some(2.0));
    println!("admin scrape: {} bytes of Prometheus text", body.len());

    server.shutdown().expect("clean shutdown");
    println!("ok");
}
