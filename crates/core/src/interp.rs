//! Reference interpreter for FluX over materialized trees (paper,
//! Section 3.2 semantics).
//!
//! This interpreter executes the *definition* of FluX: for a node with
//! children t₁…tₙ it performs the n+2 scans over the handler list,
//! firing `on` handlers on matching labels and `on-first past(S)` handlers
//! at the first position where `first-past` holds (with the i = n+1
//! fallback). It exists to validate both the rewrite algorithm
//! (FluX result ≡ XQuery− result, Theorem 4.3) and the streaming engine
//! (streamed result ≡ tree-semantics result) — three implementations of the
//! same semantics keeping each other honest.

use std::fmt;

use flux_dtd::past::{Matcher, PastTable};
use flux_dtd::Dtd;
use flux_query::eval::{eval_expr, Env, EvalError};
use flux_query::ROOT_VAR;
use flux_xml::{Node, Sink, Writer};

use crate::flux::{production_of, FluxExpr, Handler};

/// Interpretation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum InterpError {
    /// Document does not conform to the DTD.
    Validation(String),
    /// The element bound by a handler has no production.
    Undeclared(String),
    /// XQuery− evaluation failed (e.g. unbound variable = unsafe query).
    Eval(EvalError),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::Validation(m) => write!(f, "document/DTD mismatch: {m}"),
            InterpError::Undeclared(e) => write!(f, "element `{e}` has no DTD production"),
            InterpError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for InterpError {}

impl From<EvalError> for InterpError {
    fn from(e: EvalError) -> Self {
        InterpError::Eval(e)
    }
}

/// Interpret a FluX query over a document node (as from
/// [`flux_query::eval::wrap_document`]); returns the serialized output.
pub fn interp_flux(q: &FluxExpr, dtd: &Dtd, doc: &Node) -> Result<String, InterpError> {
    let mut w = Writer::new(Vec::new());
    let mut env = Env::with(ROOT_VAR, doc);
    eval_flux(q, dtd, &mut env, &mut w)?;
    let bytes = w.into_inner().map_err(|e| InterpError::Eval(EvalError::Io(e.to_string())))?;
    Ok(String::from_utf8(bytes).expect("writer emits UTF-8"))
}

fn eval_flux<'t, S: Sink>(
    q: &FluxExpr,
    dtd: &Dtd,
    env: &mut Env<'t>,
    w: &mut Writer<S>,
) -> Result<(), InterpError> {
    match q {
        FluxExpr::Simple(e) => Ok(eval_expr(e, env, w)?),
        FluxExpr::PS { pre, var, handlers, post } => {
            if let Some(s) = pre {
                w.write_raw(s).map_err(|e| InterpError::Eval(EvalError::Io(e.to_string())))?;
            }
            run_ps(var, handlers, dtd, env, w)?;
            if let Some(s) = post {
                w.write_raw(s).map_err(|e| InterpError::Eval(EvalError::Io(e.to_string())))?;
            }
            Ok(())
        }
    }
}

fn run_ps<'t, S: Sink>(
    var: &str,
    handlers: &[Handler],
    dtd: &Dtd,
    env: &mut Env<'t>,
    w: &mut Writer<S>,
) -> Result<(), InterpError> {
    let node: &'t Node = env.get(var)?;
    let prod = production_of(dtd, &node.name)
        .ok_or_else(|| InterpError::Undeclared(node.name.to_string()))?;
    let g = prod.automaton();
    let c = prod.constraints();

    // Precompute each on-first handler's PastTable.
    let tables: Vec<Option<PastTable>> = handlers
        .iter()
        .map(|h| match h {
            Handler::OnFirst { past, .. } => {
                let set: Vec<String> = past.resolve(prod).into_iter().collect();
                Some(PastTable::build(g, c, &set))
            }
            Handler::On { .. } => None,
        })
        .collect();
    let mut fired = vec![false; handlers.len()];
    let mut matcher = Matcher::new(g);

    // i = 0: only on-first handlers can fire.
    for (idx, h) in handlers.iter().enumerate() {
        if let Handler::OnFirst { expr, .. } = h {
            if tables[idx].as_ref().unwrap().fires_initially() {
                fired[idx] = true;
                eval_expr(expr, env, w)?;
            }
        }
    }

    // i = 1..n: each element child in order.
    for child in node.elems() {
        let (old, new) = matcher
            .step(&child.name)
            .map_err(|m| InterpError::Validation(format!("under <{}>: {m}", node.name)))?;
        for (idx, h) in handlers.iter().enumerate() {
            match h {
                Handler::On { label, var: x, body } => {
                    if **label == *child.name {
                        env.push(x.clone(), child);
                        let res = eval_flux(body, dtd, env, w);
                        env.pop();
                        res?;
                    }
                }
                Handler::OnFirst { expr, .. } => {
                    if !fired[idx] && tables[idx].as_ref().unwrap().fires_on(old, new) {
                        fired[idx] = true;
                        eval_expr(expr, env, w)?;
                    }
                }
            }
        }
    }
    matcher.finish().map_err(|m| InterpError::Validation(format!("under <{}>: {m}", node.name)))?;

    // i = n+1: unfired on-first handlers fire now.
    for (idx, h) in handlers.iter().enumerate() {
        if let Handler::OnFirst { expr, .. } = h {
            if !fired[idx] {
                eval_expr(expr, env, w)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_flux;
    use crate::rewrite::rewrite_query;
    use flux_query::eval::{eval_query, wrap_document};
    use flux_query::parse_xquery;

    const BIB_WEAK: &str = "<!ELEMENT bib (book)*><!ELEMENT book (title|author)*>\
        <!ELEMENT title (#PCDATA)><!ELEMENT author (#PCDATA)>";
    const BIB_STRONG: &str = "<!ELEMENT bib (book)*>\
        <!ELEMENT book (title,(author+|editor+),publisher,price)>\
        <!ELEMENT title (#PCDATA)><!ELEMENT author (#PCDATA)><!ELEMENT editor (#PCDATA)>\
        <!ELEMENT publisher (#PCDATA)><!ELEMENT price (#PCDATA)>";

    fn weak_doc() -> Node {
        Node::parse_str(
            "<bib><book><title>T1</title><author>A1</author><title>T1b</title><author>A2</author></book>\
             <book><author>B1</author></book></bib>",
        )
        .unwrap()
    }

    #[test]
    fn intro_flux_query_on_weak_dtd() {
        // Section 1's first FluX query: titles stream, authors are deferred
        // to the end of each book.
        let q = parse_flux(
            "<results>{ ps $ROOT: on bib as $bib return \
               { ps $bib: on book as $book return \
                 <result>{ ps $book: on title as $t return {$t}; \
                   on-first past(title,author) return \
                     { for $a in $book/author return {$a} } }</result> } }</results>",
        )
        .unwrap();
        let dtd = Dtd::parse(BIB_WEAK).unwrap();
        let doc = wrap_document(weak_doc());
        let out = interp_flux(&q, &dtd, &doc).unwrap();
        assert_eq!(
            out,
            "<results><result><title>T1</title><title>T1b</title>\
             <author>A1</author><author>A2</author></result>\
             <result><author>B1</author></result></results>"
        );
    }

    #[test]
    fn on_first_fires_at_earliest_dtd_position() {
        // With (title,(author+|editor+),publisher,price), past(title,author)
        // becomes true on the first publisher/editor boundary — authors are
        // flushed before the price arrives, not at book end.
        let q = parse_flux(
            "{ ps $ROOT: on bib as $bib return { ps $bib: on book as $book return \
               { ps $book: on-first past(title,author) return <flush/>; \
                 on price as $p return {$p} } } }",
        )
        .unwrap();
        let dtd = Dtd::parse(BIB_STRONG).unwrap();
        let doc = wrap_document(
            Node::parse_str(
                "<bib><book><title>T</title><author>A</author><publisher>P</publisher>\
                 <price>9</price></book></bib>",
            )
            .unwrap(),
        );
        let out = interp_flux(&q, &dtd, &doc).unwrap();
        assert_eq!(out, "<flush/><price>9</price>");
    }

    #[test]
    fn empty_past_fires_before_children() {
        let q = parse_flux(
            "{ ps $ROOT: on-first past() return <start/>; on bib as $b return {$b}; \
              on-first past(bib) return <end/> }",
        )
        .unwrap();
        let dtd = Dtd::parse(BIB_WEAK).unwrap();
        let doc = wrap_document(Node::parse_str("<bib></bib>").unwrap());
        assert_eq!(interp_flux(&q, &dtd, &doc).unwrap(), "<start/><bib></bib><end/>");
    }

    #[test]
    fn invalid_document_reported() {
        // The interpreter validates every scope it opens: <bib> requires
        // exactly one <book>, so an empty bib fails at scope end.
        let q =
            parse_flux("{ ps $ROOT: on bib as $b return { ps $b: on book as $k return {$k} } }")
                .unwrap();
        let dtd = Dtd::parse("<!ELEMENT bib (book)><!ELEMENT book (#PCDATA)>").unwrap();
        let doc = wrap_document(Node::parse_str("<bib></bib>").unwrap());
        let err = interp_flux(&q, &dtd, &doc).unwrap_err();
        assert!(matches!(err, InterpError::Validation(_)), "{err:?}");
    }

    #[test]
    fn rewrite_then_interp_equals_direct_eval() {
        // Theorem 4.3 on concrete inputs: [[rewrite(Q)]]FluX = [[Q]]XQuery−.
        let queries = [
            "<results>{ for $b in $ROOT/bib/book return <result> {$b/title} {$b/author} </result> }</results>",
            "{ for $b in $ROOT/bib/book return { for $t in $b/title return { for $a in $b/author return <r>{$t}{$a}</r> } } }",
            "<x>{ $ROOT/bib/book/author }</x>",
        ];
        let dtd = Dtd::parse(BIB_WEAK).unwrap();
        let doc = wrap_document(weak_doc());
        for q in queries {
            let e = parse_xquery(q).unwrap();
            let flux = rewrite_query(&e, &dtd).unwrap();
            assert_eq!(
                interp_flux(&flux, &dtd, &doc).unwrap(),
                eval_query(&e, &doc).unwrap(),
                "query: {q}\nplan: {flux}"
            );
        }
    }

    #[test]
    fn handler_order_determines_same_step_firing_order() {
        // Both the on-first past(book) and the on handler fire at the same
        // child; ζ order decides the output order.
        let dtd = Dtd::parse("<!ELEMENT bib (book)><!ELEMENT book (#PCDATA)>").unwrap();
        let doc = wrap_document(Node::parse_str("<bib><book>x</book></bib>").unwrap());
        let q1 = parse_flux(
            "{ ps $ROOT: on bib as $b return \
            { ps $b: on-first past(book) return <after/>; on book as $k return {$k} } }",
        )
        .unwrap();
        assert_eq!(interp_flux(&q1, &dtd, &doc).unwrap(), "<after/><book>x</book>");
        let q2 = parse_flux(
            "{ ps $ROOT: on bib as $b return \
            { ps $b: on book as $k return {$k}; on-first past(book) return <after/> } }",
        )
        .unwrap();
        assert_eq!(interp_flux(&q2, &dtd, &doc).unwrap(), "<book>x</book><after/>");
    }
}
