//! Parser for FluX concrete syntax (Definition 3.3).
//!
//! Builds on `flux-query`'s [`Cursor`] and XQuery− sub-parsers, adding the
//! `process-stream`/`ps` construct with its handler list. FluX expressions
//! have the shape `s { ps $y: ζ } s'` or are simple XQuery− expressions;
//! handler bodies end at `;` or at the enclosing `}`.

use flux_query::parser::{parse_brace_expr, parse_mixed, ParseError};
use flux_query::{Cursor, Expr};

use crate::flux::{FluxExpr, Handler, PastSpec};

/// Parse a FluX expression (the paper's syntax; `ps` and `process-stream`
/// are interchangeable).
pub fn parse_flux(src: &str) -> Result<FluxExpr, ParseError> {
    let mut cur = Cursor::new(src);
    let e = parse_flux_expr(&mut cur, &[])?;
    cur.skip_ws();
    if !cur.at_end() {
        return Err(cur.error("trailing input after FluX expression"));
    }
    Ok(e)
}

/// Parse a FluX expression up to (not consuming) any of `stops` at this
/// nesting level.
fn parse_flux_expr(cur: &mut Cursor<'_>, stops: &[char]) -> Result<FluxExpr, ParseError> {
    // A FluX expression is a mixed sequence where at most one brace block is
    // a `process-stream`; everything around it must be strings (Def. 3.3) or
    // a simple XQuery− expression when no `ps` occurs.
    let mut pre: Vec<Expr> = Vec::new();
    let mut ps: Option<FluxExpr> = None;
    let mut post: Vec<Expr> = Vec::new();

    loop {
        cur.skip_ws();
        match cur.peek() {
            None => break,
            Some(c) if stops.contains(&c) => break,
            Some('}') => break,
            Some('{') if at_ps(cur) => {
                if ps.is_some() {
                    return Err(cur.error("at most one process-stream per FluX expression"));
                }
                ps = Some(parse_ps(cur)?);
            }
            Some(_) => {
                // Literal text or an XQuery− brace expression; collect via
                // the XQuery− mixed parser, stopping at `{` of a ps, `;`, or
                // `}`. parse_mixed cannot stop *inside* braces, so scan
                // piecewise.
                let piece = parse_piece(cur, stops)?;
                match piece {
                    Some(e) => {
                        if ps.is_none() {
                            pre.push(e);
                        } else {
                            post.push(e);
                        }
                    }
                    None => break,
                }
            }
        }
    }

    match ps {
        None => Ok(FluxExpr::Simple(Expr::seq(pre))),
        Some(FluxExpr::PS { var, handlers, .. }) => {
            let pre_s = exprs_to_string(pre, cur)?;
            let post_s = exprs_to_string(post, cur)?;
            Ok(FluxExpr::PS { pre: pre_s, var, handlers, post: post_s })
        }
        Some(other) => Ok(other),
    }
}

/// One literal chunk or one non-ps brace expression; `None` when positioned
/// at a stop.
fn parse_piece(cur: &mut Cursor<'_>, stops: &[char]) -> Result<Option<Expr>, ParseError> {
    cur.skip_ws();
    match cur.peek() {
        None => Ok(None),
        Some(c) if stops.contains(&c) || c == '}' => Ok(None),
        Some('{') => Ok(Some(parse_brace_expr(cur)?)),
        Some(_) => {
            let mut lit = String::new();
            while let Some(c) = cur.peek() {
                if c == '{' || c == '}' || stops.contains(&c) {
                    break;
                }
                lit.push(c);
                cur.bump();
            }
            let trimmed = lit.trim();
            if trimmed.is_empty() {
                Ok(None)
            } else {
                Ok(Some(Expr::Str(trimmed.to_string())))
            }
        }
    }
}

/// Do the next tokens start a `{ ps …` / `{ process-stream …` block?
fn at_ps(cur: &Cursor<'_>) -> bool {
    let mut probe = cur.clone();
    probe.expect_char('{').is_ok()
        && (probe.eat_keyword("process-stream") || probe.eat_keyword("ps"))
}

/// Definition 3.3 requires the text around a `process-stream` to be plain
/// strings.
fn exprs_to_string(items: Vec<Expr>, cur: &Cursor<'_>) -> Result<Option<String>, ParseError> {
    if items.is_empty() {
        return Ok(None);
    }
    let mut out = String::new();
    for (i, e) in items.iter().enumerate() {
        match e {
            Expr::Str(s) => {
                if i > 0 {
                    out.push(' ');
                }
                out.push_str(s);
            }
            other => {
                return Err(cur.error(format!(
                    "only strings may surround a process-stream (found `{other}`)"
                )))
            }
        }
    }
    Ok(Some(out))
}

fn parse_ps(cur: &mut Cursor<'_>) -> Result<FluxExpr, ParseError> {
    cur.expect_char('{')?;
    if !(cur.eat_keyword("process-stream") || cur.eat_keyword("ps")) {
        return Err(cur.error("expected `process-stream`"));
    }
    let var = cur.parse_var()?;
    cur.expect_char(':')?;
    let mut handlers = Vec::new();
    loop {
        handlers.push(parse_handler(cur)?);
        if cur.eat_char(';') {
            continue;
        }
        break;
    }
    cur.expect_char('}')?;
    Ok(FluxExpr::ps(var, handlers))
}

fn parse_handler(cur: &mut Cursor<'_>) -> Result<Handler, ParseError> {
    if cur.eat_keyword("on-first") {
        if !cur.eat_keyword("past") {
            return Err(cur.error("expected `past(…)` after `on-first`"));
        }
        cur.expect_char('(')?;
        let past = if cur.eat_char('*') {
            PastSpec::All
        } else {
            let mut names = std::collections::BTreeSet::new();
            cur.skip_ws();
            if cur.peek() != Some(')') {
                loop {
                    names.insert(cur.parse_name()?);
                    if cur.eat_char(',') {
                        continue;
                    }
                    break;
                }
            }
            PastSpec::Set(names)
        };
        cur.expect_char(')')?;
        if !cur.eat_keyword("return") {
            return Err(cur.error("expected `return` in on-first handler"));
        }
        let expr = parse_mixed(cur, &[';'])?;
        Ok(Handler::OnFirst { past, expr })
    } else if cur.eat_keyword("on") {
        let label = cur.parse_name()?;
        if !cur.eat_keyword("as") {
            return Err(cur.error("expected `as` in on handler"));
        }
        let var = cur.parse_var()?;
        if !cur.eat_keyword("return") {
            return Err(cur.error("expected `return` in on handler"));
        }
        let body = parse_flux_expr(cur, &[';'])?;
        Ok(Handler::On { label, var, body: Box::new(body) })
    } else {
        Err(cur.error("expected `on` or `on-first` handler"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_expression() {
        let e = parse_flux("<a>{$x}</a>").unwrap();
        assert!(matches!(e, FluxExpr::Simple(_)));
    }

    #[test]
    fn intro_first_flux_query() {
        // The event-based formulation of XMP Q3 from Section 1.
        let q = parse_flux(
            "<results>\
             { process-stream $ROOT: on bib as $bib return\
               { process-stream $bib: on book as $book return\
                 <result>\
                 { process-stream $book:\
                    on title as $t return {$t};\
                    on-first past(title,author) return\
                      { for $a in $book/author return {$a} } }\
                 </result> } }\
             </results>",
        )
        .unwrap();
        let FluxExpr::PS { pre, var, handlers, .. } = &q else { panic!() };
        assert_eq!(pre.as_deref(), Some("<results>"));
        assert_eq!(var, "ROOT");
        assert_eq!(handlers.len(), 1);
        let Handler::On { label, body, .. } = &handlers[0] else { panic!() };
        assert_eq!(label, "bib");
        let FluxExpr::PS { handlers: h2, .. } = &**body else { panic!() };
        let Handler::On { body: book_body, .. } = &h2[0] else { panic!() };
        let FluxExpr::PS { pre, handlers: h3, post, .. } = &**book_body else { panic!() };
        assert_eq!(pre.as_deref(), Some("<result>"));
        assert_eq!(post.as_deref(), Some("</result>"));
        assert_eq!(h3.len(), 2);
        assert!(matches!(&h3[0], Handler::On { label, .. } if label == "title"));
        let Handler::OnFirst { past, .. } = &h3[1] else { panic!() };
        assert_eq!(past, &PastSpec::set(["title", "author"]));
    }

    #[test]
    fn past_variants() {
        let q = parse_flux("{ ps $x: on-first past(*) return <a>; on-first past() return <b> }")
            .unwrap();
        let FluxExpr::PS { handlers, .. } = &q else { panic!() };
        assert!(matches!(&handlers[0], Handler::OnFirst { past: PastSpec::All, .. }));
        assert!(
            matches!(&handlers[1], Handler::OnFirst { past: PastSpec::Set(s), .. } if s.is_empty())
        );
    }

    #[test]
    fn handler_list_order_preserved() {
        let q = parse_flux(
            "{ps $ROOT: on-first past() return <results>; on bib as $bib return {$bib}; \
             on-first past(bib) return </results> }",
        )
        .unwrap();
        let FluxExpr::PS { handlers, .. } = &q else { panic!() };
        assert_eq!(handlers.len(), 3);
        assert!(matches!(&handlers[0], Handler::OnFirst { .. }));
        assert!(matches!(&handlers[1], Handler::On { .. }));
        assert!(matches!(&handlers[2], Handler::OnFirst { .. }));
    }

    #[test]
    fn errors() {
        assert!(parse_flux("{ ps $x on a as $y return {$y} }").is_err()); // missing ':'
        assert!(parse_flux("{ ps $x: on a return {$y} }").is_err()); // missing as
        assert!(parse_flux("{ ps $x: on-first return <a> }").is_err()); // missing past
        assert!(parse_flux("{ ps $x: }").is_err()); // no handlers
        assert!(parse_flux("{$a} { ps $x: on-first past() return <a> }").is_err()); // non-string around ps
        assert!(parse_flux(
            "{ps $x: on-first past() return <a>} {ps $y: on-first past() return <b>}"
        )
        .is_err());
    }

    #[test]
    fn nested_ps_in_on_handler_body() {
        let q = parse_flux(
            "{ ps $bib: on article as $article return \
               { ps $article: on-first past(author) return { for $b in $bib/book return {$b} } } }",
        )
        .unwrap();
        let FluxExpr::PS { handlers, .. } = &q else { panic!() };
        let Handler::On { body, .. } = &handlers[0] else { panic!() };
        assert!(matches!(&**body, FluxExpr::PS { .. }));
    }
}
