//! The scheduling algorithm: rewriting normalized XQuery− into safe FluX
//! (paper, Figure 2 and Theorem 4.3).
//!
//! Given the DTD, a for-loop over `$x/a` becomes a streaming `on a` handler
//! exactly when every dependency of its body is guaranteed (by order
//! constraints) to be past once `a` children arrive; otherwise an
//! `on-first past(X)` handler defers it until the buffered data is complete.
//!
//! One membership detail (motivating Example 4.6 / F′3): line 30's test
//! `¬Ord_$x(b,a)` is evaluated as *"b may still be pending"*:
//! `b ∈ symb($x) ∧ (a ∉ symb($x) ∨ ¬Ord_$x(b,a))`. Symbols that can never
//! occur among `$x`'s children are never waited for, and a loop step that is
//! not a child of `$x` (because the loop ranges over another variable's
//! path) yields no ordering information, so every dependency must be waited
//! for. This reproduces all the paper's example rewrites, including
//! `past(author)` in F′3.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use flux_dtd::{Dtd, Production};
use flux_query::{normalize, Expr, ROOT_VAR};

use crate::deps::{dependencies, hsymb};
use crate::flux::{production_of, FluxExpr, Handler, PastSpec, DOC_ELEM};
use crate::opt;
use crate::safety::check_safety;

/// Options controlling the rewrite pipeline.
#[derive(Debug, Clone, Copy)]
pub struct RewriteOptions {
    /// Apply singleton descent sharing before scheduling (Section 7
    /// cardinality constraints; required for the XMark join queries to be
    /// scheduled under their common `site` scope — see DESIGN.md §5.3).
    pub share_singletons: bool,
    /// Merge consecutive for-loops over the same singleton path
    /// (the Section 7 rewrite rule).
    pub merge_singleton_loops: bool,
}

impl Default for RewriteOptions {
    fn default() -> Self {
        RewriteOptions { share_singletons: true, merge_singleton_loops: false }
    }
}

/// Rewrite failures.
#[derive(Debug, Clone, PartialEq)]
pub enum RewriteError {
    /// Input query was not (or could not be) normalized.
    NotNormalized(String),
    /// Internal invariant broken: Theorem 4.3 guarantees this cannot happen
    /// for normalized XQuery− queries; reported rather than panicking so
    /// fuzzing can exercise the checker.
    Unsafe(String),
    /// A sequence member did not rewrite to a `process-stream` expression.
    Internal(String),
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::NotNormalized(m) => write!(f, "query not in normal form: {m}"),
            RewriteError::Unsafe(m) => write!(f, "rewrite produced an unsafe query (bug): {m}"),
            RewriteError::Internal(m) => write!(f, "internal rewrite error: {m}"),
        }
    }
}

impl std::error::Error for RewriteError {}

/// Normalize `q`, apply the configured algebraic pre-passes, run the
/// Figure 2 algorithm, and verify safety of the result (Definition 3.6).
pub fn rewrite_query_with(
    q: &Expr,
    dtd: &Dtd,
    opts: RewriteOptions,
) -> Result<FluxExpr, RewriteError> {
    let mut n = normalize(q);
    if opts.share_singletons {
        n = opt::share::share_singletons(&n, dtd);
    }
    if opts.merge_singleton_loops {
        n = opt::merge::merge_singleton_loops(&n, dtd);
    }
    let flux = rewrite_normalized(&n, dtd)?;
    check_safety(&flux, dtd).map_err(|v| RewriteError::Unsafe(v.to_string()))?;
    Ok(flux)
}

/// [`rewrite_query_with`] with default options.
pub fn rewrite_query(q: &Expr, dtd: &Dtd) -> Result<FluxExpr, RewriteError> {
    rewrite_query_with(q, dtd, RewriteOptions::default())
}

/// The raw Figure 2 algorithm on an already-normalized query (no pre-passes,
/// no post-hoc safety check). `rewrite($ROOT, ∅, Q)` in the paper's
/// notation.
pub fn rewrite_normalized(q: &Expr, dtd: &Dtd) -> Result<FluxExpr, RewriteError> {
    let mut ctx = Ctx { dtd, var_elem: HashMap::new() };
    ctx.var_elem.insert(ROOT_VAR.to_string(), DOC_ELEM.to_string());
    rw(&mut ctx, ROOT_VAR, &BTreeSet::new(), q)
}

struct Ctx<'d> {
    dtd: &'d Dtd,
    /// Which element's production each in-scope variable ranges over.
    var_elem: HashMap<String, String>,
}

impl<'d> Ctx<'d> {
    fn prod_of_var(&self, var: &str) -> Option<&'d Production> {
        let elem = self.var_elem.get(var)?;
        production_of(self.dtd, elem)
    }
}

fn rw(
    ctx: &mut Ctx<'_>,
    x: &str,
    h: &BTreeSet<String>,
    beta: &Expr,
) -> Result<FluxExpr, RewriteError> {
    // Line 5: {$x} ⊑ β.
    if beta.contains_output_var(x) {
        if beta.is_simple() && dependencies(x, beta).is_empty() {
            return Ok(FluxExpr::Simple(beta.clone()));
        }
        return Ok(FluxExpr::ps(
            x,
            vec![Handler::OnFirst { past: PastSpec::All, expr: beta.clone() }],
        ));
    }

    // Line 14: β = β1 β2.
    if let Expr::Seq(items) = beta {
        debug_assert!(items.len() >= 2, "Expr::seq canonicalizes singleton sequences");
        let beta1 = items[0].clone();
        let beta2 = Expr::seq(items[1..].to_vec());
        let r1 = rw(ctx, x, h, &beta1)?;
        let FluxExpr::PS { handlers: z1, .. } = r1 else {
            return Err(RewriteError::Internal(format!(
                "sequence member `{beta1}` did not rewrite to a process-stream"
            )));
        };
        let mut h2 = h.clone();
        h2.extend(hsymb(&z1));
        let r2 = rw(ctx, x, &h2, &beta2)?;
        let FluxExpr::PS { handlers: z2, .. } = r2 else {
            return Err(RewriteError::Internal(format!(
                "sequence member `{beta2}` did not rewrite to a process-stream"
            )));
        };
        let mut handlers = z1;
        handlers.extend(z2);
        return Ok(FluxExpr::ps(x, handlers));
    }

    // Line 22: β simple (here: a string, ε, or {if χ then s}).
    if beta.is_simple() {
        let mut past = dependencies(x, beta);
        past.extend(h.iter().cloned());
        return Ok(FluxExpr::ps(
            x,
            vec![Handler::OnFirst { past: PastSpec::Set(past), expr: beta.clone() }],
        ));
    }

    // Line 27: β = { for $y in $z/a return α }.
    if let Expr::For { var: y, in_var: z, path, pred, body: alpha } = beta {
        if pred.is_some() {
            return Err(RewriteError::NotNormalized(format!(
                "conditional for-loop survived normalization: {beta}"
            )));
        }
        let Some(a) = path.single() else {
            return Err(RewriteError::NotNormalized(format!(
                "multi-step loop path survived normalization: {beta}"
            )));
        };

        // Line 30: X = {b ∈ dependencies($x, α) ∪ H | b may still be
        // pending once `a`-children arrive}.
        let x_prod = ctx.prod_of_var(x);
        let mut dep_set = dependencies(x, alpha);
        dep_set.extend(h.iter().cloned());
        let x_set: BTreeSet<String> = match x_prod {
            Some(p) => {
                let a_known = p.has_symbol(a);
                dep_set
                    .into_iter()
                    .filter(|b| p.has_symbol(b) && (!a_known || !p.ord(b, a)))
                    .collect()
            }
            // Unknown production: no order information at all; wait for
            // everything that was collected.
            None => dep_set,
        };

        if z != x {
            return Ok(FluxExpr::ps(
                x,
                vec![Handler::OnFirst { past: PastSpec::Set(x_set), expr: beta.clone() }],
            ));
        }
        if !x_set.is_empty() {
            let mut past = x_set;
            past.insert(a.to_string());
            return Ok(FluxExpr::ps(
                x,
                vec![Handler::OnFirst { past: PastSpec::Set(past), expr: beta.clone() }],
            ));
        }
        // Lines 36–39: a streaming `on` handler.
        let shadowed = ctx.var_elem.insert(y.clone(), a.to_string());
        let alpha2 = rw(ctx, y, &BTreeSet::new(), alpha)?;
        match shadowed {
            Some(prev) => {
                ctx.var_elem.insert(y.clone(), prev);
            }
            None => {
                ctx.var_elem.remove(y);
            }
        }
        return Ok(FluxExpr::ps(
            x,
            vec![Handler::On { label: a.to_string(), var: y.clone(), body: Box::new(alpha2) }],
        ));
    }

    Err(RewriteError::NotNormalized(format!("unexpected expression form: {beta}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_query::parse_xquery;

    const BIB_WEAK: &str = "<!ELEMENT bib (book)*><!ELEMENT book (title|author)*>\
        <!ELEMENT title (#PCDATA)><!ELEMENT author (#PCDATA)>";
    const BIB_ORDERED: &str = "<!ELEMENT bib (book)*><!ELEMENT book (author*,title*)>\
        <!ELEMENT title (#PCDATA)><!ELEMENT author (#PCDATA)>";
    const BIB_STRONG: &str = "<!ELEMENT bib (book)*>\
        <!ELEMENT book (title,(author+|editor+),publisher,price)>\
        <!ELEMENT title (#PCDATA)><!ELEMENT author (#PCDATA)><!ELEMENT editor (#PCDATA)>\
        <!ELEMENT publisher (#PCDATA)><!ELEMENT price (#PCDATA)>";

    const XMP_Q2: &str = "<results>\
        { for $bib in $ROOT/bib return \
          { for $b in $bib/book return \
            { for $t in $b/title return \
              { for $a in $b/author return \
                <result> {$t} {$a} </result> } } } }\
        </results>";

    #[track_caller]
    fn rw_ok(q: &str, dtd: &str) -> FluxExpr {
        let dtd = Dtd::parse(dtd).unwrap();
        let q = parse_xquery(q).unwrap();
        rewrite_query(&q, &dtd).unwrap()
    }

    #[test]
    fn example_3_4_trivial_rewrite_shape() {
        // Every XQuery− query is equivalent to {ps $ROOT: on-first past(*)
        // return α}; line 5/10 produce exactly this when {$ROOT} occurs.
        let dtd = Dtd::parse(BIB_WEAK).unwrap();
        let q = parse_xquery("{$ROOT} {$ROOT}").unwrap();
        let f = rewrite_query(&q, &dtd).unwrap();
        let FluxExpr::PS { handlers, .. } = &f else { panic!("{f}") };
        assert_eq!(handlers.len(), 1);
        assert!(matches!(&handlers[0], Handler::OnFirst { past: PastSpec::All, .. }));
    }

    #[test]
    fn example_4_4_weak_dtd_buffers_title_and_author() {
        // Figure F2: under the weak DTD the title×author loop nest is
        // deferred with past(author,title) inside the book scope.
        let f = rw_ok(XMP_Q2, BIB_WEAK);
        let s = f.to_string();
        assert!(s.contains("on-first past() return <results>"), "got: {s}");
        assert!(s.contains("on bib as $bib"), "got: {s}");
        assert!(s.contains("on book as $b"), "got: {s}");
        assert!(s.contains("on-first past(author,title) return"), "got: {s}");
        assert!(s.contains("on-first past(bib) return </results>"), "got: {s}");
        assert_eq!(f.on_first_count(), 3);
    }

    #[test]
    fn example_4_4_ordered_dtd_streams_titles() {
        // Figure F2′: with Ord(author,title), titles stream via an `on`
        // handler whose body buffers one title at a time (past(*)).
        let f = rw_ok(XMP_Q2, BIB_ORDERED);
        let s = f.to_string();
        assert!(s.contains("on title as $t return { ps $t: on-first past(*) return"), "got: {s}");
        assert!(!s.contains("past(author,title)"), "got: {s}");
    }

    #[test]
    fn example_4_5_q1_weak_and_ordered() {
        let q1 = "<bib>{ for $b in $ROOT/bib/book \
            where $b/publisher = \"Addison-Wesley\" and $b/year > 1991 \
            return <book> {$b/year} {$b/title} </book> }</bib>";
        let weak = "<!ELEMENT bib (book)*><!ELEMENT book (title|publisher|year)*>\
            <!ELEMENT title (#PCDATA)><!ELEMENT publisher (#PCDATA)><!ELEMENT year (#PCDATA)>";
        let f = rw_ok(q1, weak);
        let s = f.to_string();
        // F1: the title loop waits for past(publisher,title,year).
        assert!(s.contains("past(publisher,title,year)"), "got: {s}");
        assert!(s.contains("past(publisher,year)"), "got: {s}");

        // With Ord(year,title) and Ord(publisher,title) titles stream:
        let ordered = "<!ELEMENT bib (book)*><!ELEMENT book ((publisher|year)*,title*)>\
            <!ELEMENT title (#PCDATA)><!ELEMENT publisher (#PCDATA)><!ELEMENT year (#PCDATA)>";
        let f2 = rw_ok(q1, ordered);
        let s2 = f2.to_string();
        assert!(s2.contains("on title as $title return"), "got: {s2}");
        assert!(!s2.contains("for $title"), "titles must stream, not loop over buffers: {s2}");
    }

    #[test]
    fn example_4_6_join_weak_and_ordered() {
        let q3 = "<results>\
            { for $bib in $ROOT/bib return \
              { for $article in $bib/article return \
                { for $book in $bib/book \
                  where $article/author = $book/editor return \
                  <result> {$article/author} </result> } } }\
            </results>";
        let dtd_unordered = "<!ELEMENT bib (book|article)*>\
            <!ELEMENT book (title,(author+|editor+),publisher)>\
            <!ELEMENT article (title,author+,journal)>\
            <!ELEMENT title (#PCDATA)><!ELEMENT author (#PCDATA)><!ELEMENT editor (#PCDATA)>\
            <!ELEMENT publisher (#PCDATA)><!ELEMENT journal (#PCDATA)>";
        let f3 = rw_ok(q3, dtd_unordered);
        let s3 = f3.to_string();
        // F3: everything buffered under $bib with past(article,book).
        assert!(s3.contains("ps $bib: on-first past(article,book) return"), "got: {s3}");

        let dtd_ordered = "<!ELEMENT bib (book*,article*)>\
            <!ELEMENT book (title,(author+|editor+),publisher)>\
            <!ELEMENT article (title,author+,journal)>\
            <!ELEMENT title (#PCDATA)><!ELEMENT author (#PCDATA)><!ELEMENT editor (#PCDATA)>\
            <!ELEMENT publisher (#PCDATA)><!ELEMENT journal (#PCDATA)>";
        let f3p = rw_ok(q3, dtd_ordered);
        let s3p = f3p.to_string();
        // F3′: articles stream; only the authors of one article buffer at a
        // time, via past(author) — the paper's key example for the Ord
        // handling of symbols outside symb($article).
        assert!(s3p.contains("on article as $article return"), "got: {s3p}");
        assert!(s3p.contains("ps $article: on-first past(author) return"), "got: {s3p}");
    }

    #[test]
    fn fully_streaming_with_strong_dtd() {
        // The intro query under the Use-Cases DTD: no buffering at all.
        let f = rw_ok(
            "<results>{ for $b in $ROOT/bib/book return <result> {$b/title} {$b/author} </result> }</results>",
            BIB_STRONG,
        );
        let s = f.to_string();
        assert!(s.contains("on title as"), "got: {s}");
        assert!(s.contains("on author as"), "got: {s}");
        // The only on-first handlers are string outputs with past sets that
        // never require buffering of data nodes; the buffering proxy counts
        // only `past(*)`-style deferrals of data expressions:
        assert!(!s.contains("past(*)"), "got: {s}");
    }

    #[test]
    fn handler_order_follows_query_order() {
        let f = rw_ok("<results>{ for $b in $ROOT/bib/book return <r/> }</results>", BIB_WEAK);
        let FluxExpr::PS { handlers, .. } = &f else { panic!() };
        assert!(
            matches!(&handlers[0], Handler::OnFirst { expr, .. } if expr.to_string() == "<results>")
        );
        assert!(matches!(&handlers[1], Handler::On { label, .. } if label == "bib"));
        let Handler::OnFirst { past: PastSpec::Set(s), expr } = &handlers[2] else { panic!() };
        assert_eq!(expr.to_string(), "</results>");
        assert!(s.contains("bib"), "H threading must include the bib handler symbol");
    }

    #[test]
    fn unsafe_inputs_rejected_not_panicking() {
        // A hand-written non-normalized expression with a conditional loop
        // must be reported, not crash (rewrite_normalized path).
        let dtd = Dtd::parse(BIB_WEAK).unwrap();
        let q = parse_xquery("{ for $b in $ROOT/bib where $b/x = 1 return {$b} }").unwrap();
        let err = rewrite_normalized(&q, &dtd).unwrap_err();
        assert!(matches!(err, RewriteError::NotNormalized(_)));
    }

    #[test]
    fn loop_over_path_absent_from_dtd() {
        // `zzz` cannot occur among the document's children: dependencies are
        // empty, so the loop becomes an `on` handler that simply never
        // fires on valid input.
        let f = rw_ok("<r>{ for $z in $ROOT/zzz return {$z} }</r>", BIB_WEAK);
        let s = f.to_string();
        assert!(s.contains("on zzz as $z return {$z}"), "got: {s}");
    }
}
