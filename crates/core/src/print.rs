//! Concrete-syntax printing for FluX expressions (the paper's notation,
//! using the `ps` shorthand for `process-stream`).

use std::fmt;

use crate::flux::{FluxExpr, Handler, PastSpec};

impl fmt::Display for PastSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PastSpec::All => f.write_str("past(*)"),
            PastSpec::Set(s) => {
                f.write_str("past(")?;
                for (i, name) in s.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    f.write_str(name)?;
                }
                f.write_str(")")
            }
        }
    }
}

impl fmt::Display for Handler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Handler::OnFirst { past, expr } => write!(f, "on-first {past} return {expr}"),
            Handler::On { label, var, body } => write!(f, "on {label} as ${var} return {body}"),
        }
    }
}

impl fmt::Display for FluxExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FluxExpr::Simple(e) => write!(f, "{e}"),
            FluxExpr::PS { pre, var, handlers, post } => {
                if let Some(s) = pre {
                    write!(f, "{s} ")?;
                }
                write!(f, "{{ ps ${var}:")?;
                for (i, h) in handlers.iter().enumerate() {
                    if i > 0 {
                        f.write_str(";")?;
                    }
                    write!(f, " {h}")?;
                }
                f.write_str(" }")?;
                if let Some(s) = post {
                    write!(f, " {s}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_flux;

    #[track_caller]
    fn roundtrip(src: &str) {
        let e = parse_flux(src).unwrap();
        let printed = e.to_string();
        let back = parse_flux(&printed)
            .unwrap_or_else(|err| panic!("reparse of `{printed}` failed: {err}"));
        assert_eq!(back, e, "printed: {printed}");
    }

    #[test]
    fn roundtrips() {
        roundtrip("{ ps $ROOT: on-first past(*) return <done> }");
        roundtrip("{ ps $ROOT: on-first past() return <results>; on bib as $bib return { ps $bib: on book as $b return {$b} }; on-first past(bib) return </results> }");
        roundtrip("<results> { ps $ROOT: on a as $x return {$x} } </results>");
        roundtrip(
            "{ ps $b: on title as $t return {$t}; on-first past(author,title) return { for $a in $b/author return {$a} } }",
        );
    }
}
