//! Singleton descent sharing.
//!
//! After normalization, every absolute path in the original query has become
//! a chain of fresh single-step loops from `$ROOT`. Two descents to
//! `/site/closed_auctions` therefore use *different* variables, hiding their
//! relationship from `dependencies` — the scheduler would defer the inner
//! loop at the wrong scope. When the DTD proves `a ∈ ‖≤1_$y`, an inner
//! `{for $x' in $y/a return γ}` appearing below an enclosing
//! `{for $x in $y/a return …}` denotes the *same* unique node, so it can be
//! replaced by `γ[$x' := $x]`. This is exactly the paper's Section 7
//! cardinality reasoning; without it Q8/Q11 cannot be given the plans the
//! paper measures.

use std::collections::HashMap;

use flux_dtd::Dtd;
use flux_query::{Expr, ROOT_VAR};

use crate::flux::{production_of, DOC_ELEM};

/// Apply singleton descent sharing to a normalized expression.
pub fn share_singletons(e: &Expr, dtd: &Dtd) -> Expr {
    let mut scope = Scope {
        dtd,
        var_elem: HashMap::from([(ROOT_VAR.to_string(), DOC_ELEM.to_string())]),
        bindings: HashMap::new(),
    };
    go(e, &mut scope)
}

struct Scope<'d> {
    dtd: &'d Dtd,
    /// Element each variable ranges over.
    var_elem: HashMap<String, String>,
    /// (in_var, step) → already-bound variable for that unique child.
    bindings: HashMap<(String, String), String>,
}

impl Scope<'_> {
    fn is_singleton(&self, in_var: &str, step: &str) -> bool {
        let Some(elem) = self.var_elem.get(in_var) else { return false };
        let Some(prod) = production_of(self.dtd, elem) else { return false };
        prod.has_symbol(step) && prod.card_le_1(step)
    }
}

fn go(e: &Expr, scope: &mut Scope<'_>) -> Expr {
    match e {
        Expr::Empty
        | Expr::Str(_)
        | Expr::OutputVar { .. }
        | Expr::OutputPath { .. }
        | Expr::If { .. } => e.clone(),
        Expr::Seq(items) => Expr::seq(items.iter().map(|i| go(i, scope)).collect::<Vec<_>>()),
        Expr::For { var, in_var, path, pred, body } => {
            let step = path.single();
            // Reuse an enclosing binding of the same unique child.
            if pred.is_none() {
                if let Some(step) = step {
                    if let Some(existing) = scope.bindings.get(&(in_var.clone(), step.to_string()))
                    {
                        if existing != var && scope.is_singleton(in_var, step) {
                            let renamed = subst_var(body, var, existing);
                            return go(&renamed, scope);
                        }
                    }
                }
            }
            // Otherwise descend, registering this binding for the body.
            let key = step.map(|s| (in_var.clone(), s.to_string()));
            let prev_binding = key.as_ref().map(|k| scope.bindings.insert(k.clone(), var.clone()));
            let prev_elem = step.map(|s| scope.var_elem.insert(var.clone(), s.to_string()));
            let new_body = go(body, scope);
            if let (Some(k), Some(prev)) = (&key, prev_binding) {
                match prev {
                    Some(v) => {
                        scope.bindings.insert(k.clone(), v);
                    }
                    None => {
                        scope.bindings.remove(k);
                    }
                }
            }
            if let Some(prev) = prev_elem {
                match prev {
                    Some(el) => {
                        scope.var_elem.insert(var.clone(), el);
                    }
                    None => {
                        scope.var_elem.remove(var);
                    }
                }
            }
            Expr::For {
                var: var.clone(),
                in_var: in_var.clone(),
                path: path.clone(),
                pred: pred.clone(),
                body: Box::new(new_body),
            }
        }
    }
}

/// Rename free occurrences of variable `from` to `to` (stopping at
/// rebindings of `from`).
pub fn subst_var(e: &Expr, from: &str, to: &str) -> Expr {
    match e {
        Expr::Empty | Expr::Str(_) => e.clone(),
        Expr::OutputVar { var } => {
            Expr::OutputVar { var: if var == from { to.to_string() } else { var.clone() } }
        }
        Expr::OutputPath { var, path } => Expr::OutputPath {
            var: if var == from { to.to_string() } else { var.clone() },
            path: path.clone(),
        },
        Expr::Seq(items) => Expr::Seq(items.iter().map(|i| subst_var(i, from, to)).collect()),
        Expr::If { cond, body } => {
            Expr::If { cond: subst_cond(cond, from, to), body: Box::new(subst_var(body, from, to)) }
        }
        Expr::For { var, in_var, path, pred, body } => {
            let new_in = if in_var == from { to.to_string() } else { in_var.clone() };
            if var == from {
                // `from` is rebound below: predicate and body see the new
                // binding, only the source variable is renamed.
                Expr::For {
                    var: var.clone(),
                    in_var: new_in,
                    path: path.clone(),
                    pred: pred.clone(),
                    body: body.clone(),
                }
            } else {
                Expr::For {
                    var: var.clone(),
                    in_var: new_in,
                    path: path.clone(),
                    pred: pred.as_ref().map(|c| subst_cond(c, from, to)),
                    body: Box::new(subst_var(body, from, to)),
                }
            }
        }
    }
}

fn subst_cond(c: &flux_query::Cond, from: &str, to: &str) -> flux_query::Cond {
    use flux_query::{Atom, CmpRhs, Cond};
    let fix = |p: &flux_query::PathRef| flux_query::PathRef {
        var: if p.var == from { to.to_string() } else { p.var.clone() },
        path: p.path.clone(),
    };
    match c {
        Cond::True => Cond::True,
        Cond::And(a, b) => {
            Cond::And(Box::new(subst_cond(a, from, to)), Box::new(subst_cond(b, from, to)))
        }
        Cond::Or(a, b) => {
            Cond::Or(Box::new(subst_cond(a, from, to)), Box::new(subst_cond(b, from, to)))
        }
        Cond::Not(x) => Cond::Not(Box::new(subst_cond(x, from, to))),
        Cond::Atom(Atom::Exists(p)) => Cond::Atom(Atom::Exists(fix(p))),
        Cond::Atom(Atom::Cmp { left, op, right }) => Cond::Atom(Atom::Cmp {
            left: fix(left),
            op: *op,
            right: match right {
                CmpRhs::Const(s) => CmpRhs::Const(s.clone()),
                CmpRhs::Path(p) => CmpRhs::Path(fix(p)),
                CmpRhs::Scaled { factor, path } => {
                    CmpRhs::Scaled { factor: *factor, path: fix(path) }
                }
            },
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_query::{normalize, parse_xquery};

    const DTD: &str = "<!ELEMENT site (people,auctions)>\
        <!ELEMENT people (person*)><!ELEMENT auctions (auction*)>\
        <!ELEMENT person (name)><!ELEMENT auction (price)>\
        <!ELEMENT name (#PCDATA)><!ELEMENT price (#PCDATA)>";

    #[test]
    fn second_descent_reuses_site_variable() {
        let dtd = Dtd::parse(DTD).unwrap();
        let q = parse_xquery(
            "{ for $p in /site/people/person return \
               { for $a in /site/auctions/auction where $a/price = $p/name return {$a} } }",
        )
        .unwrap();
        let n = normalize(&q);
        let shared = share_singletons(&n, &dtd);
        let s = shared.to_string();
        // Exactly one loop over `site` must remain.
        assert_eq!(s.matches("in $ROOT/site").count(), 1, "got: {s}");
        // The inner descent reuses the outer site variable.
        assert!(s.contains("/auctions"), "got: {s}");
        let outer_var = {
            let Expr::For { var, .. } = &shared else { panic!("{s}") };
            var.clone()
        };
        assert!(s.contains(&format!("in ${outer_var}/auctions")), "got: {s}");
    }

    #[test]
    fn non_singleton_paths_are_not_shared() {
        let dtd = Dtd::parse(DTD).unwrap();
        let q = parse_xquery(
            "{ for $p in /site/people/person return \
               { for $q in $ROOT/site return {$q/people} } }",
        )
        .unwrap();
        // `site` is a singleton → shared. But person loops must never merge:
        let q2 = parse_xquery(
            "{ for $a in $ROOT/site return { for $p in $a/people return \
               { for $x in $p/person return { for $y in $p/person return <z/> } } } }",
        )
        .unwrap();
        let n2 = normalize(&q2);
        let shared2 = share_singletons(&n2, &dtd);
        assert_eq!(shared2.to_string().matches("/person return").count(), 2);
        let n = normalize(&q);
        let shared = share_singletons(&n, &dtd);
        assert_eq!(shared.to_string().matches("in $ROOT/site").count(), 1);
    }

    #[test]
    fn sharing_preserves_semantics() {
        let dtd = Dtd::parse(DTD).unwrap();
        let doc = flux_query::eval::wrap_document(
            flux_xml::Node::parse_str(
                "<site><people><person><name>7</name></person><person><name>9</name></person></people>\
                 <auctions><auction><price>7</price></auction><auction><price>8</price></auction></auctions></site>",
            )
            .unwrap(),
        );
        let q = parse_xquery(
            "{ for $p in /site/people/person return \
               { for $a in /site/auctions/auction where $a/price = $p/name return {$a} } }",
        )
        .unwrap();
        let n = normalize(&q);
        let shared = share_singletons(&n, &dtd);
        assert_eq!(
            flux_query::eval_query(&n, &doc).unwrap(),
            flux_query::eval_query(&shared, &doc).unwrap()
        );
    }

    #[test]
    fn subst_respects_rebinding() {
        let e = parse_xquery("{ for $x in $y/a return {$x} } {$x}").unwrap();
        let r = subst_var(&e, "x", "z");
        assert_eq!(r.to_string(), "{ for $x in $y/a return {$x} }{$z}");
        let e2 = parse_xquery("{ for $w in $x/a where $x/b = 1 return {$x} }").unwrap();
        let r2 = subst_var(&e2, "x", "z");
        assert_eq!(r2.to_string(), "{ for $w in $z/a where $z/b = 1 return {$z} }");
    }
}
