//! Cardinality-based for-loop merging (paper, Section 7).
//!
//! The rewrite rule:
//!
//! ```text
//! { for $x in $r/a return α } { for $x' in $r/a return β }
//! ──────────────────────────────────────────────────────── (a ∈ ‖≤1_$r)
//! { for $x in $r/a return α β[$x' := $x] }
//! ```
//!
//! Sequences of for-loops iterating over singletons are a natural product of
//! normalization (e.g. `{$b/publisher/name} {$b/publisher/address}`); merging
//! them often removes the need to buffer the shared path entirely.

use std::collections::HashMap;

use flux_dtd::Dtd;
use flux_query::{Expr, ROOT_VAR};

use super::share::subst_var;
use crate::flux::{production_of, DOC_ELEM};

/// Merge consecutive singleton loops in a normalized expression.
pub fn merge_singleton_loops(e: &Expr, dtd: &Dtd) -> Expr {
    let mut var_elem = HashMap::from([(ROOT_VAR.to_string(), DOC_ELEM.to_string())]);
    go(e, dtd, &mut var_elem)
}

fn go(e: &Expr, dtd: &Dtd, var_elem: &mut HashMap<String, String>) -> Expr {
    match e {
        Expr::Seq(items) => {
            let mut out: Vec<Expr> = Vec::with_capacity(items.len());
            for item in items {
                let item = go(item, dtd, var_elem);
                if let Some(prev) = out.last_mut() {
                    if let Some(merged) = try_merge(prev, &item, dtd, var_elem) {
                        *prev = go(&merged, dtd, var_elem);
                        continue;
                    }
                }
                out.push(item);
            }
            Expr::seq(out)
        }
        Expr::For { var, in_var, path, pred, body } => {
            let prev = path.single().map(|s| var_elem.insert(var.clone(), s.to_string()));
            let new_body = go(body, dtd, var_elem);
            if let Some(prev) = prev {
                match prev {
                    Some(el) => {
                        var_elem.insert(var.clone(), el);
                    }
                    None => {
                        var_elem.remove(var);
                    }
                }
            }
            Expr::For {
                var: var.clone(),
                in_var: in_var.clone(),
                path: path.clone(),
                pred: pred.clone(),
                body: Box::new(new_body),
            }
        }
        _ => e.clone(),
    }
}

fn try_merge(
    left: &Expr,
    right: &Expr,
    dtd: &Dtd,
    var_elem: &HashMap<String, String>,
) -> Option<Expr> {
    let Expr::For { var: x1, in_var: r1, path: p1, pred: None, body: b1 } = left else {
        return None;
    };
    let Expr::For { var: x2, in_var: r2, path: p2, pred: None, body: b2 } = right else {
        return None;
    };
    if r1 != r2 || p1 != p2 {
        return None;
    }
    let a = p1.single()?;
    let elem = var_elem.get(r1)?;
    let prod = production_of(dtd, elem)?;
    if !(prod.has_symbol(a) && prod.card_le_1(a)) {
        return None;
    }
    let renamed = subst_var(b2, x2, x1);
    Some(Expr::For {
        var: x1.clone(),
        in_var: r1.clone(),
        path: p1.clone(),
        pred: None,
        body: Box::new(Expr::seq([(**b1).clone(), renamed])),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_query::{normalize, parse_xquery};

    const DTD: &str = "<!ELEMENT book (publisher,author*)>\
        <!ELEMENT publisher (name,address)>\
        <!ELEMENT name (#PCDATA)><!ELEMENT address (#PCDATA)><!ELEMENT author (#PCDATA)>";

    #[test]
    fn paper_example_merges_publisher_loops() {
        // From Section 7: {$b/publisher/name} {$b/publisher/address} uses a
        // sequence of two loops over publisher in its normal form, which can
        // be rewritten into one.
        let dtd = Dtd::parse_with_root(DTD, "book").unwrap();
        let q = parse_xquery(
            "{ for $b in $ROOT/book return {$b/publisher/name} {$b/publisher/address} }",
        )
        .unwrap();
        let n = normalize(&q);
        assert_eq!(n.to_string().matches("publisher return").count(), 2);
        let m = merge_singleton_loops(&n, &dtd);
        assert_eq!(m.to_string().matches("publisher return").count(), 1, "got: {m}");
        assert!(flux_query::is_normal_form(&m), "merging preserves normal form: {m}");
    }

    #[test]
    fn merging_preserves_semantics() {
        let dtd = Dtd::parse_with_root(DTD, "book").unwrap();
        let doc = flux_query::eval::wrap_document(
            flux_xml::Node::parse_str(
                "<book><publisher><name>N</name><address>A</address></publisher>\
                 <author>X</author></book>",
            )
            .unwrap(),
        );
        let q = parse_xquery(
            "{ for $b in $ROOT/book return {$b/publisher/name} {$b/publisher/address} }",
        )
        .unwrap();
        let n = normalize(&q);
        let m = merge_singleton_loops(&n, &dtd);
        assert_eq!(
            flux_query::eval_query(&n, &doc).unwrap(),
            flux_query::eval_query(&m, &doc).unwrap()
        );
    }

    #[test]
    fn non_singleton_loops_do_not_merge() {
        let dtd = Dtd::parse_with_root(DTD, "book").unwrap();
        let q = parse_xquery("{ for $b in $ROOT/book return {$b/author} {$b/author} }").unwrap();
        let n = normalize(&q);
        let m = merge_singleton_loops(&n, &dtd);
        assert_eq!(
            m.to_string().matches("author return").count(),
            2,
            "author* may repeat; merging would change semantics: {m}"
        );
    }

    #[test]
    fn chains_of_three_merge_fully() {
        let dtd = Dtd::parse_with_root(DTD, "book").unwrap();
        let q = parse_xquery(
            "{ for $b in $ROOT/book return {$b/publisher/name} {$b/publisher/address} {$b/publisher/name} }",
        )
        .unwrap();
        let m = merge_singleton_loops(&normalize(&q), &dtd);
        assert_eq!(m.to_string().matches("publisher return").count(), 1, "got: {m}");
    }
}
