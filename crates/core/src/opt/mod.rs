//! Algebraic query optimizations from the paper's Section 7 discussion.
//!
//! These passes use *cardinality constraints* `a ∈ ‖≤1_$r` derived from the
//! DTD (an element has at most one `a` child) to simplify queries before —
//! or, for [`hoist`], after — scheduling:
//!
//! * [`share`] — singleton descent sharing: a nested `for $x' in $y/a`
//!   reuses an enclosing binding `for $x in $y/a` when `a` is a singleton
//!   child; this roots the XMark join queries' second descent at the shared
//!   `site` variable so the scheduler can see the ordering between the two
//!   join sides (DESIGN.md §5.3).
//! * [`merge`] — the paper's explicit rewrite rule: two consecutive loops
//!   over the same singleton path fuse into one, often removing the need to
//!   buffer that path.
//! * [`hoist`] — push `if`-expressions back up the tree once the other
//!   simplifications are done (inverse of normalization rule 5).

pub mod hoist;
pub mod merge;
pub mod share;
