//! If-hoisting (paper, Section 7): "push if-expressions — which we have
//! moved down the query tree to obtain our normal form — back 'up' the
//! expression tree as soon as the other simplifications have been realized."
//!
//! Adjacent conditionals with syntactically identical conditions are fused:
//! `{if χ then α}{if χ then β}` becomes `{if χ then α β}`, and a for-loop
//! whose body is entirely guarded by a χ not mentioning the loop variable is
//! rewritten back into a conditional loop. The result is generally *not* in
//! normal form — this pass is meant for presentation and for engines that
//! evaluate a condition once instead of per output item.

use flux_query::{Cond, Expr};

/// Hoist conditionals upwards. Semantics-preserving for any expression.
pub fn hoist_ifs(e: &Expr) -> Expr {
    match e {
        Expr::Seq(items) => {
            let items: Vec<Expr> = items.iter().map(hoist_ifs).collect();
            let mut out: Vec<Expr> = Vec::with_capacity(items.len());
            for item in items {
                if let (Some(Expr::If { cond: c1, body: b1 }), Expr::If { cond: c2, body: b2 }) =
                    (out.last(), &item)
                {
                    if c1 == c2 {
                        let merged = Expr::If {
                            cond: c1.clone(),
                            body: Box::new(Expr::seq([(**b1).clone(), (**b2).clone()])),
                        };
                        *out.last_mut().unwrap() = merged;
                        continue;
                    }
                }
                out.push(item);
            }
            Expr::seq(out)
        }
        Expr::For { var, in_var, path, pred, body } => {
            let body = hoist_ifs(body);
            // `for $x … return {if χ then α}` with χ independent of $x is a
            // conditional loop again (inverse of rule 1+4).
            if let Expr::If { cond, body: inner } = &body {
                if pred.is_none() && !cond.mentions(var) {
                    return Expr::For {
                        var: var.clone(),
                        in_var: in_var.clone(),
                        path: path.clone(),
                        pred: Some(cond.clone()),
                        body: inner.clone(),
                    };
                }
            }
            Expr::For {
                var: var.clone(),
                in_var: in_var.clone(),
                path: path.clone(),
                pred: pred.clone(),
                body: Box::new(body),
            }
        }
        Expr::If { cond, body } => {
            let body = hoist_ifs(body);
            match body {
                // {if χ then {if ψ then α}} → {if χ∧ψ then α} stays merged.
                Expr::If { cond: inner, body: b } => {
                    Expr::If { cond: cond.clone().and(inner), body: b }
                }
                other => Expr::If { cond: cond.clone(), body: Box::new(other) },
            }
        }
        _ => e.clone(),
    }
}

/// Count `if` nodes (used to assert the pass actually shrinks queries).
pub fn count_ifs(e: &Expr) -> usize {
    let mut n = 0;
    e.visit(&mut |x| {
        if matches!(x, Expr::If { .. }) {
            n += 1;
        }
    });
    n
}

fn _cond_eq(a: &Cond, b: &Cond) -> bool {
    a == b
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_query::{normalize, parse_xquery};

    #[test]
    fn normalized_q1_hoists_back() {
        let q = parse_xquery(
            "<bib>{ for $b in $ROOT/bib/book \
               where $b/publisher = \"AW\" and $b/year > 1991 \
               return <book> {$b/year} {$b/title} </book> }</bib>",
        )
        .unwrap();
        let n = normalize(&q);
        let before = count_ifs(&n);
        assert!(before >= 4, "normalization spreads the condition: {n}");
        let h = hoist_ifs(&n);
        let after = count_ifs(&h);
        assert!(after < before, "hoisting must reduce ifs: {h}");
    }

    #[test]
    fn hoisting_preserves_semantics() {
        let doc = flux_query::eval::wrap_document(
            flux_xml::Node::parse_str(
                "<bib><book><title>T</title><publisher>AW</publisher><year>1994</year></book>\
                 <book><title>U</title><publisher>MK</publisher><year>1999</year></book></bib>",
            )
            .unwrap(),
        );
        let q = parse_xquery(
            "<bib>{ for $b in $ROOT/bib/book where $b/publisher = \"AW\" \
               return <book> {$b/year} {$b/title} </book> }</bib>",
        )
        .unwrap();
        let n = normalize(&q);
        let h = hoist_ifs(&n);
        assert_eq!(
            flux_query::eval_query(&n, &doc).unwrap(),
            flux_query::eval_query(&h, &doc).unwrap()
        );
    }

    #[test]
    fn loop_dependent_conditions_stay_inside() {
        let q = parse_xquery("{ for $x in $y/a return { if $x/b = 1 then {$x} } }").unwrap();
        let h = hoist_ifs(&q);
        // χ mentions $x: must not become a where-clause… it may, actually,
        // since `where` sees $x too — but hoisting as written keeps it
        // inside to avoid changing per-iteration evaluation order.
        assert_eq!(h, q);
    }

    #[test]
    fn different_conditions_do_not_fuse() {
        let q = parse_xquery("{ if $a/x = 1 then <p> } { if $a/x = 2 then <q> }").unwrap();
        assert_eq!(hoist_ifs(&q), q);
    }
}
