//! The FluX abstract syntax (paper, Definition 3.3).

use std::collections::BTreeSet;

use flux_dtd::{Dtd, Production};
use flux_query::Expr;

/// The pseudo element name of the document node (the production `$ROOT`
/// ranges over).
pub const DOC_ELEM: &str = "#document";

/// Resolve an element name to its production, treating [`DOC_ELEM`] as the
/// DTD's document pseudo-production.
pub fn production_of<'d>(dtd: &'d Dtd, elem: &str) -> Option<&'d Production> {
    if elem == DOC_ELEM {
        Some(dtd.doc_production())
    } else {
        dtd.production(elem)
    }
}

/// The symbol set of an `on-first past(…)` handler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PastSpec {
    /// `past(*)` — shorthand for `past(symb($y))`.
    All,
    /// `past(S)` for an explicit set (possibly empty: `past()`).
    Set(BTreeSet<String>),
}

impl PastSpec {
    /// Build from an iterator of names.
    pub fn set<S: Into<String>>(names: impl IntoIterator<Item = S>) -> PastSpec {
        PastSpec::Set(names.into_iter().map(Into::into).collect())
    }

    /// The empty set `past()`.
    pub fn empty() -> PastSpec {
        PastSpec::Set(BTreeSet::new())
    }

    /// Resolve to a concrete symbol set against the production of the
    /// enclosing `process-stream` variable.
    pub fn resolve(&self, prod: &Production) -> BTreeSet<String> {
        match self {
            PastSpec::All => prod.symbols().iter().cloned().collect(),
            PastSpec::Set(s) => s.clone(),
        }
    }
}

/// An event handler inside `process-stream $y: ζ`.
#[derive(Debug, Clone, PartialEq)]
pub enum Handler {
    /// `on-first past(S) return α` — fires exactly once, at the earliest
    /// moment the DTD guarantees no symbol of S can still occur among the
    /// children of `$y`; α is an XQuery− expression evaluated over buffers.
    OnFirst {
        /// The watched symbol set.
        past: PastSpec,
        /// The XQuery− expression to run.
        expr: Expr,
    },
    /// `on a as $x return Q` — fires on each `a`-labelled child, binding it
    /// to `$x` and processing it with the FluX expression Q.
    On {
        /// The child label the handler reacts to.
        label: String,
        /// The variable bound to the matched child.
        var: String,
        /// The handler body (recursively FluX).
        body: Box<FluxExpr>,
    },
}

/// A FluX expression: either a *simple* XQuery− expression or
/// `s { process-stream $y: ζ } s'` (Definition 3.3).
#[derive(Debug, Clone, PartialEq)]
pub enum FluxExpr {
    /// A simple expression (strings, `{if χ then s}`, at most one `{$u}`).
    Simple(Expr),
    /// `s { process-stream $y: ζ } s'`.
    PS {
        /// Optional literal string written before the stream is processed.
        pre: Option<String>,
        /// The variable whose children are processed.
        var: String,
        /// The handler list ζ, in order.
        handlers: Vec<Handler>,
        /// Optional literal string written afterwards.
        post: Option<String>,
    },
}

impl FluxExpr {
    /// Plain `{ ps $var: handlers }` without surrounding strings.
    pub fn ps(var: impl Into<String>, handlers: Vec<Handler>) -> FluxExpr {
        FluxExpr::PS { pre: None, var: var.into(), handlers, post: None }
    }

    /// Visit every `process-stream` subexpression together with its
    /// variable, pre-order.
    pub fn visit_ps<'a, F: FnMut(&'a str, &'a [Handler])>(&'a self, f: &mut F) {
        if let FluxExpr::PS { var, handlers, .. } = self {
            f(var, handlers);
            for h in handlers {
                if let Handler::On { body, .. } = h {
                    body.visit_ps(f);
                }
            }
        }
    }

    /// The *maximal XQuery− subexpressions* of this FluX expression
    /// (Section 3.2): the expression itself if simple, otherwise the
    /// `on-first` handler bodies found anywhere inside.
    pub fn maximal_xquery_subexprs(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn go<'a>(e: &'a FluxExpr, out: &mut Vec<&'a Expr>) {
            match e {
                FluxExpr::Simple(x) => out.push(x),
                FluxExpr::PS { handlers, .. } => {
                    for h in handlers {
                        match h {
                            Handler::OnFirst { expr, .. } => out.push(expr),
                            Handler::On { body, .. } => go(body, out),
                        }
                    }
                }
            }
        }
        go(self, &mut out);
        out
    }

    /// Free variables of the FluX expression (Section 3.2).
    pub fn free_vars(&self) -> BTreeSet<String> {
        match self {
            FluxExpr::Simple(e) => flux_query::free_vars(e),
            FluxExpr::PS { var, handlers, .. } => {
                let mut out = BTreeSet::new();
                out.insert(var.clone());
                for h in handlers {
                    match h {
                        Handler::OnFirst { expr, .. } => out.extend(flux_query::free_vars(expr)),
                        Handler::On { var: x, body, .. } => {
                            let mut inner = body.free_vars();
                            inner.remove(x);
                            out.extend(inner);
                        }
                    }
                }
                out
            }
        }
    }

    /// Whether this is a FluX *query*: all variables except `$ROOT` bound.
    pub fn is_query(&self) -> bool {
        let fv = self.free_vars();
        fv.iter().all(|v| v == flux_query::ROOT_VAR)
    }

    /// Count `on-first` handlers anywhere in the expression — a quick proxy
    /// for "how much buffering does this plan need" used by tests and the
    /// ablation benches.
    pub fn on_first_count(&self) -> usize {
        let mut n = 0;
        self.visit_ps(&mut |_, handlers| {
            n += handlers.iter().filter(|h| matches!(h, Handler::OnFirst { .. })).count();
        });
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_query::parse_xquery;

    #[test]
    fn past_spec_resolution() {
        let dtd = Dtd::parse("<!ELEMENT book (title,author*)>").unwrap();
        let prod = dtd.production("book").unwrap();
        assert_eq!(
            PastSpec::All.resolve(prod).into_iter().collect::<Vec<_>>(),
            ["author", "title"]
        );
        assert_eq!(PastSpec::empty().resolve(prod).len(), 0);
        assert_eq!(PastSpec::set(["title"]).resolve(prod).len(), 1);
    }

    #[test]
    fn free_vars_and_query() {
        let body = parse_xquery("{ for $a in $book/author return {$a} }").unwrap();
        let q = FluxExpr::ps(
            "ROOT",
            vec![Handler::On {
                label: "bib".into(),
                var: "bib".into(),
                body: Box::new(FluxExpr::ps(
                    "bib",
                    vec![Handler::On {
                        label: "book".into(),
                        var: "book".into(),
                        body: Box::new(FluxExpr::Simple(body)),
                    }],
                )),
            }],
        );
        assert!(q.is_query(), "free vars: {:?}", q.free_vars());
        // A dangling variable makes it a non-query.
        let bad = FluxExpr::Simple(parse_xquery("{$loose}").unwrap());
        assert!(!bad.is_query());
    }

    #[test]
    fn maximal_subexprs() {
        // Example 3.5: the maximal XQuery− subexpressions of the first FluX
        // query in Section 1 are {$t} and the author for-loop.
        let q = crate::parser::parse_flux(
            "<results>{ process-stream $ROOT: on bib as $bib return \
               { process-stream $bib: on book as $book return \
                 <result>{ process-stream $book: \
                    on title as $t return {$t}; \
                    on-first past(title,author) return \
                      { for $a in $book/author return {$a} } }</result> } }</results>",
        )
        .unwrap();
        let subs = q.maximal_xquery_subexprs();
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0].to_string(), "{$t}");
        assert!(subs[1].to_string().contains("for $a in $book/author"));
    }

    #[test]
    fn production_of_document() {
        let dtd = Dtd::parse("<!ELEMENT bib (book)*>").unwrap();
        assert_eq!(production_of(&dtd, DOC_ELEM).unwrap().name, "#document");
        assert_eq!(production_of(&dtd, "bib").unwrap().name, "bib");
        assert!(production_of(&dtd, "zzz").is_none());
    }
}
