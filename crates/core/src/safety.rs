//! Safe FluX queries (paper, Definition 3.6).
//!
//! Safety is the static guarantee that lets the engine evaluate XQuery−
//! subexpressions over buffers: every path such an expression reads is
//! *past* — no node it could match can still arrive on the stream.
//!
//! Symbols that cannot occur among a variable's children at all (dead paths)
//! are treated as trivially past, matching the word-level definitions; the
//! *witness* `a ∈ S` with `Ord(b,a)` must itself be able to occur, since an
//! impossible symbol is past from the start and would be a vacuous witness.

use std::collections::HashMap;
use std::fmt;

use flux_dtd::{Dtd, Production};
use flux_query::{Expr, ROOT_VAR};

use crate::deps::dependencies;
use crate::flux::{production_of, FluxExpr, Handler, DOC_ELEM};

/// A violation of Definition 3.6, with enough context to debug the plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SafetyViolation {
    /// Variable of the offending `process-stream` scope.
    pub scope_var: String,
    /// Index of the offending handler in ζ.
    pub handler: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for SafetyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unsafe handler #{} in `ps ${}`: {}", self.handler, self.scope_var, self.message)
    }
}

impl std::error::Error for SafetyViolation {}

/// Check a FluX query against Definition 3.6.
pub fn check_safety(q: &FluxExpr, dtd: &Dtd) -> Result<(), SafetyViolation> {
    let mut var_elem = HashMap::from([(ROOT_VAR.to_string(), DOC_ELEM.to_string())]);
    check(q, dtd, &mut var_elem)
}

fn check(
    q: &FluxExpr,
    dtd: &Dtd,
    var_elem: &mut HashMap<String, String>,
) -> Result<(), SafetyViolation> {
    let FluxExpr::PS { var: y, handlers, .. } = q else {
        return Ok(()); // simple expressions carry no handlers
    };
    // A scope over an element with no production can never be instantiated
    // on a valid document (the element cannot occur): everything below it is
    // vacuously safe.
    let Some(prod) = var_elem.get(y).and_then(|elem| production_of(dtd, elem)) else {
        return Ok(());
    };
    let prod = Some(prod);

    for (idx, h) in handlers.iter().enumerate() {
        let violation =
            |message: String| SafetyViolation { scope_var: y.clone(), handler: idx, message };
        match h {
            Handler::OnFirst { past, expr } => {
                let s: Vec<String> = match prod {
                    Some(p) => past.resolve(p).into_iter().collect(),
                    None => match past {
                        crate::flux::PastSpec::Set(set) => set.iter().cloned().collect(),
                        crate::flux::PastSpec::All => Vec::new(),
                    },
                };
                // Condition 1, first bullet: every dependency is in S or
                // ordered before some (possible) symbol of S.
                for b in dependencies(y, expr) {
                    if !covered(prod, &s, &b) {
                        return Err(violation(format!(
                            "dependency `{b}` of `{expr}` is neither in past({}) nor ordered before it",
                            s.join(",")
                        )));
                    }
                }
                // Condition 1, second bullet: whole-subtree outputs require
                // $z = $y and S to cover all of symb($y).
                for z in free_output_vars(expr) {
                    if z != *y {
                        return Err(violation(format!(
                            "on-first expression outputs ${z}, but only the scope variable ${y} may be output"
                        )));
                    }
                    if let Some(p) = prod {
                        for b in p.symbols() {
                            if !covered(prod, &s, b) {
                                return Err(violation(format!(
                                    "outputs ${y} but symbol `{b}` is not covered by past({})",
                                    s.join(",")
                                )));
                            }
                        }
                    }
                }
            }
            Handler::On { label, var: x, body } => {
                // A handler whose label cannot occur never fires; vacuously
                // safe.
                let fires = prod.is_none_or(|p| p.has_symbol(label));
                if fires {
                    for alpha in body.maximal_xquery_subexprs() {
                        for b in dependencies(y, alpha) {
                            let ok = match prod {
                                Some(p) => !p.has_symbol(&b) || p.ord(&b, label),
                                None => false,
                            };
                            if !ok {
                                return Err(violation(format!(
                                    "dependency `{b}` of `{alpha}` is not ordered before `{label}`"
                                )));
                            }
                        }
                    }
                    if let FluxExpr::Simple(alpha) = &**body {
                        if alpha.is_simple() {
                            // Definition 3.6, condition 2, second bullet.
                            for u in output_vars(alpha) {
                                if u != *x {
                                    return Err(violation(format!(
                                        "simple handler body outputs ${u}, expected ${x}"
                                    )));
                                }
                            }
                        } else {
                            // Bodies that are XQuery− but not simple are not
                            // produced by the rewrite; for hand-written
                            // plans, free outputs of foreign variables are
                            // conservatively rejected (their buffers may be
                            // incomplete), while loop-bound outputs are
                            // covered by the dependency check above.
                            for u in free_output_vars(alpha) {
                                if u != *x {
                                    return Err(violation(format!(
                                        "handler body outputs free ${u}, expected ${x}"
                                    )));
                                }
                            }
                        }
                    }
                }
                let prev = var_elem.insert(x.clone(), label.clone());
                let res = check(body, dtd, var_elem);
                match prev {
                    Some(p) => {
                        var_elem.insert(x.clone(), p);
                    }
                    None => {
                        var_elem.remove(x);
                    }
                }
                res?;
            }
        }
    }
    Ok(())
}

/// Is dependency `b` covered by past-set `s` under production `prod`?
fn covered(prod: Option<&Production>, s: &[String], b: &str) -> bool {
    let Some(p) = prod else {
        // No schema information: only literal membership counts.
        return s.iter().any(|a| a == b);
    };
    if !p.has_symbol(b) {
        return true; // b can never arrive
    }
    s.iter().any(|a| a == b) || s.iter().any(|a| p.has_symbol(a) && p.ord(b, a))
}

/// Variables `$z` with a free `{$z}` or `{$z/π}` occurrence in `e`.
fn free_output_vars(e: &Expr) -> Vec<String> {
    let mut out = Vec::new();
    fn go(e: &Expr, bound: &mut Vec<String>, out: &mut Vec<String>) {
        match e {
            Expr::OutputVar { var } | Expr::OutputPath { var, .. } => {
                if !bound.iter().any(|b| b == var) && !out.contains(var) {
                    out.push(var.clone());
                }
            }
            Expr::Seq(items) => items.iter().for_each(|i| go(i, bound, out)),
            Expr::If { body, .. } => go(body, bound, out),
            Expr::For { var, body, .. } => {
                bound.push(var.clone());
                go(body, bound, out);
                bound.pop();
            }
            Expr::Empty | Expr::Str(_) => {}
        }
    }
    go(e, &mut Vec::new(), &mut out);
    out
}

/// All `{$u}` occurrences (bound or not) — for the simple-handler check.
fn output_vars(e: &Expr) -> Vec<String> {
    let mut out = Vec::new();
    e.visit(&mut |x| {
        if let Expr::OutputVar { var } = x {
            if !out.contains(var) {
                out.push(var.clone());
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_flux;

    const BIB_WEAK: &str = "<!ELEMENT bib (book)*><!ELEMENT book (title|author)*>\
        <!ELEMENT title (#PCDATA)><!ELEMENT author (#PCDATA)>";
    const BIB_PRICE: &str = "<!ELEMENT bib (book)*><!ELEMENT book ((title|author)*,price)>\
        <!ELEMENT title (#PCDATA)><!ELEMENT author (#PCDATA)><!ELEMENT price (#PCDATA)>";

    #[track_caller]
    fn check_str(flux: &str, dtd: &str) -> Result<(), SafetyViolation> {
        check_safety(&parse_flux(flux).unwrap(), &Dtd::parse(dtd).unwrap())
    }

    #[test]
    fn intro_query_is_safe() {
        // The Section 1 FluX query: the author loop sits under
        // past(title,author), which covers its dependency.
        check_str(
            "<results>{ ps $ROOT: on bib as $bib return \
               { ps $bib: on book as $book return \
                 <result>{ ps $book: on title as $t return {$t}; \
                   on-first past(title,author) return \
                     { for $a in $book/author return {$a} } }</result> } }</results>",
            BIB_WEAK,
        )
        .unwrap();
    }

    #[test]
    fn section_1_unsafe_variant_detected() {
        // The paper's example: replace $book/author by $book/price under
        // <!ELEMENT book ((title|author)*,price)> — the price buffer would
        // still be empty when past(title,author) fires.
        let err = check_str(
            "<results>{ ps $ROOT: on bib as $bib return \
               { ps $bib: on book as $book return \
                 <result>{ ps $book: on title as $t return {$t}; \
                   on-first past(title,author) return \
                     { for $a in $book/price return {$a} } }</result> } }</results>",
            BIB_PRICE,
        )
        .unwrap_err();
        assert!(err.message.contains("price"), "{err}");
        assert_eq!(err.scope_var, "book");
    }

    #[test]
    fn safe_with_price_when_waiting_for_it() {
        check_str(
            "{ ps $ROOT: on bib as $bib return \
               { ps $bib: on book as $book return \
                 { ps $book: on-first past(price) return \
                     { for $a in $book/price return {$a} } } } }",
            BIB_PRICE,
        )
        .unwrap();
    }

    #[test]
    fn on_handler_dependency_must_be_ordered() {
        // Reading $book/title from an `on author` handler body is only safe
        // when Ord(title, author) holds.
        let q = "{ ps $ROOT: on bib as $bib return \
             { ps $bib: on book as $book return \
               { ps $book: on author as $a return \
                  { for $t in $book/title return {$t} } } } }";
        let ordered = "<!ELEMENT bib (book)*><!ELEMENT book (title*,author*)>\
            <!ELEMENT title (#PCDATA)><!ELEMENT author (#PCDATA)>";
        check_str(q, ordered).unwrap();
        let err = check_str(q, BIB_WEAK).unwrap_err();
        assert!(err.message.contains("title"), "{err}");
    }

    #[test]
    fn whole_subtree_output_needs_past_star() {
        let q_ok = "{ ps $ROOT: on bib as $bib return \
            { ps $bib: on book as $b return { ps $b: on-first past(*) return {$b} } } }";
        check_str(q_ok, BIB_WEAK).unwrap();
        let q_bad = "{ ps $ROOT: on bib as $bib return \
            { ps $bib: on book as $b return { ps $b: on-first past(title) return {$b} } } }";
        let err = check_str(q_bad, BIB_WEAK).unwrap_err();
        assert!(err.message.contains("author"), "{err}");
    }

    #[test]
    fn foreign_variable_output_in_on_first_rejected() {
        let q = "{ ps $ROOT: on bib as $bib return \
            { ps $bib: on book as $b return { ps $b: on-first past(*) return {$bib} } } }";
        let err = check_str(q, BIB_WEAK).unwrap_err();
        assert!(err.message.contains("$bib"), "{err}");
    }

    #[test]
    fn simple_on_handler_body_must_output_its_own_variable() {
        let q = "{ ps $ROOT: on bib as $bib return \
            { ps $bib: on book as $b return {$bib} } }";
        let err = check_str(q, BIB_WEAK).unwrap_err();
        assert!(err.message.contains("expected $b"), "{err}");
    }

    #[test]
    fn impossible_labels_are_vacuously_safe() {
        check_str("{ ps $ROOT: on zzz as $z return { for $t in $z/title return {$t} } }", BIB_WEAK)
            .unwrap();
    }

    #[test]
    fn dead_dependencies_are_covered() {
        // `price` cannot occur under the weak DTD's book, so a loop over it
        // inside past(author,title) is trivially safe (it reads nothing).
        check_str(
            "{ ps $ROOT: on bib as $bib return { ps $bib: on book as $b return \
               { ps $b: on-first past(author,title) return \
                 { for $p in $b/price return {$p} } } } }",
            BIB_WEAK,
        )
        .unwrap();
    }
}
