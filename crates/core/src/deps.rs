//! `dependencies($y, α)` and `hsymb(ζ)` (paper, Sections 3.3 and 4.2).

use std::collections::BTreeSet;

use flux_query::{Cond, Expr};

use crate::flux::Handler;

/// The dependencies of expression `α` w.r.t. variable `$y`:
///
/// * the first step `a` of every condition path `$y/a` or `$y/a/π` in α, and
/// * the first step `b` of every for-loop `{for $u in $y/π return Q}` in α.
///
/// Occurrences under a rebinding of `$y` are skipped (the paper assumes
/// uniquely-named variables; honouring scope makes the analysis correct for
/// arbitrary input).
pub fn dependencies(y: &str, alpha: &Expr) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    collect(y, alpha, &mut out);
    out
}

fn collect(y: &str, e: &Expr, out: &mut BTreeSet<String>) {
    match e {
        Expr::Empty | Expr::Str(_) | Expr::OutputVar { .. } => {}
        Expr::OutputPath { .. } => {
            // Output paths are not "condition paths" nor for-loops; in
            // normalized queries they do not occur. (They are handled by
            // free-variable safety instead.)
        }
        Expr::Seq(items) => items.iter().for_each(|i| collect(y, i, out)),
        Expr::If { cond, body } => {
            collect_cond(y, cond, out);
            collect(y, body, out);
        }
        Expr::For { var, in_var, path, pred, body } => {
            if in_var == y {
                out.insert(path.head().to_string());
            }
            if let Some(c) = pred {
                collect_cond(y, c, out);
            }
            if var != y {
                collect(y, body, out);
            }
        }
    }
}

fn collect_cond(y: &str, c: &Cond, out: &mut BTreeSet<String>) {
    c.visit_paths(&mut |p| {
        if p.var == y {
            out.insert(p.path.head().to_string());
        }
    });
}

/// `hsymb(ζ)`: the handler symbols of a handler list — `a` for every
/// `on a` handler and all of S for every `on-first past(S)` handler.
///
/// `past(*)` never occurs in handler lists built by the rewrite algorithm
/// (it only appears as the sole handler of a buffering scope), so it
/// contributes nothing here; the safety checker resolves it separately.
pub fn hsymb(handlers: &[Handler]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for h in handlers {
        match h {
            Handler::On { label, .. } => {
                out.insert(label.clone());
            }
            Handler::OnFirst { past, .. } => match past {
                crate::flux::PastSpec::Set(s) => out.extend(s.iter().cloned()),
                crate::flux::PastSpec::All => {}
            },
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flux::{FluxExpr, PastSpec};
    use flux_query::parse_xquery;

    fn deps(y: &str, src: &str) -> Vec<String> {
        dependencies(y, &parse_xquery(src).unwrap()).into_iter().collect()
    }

    #[test]
    fn for_loop_heads() {
        assert_eq!(deps("b", "{ for $a in $b/author return {$a} }"), ["author"]);
        assert_eq!(deps("b", "{ for $a in $b/author/name return {$a} }"), ["author"]);
        assert_eq!(deps("x", "{ for $a in $b/author return {$a} }"), Vec::<String>::new());
    }

    #[test]
    fn condition_paths() {
        assert_eq!(
            deps("b", "{ if $b/publisher = \"AW\" and $b/year > 1991 then <x> }"),
            ["publisher", "year"]
        );
        assert_eq!(deps("b", "{ if $other/k = 1 then <x> }"), Vec::<String>::new());
        // Multi-step condition paths contribute their first step.
        assert_eq!(deps("p", "{ if $p/profile/profile_income > 5000 then <x> }"), ["profile"]);
    }

    #[test]
    fn where_clauses_count() {
        assert_eq!(
            deps("bib", "{ for $a in $bib/article where $a/author = $bib/editor return {$a} }"),
            ["article", "editor"]
        );
    }

    #[test]
    fn rebinding_stops_collection() {
        // Inner loop rebinds $b, so $b/inner refers to a different variable.
        assert_eq!(
            deps("b", "{ for $b in $x/c return { for $q in $b/inner return {$q} } }"),
            Vec::<String>::new()
        );
    }

    #[test]
    fn example_4_4_dependency() {
        // α2 of Example 4.4: deps($b, for $t in $b/title return (for $a in
        // $b/author …)) = {title, author}.
        assert_eq!(
            deps(
                "b",
                "{ for $t in $b/title return { for $a in $b/author return <result> {$t} {$a} </result> } }"
            ),
            ["author", "title"]
        );
    }

    #[test]
    fn hsymb_accumulates() {
        let handlers = vec![
            Handler::OnFirst { past: PastSpec::set(["x", "y"]), expr: Expr::Empty },
            Handler::On {
                label: "bib".into(),
                var: "b".into(),
                body: Box::new(FluxExpr::Simple(Expr::Empty)),
            },
            Handler::OnFirst { past: PastSpec::empty(), expr: Expr::Empty },
        ];
        assert_eq!(hsymb(&handlers).into_iter().collect::<Vec<_>>(), ["bib", "x", "y"]);
    }
}
