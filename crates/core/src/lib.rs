//! # flux-core — the FluX language and the schema-based scheduler
//!
//! This crate is the paper's primary contribution:
//!
//! * [`flux::FluxExpr`] — the FluX language (Definition 3.3): XQuery−
//!   extended with `process-stream` expressions whose handlers (`on a as $x`
//!   and `on-first past(S)`) drive event-based evaluation.
//! * [`deps::dependencies`] — the dependency analysis feeding the scheduler.
//! * [`safety::check_safety`] — safe FluX queries (Definition 3.6): XQuery−
//!   subexpressions never read paths that may still arrive on the stream.
//! * [`rewrite`] — the scheduling algorithm of Figure 2 (Theorem 4.3):
//!   normalized XQuery− + DTD order constraints → equivalent, safe FluX
//!   query with minimized buffering.
//! * [`interp`] — the reference tree-semantics interpreter of Section 3.2,
//!   used to validate the streaming engine against the language definition.
//! * [`opt`] — the Section 7 algebraic optimizations: cardinality-based
//!   for-loop merging, singleton descent sharing, and if-hoisting.
//!
//! ```
//! use flux_core::rewrite_query;
//! use flux_dtd::Dtd;
//! use flux_query::parse_xquery;
//!
//! let dtd = Dtd::parse(
//!     "<!ELEMENT bib (book)*>\
//!      <!ELEMENT book (title,(author+|editor+),publisher,price)>",
//! ).unwrap();
//! let q = parse_xquery(
//!     "<results>{ for $b in $ROOT/bib/book return \
//!        <result> {$b/title} {$b/author} </result> }</results>",
//! ).unwrap();
//! let flux = rewrite_query(&q, &dtd).unwrap();
//! // With the strong DTD both title and author stream through `on`
//! // handlers — no buffering handlers appear in the plan:
//! assert!(flux.to_string().contains("on title as"));
//! assert!(flux.to_string().contains("on author as"));
//! ```

pub mod deps;
pub mod flux;
pub mod interp;
pub mod opt;
pub mod parser;
pub mod print;
pub mod rewrite;
pub mod safety;

pub use deps::{dependencies, hsymb};
pub use flux::{production_of, FluxExpr, Handler, PastSpec, DOC_ELEM};
pub use interp::{interp_flux, InterpError};
pub use parser::parse_flux;
pub use rewrite::{rewrite_query, rewrite_query_with, RewriteError, RewriteOptions};
pub use safety::{check_safety, SafetyViolation};
