//! The adapted XMark DTD (attributes converted to subelements, Appendix A).
//!
//! The conversions follow the paper's `{element}_{attribute}` naming:
//! `person id` → `person_id`, `open_auction id` → `open_auction_id`,
//! `buyer person` → `buyer_person`, `profile income` → `profile_income`.
//! Appendix A's Q20 additionally reads `person_income` as a direct child of
//! `person` (while Q11 reads `profile/profile_income`); the generator emits
//! both, mirroring each other, so both queries run verbatim (DESIGN.md §5.7).
//!
//! Rich-text content (descriptions, annotations, mail bodies) is flattened
//! to `#PCDATA`, matching the paper's adaptation that replaced `text()`
//! steps by whole-element output.

/// The adapted XMark DTD.
pub const XMARK_DTD: &str = r#"
<!ELEMENT site (regions, categories, catgraph, people, open_auctions, closed_auctions)>

<!ELEMENT regions (africa, asia, australia, europe, namerica, samerica)>
<!ELEMENT africa (item)*>
<!ELEMENT asia (item)*>
<!ELEMENT australia (item)*>
<!ELEMENT europe (item)*>
<!ELEMENT namerica (item)*>
<!ELEMENT samerica (item)*>

<!ELEMENT item (item_id, location, quantity, name, payment, description, shipping, incategory*, mailbox?)>
<!ELEMENT item_id (#PCDATA)>
<!ELEMENT location (#PCDATA)>
<!ELEMENT quantity (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT payment (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT shipping (#PCDATA)>
<!ELEMENT incategory (#PCDATA)>
<!ELEMENT mailbox (mail)*>
<!ELEMENT mail (from, to, date, text)>
<!ELEMENT from (#PCDATA)>
<!ELEMENT to (#PCDATA)>
<!ELEMENT date (#PCDATA)>
<!ELEMENT text (#PCDATA)>

<!ELEMENT categories (category)*>
<!ELEMENT category (category_id, name, description)>
<!ELEMENT category_id (#PCDATA)>

<!ELEMENT catgraph (edge)*>
<!ELEMENT edge (edge_from, edge_to)>
<!ELEMENT edge_from (#PCDATA)>
<!ELEMENT edge_to (#PCDATA)>

<!ELEMENT people (person)*>
<!ELEMENT person (person_id, name, emailaddress, phone?, address?, homepage?, creditcard?, profile?, person_income?, watches?)>
<!ELEMENT person_id (#PCDATA)>
<!ELEMENT emailaddress (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
<!ELEMENT address (street, city, country, zipcode)>
<!ELEMENT street (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT country (#PCDATA)>
<!ELEMENT zipcode (#PCDATA)>
<!ELEMENT homepage (#PCDATA)>
<!ELEMENT creditcard (#PCDATA)>
<!ELEMENT profile (profile_income?, interest*, education?, gender?, business, age?)>
<!ELEMENT profile_income (#PCDATA)>
<!ELEMENT interest (#PCDATA)>
<!ELEMENT education (#PCDATA)>
<!ELEMENT gender (#PCDATA)>
<!ELEMENT business (#PCDATA)>
<!ELEMENT age (#PCDATA)>
<!ELEMENT person_income (#PCDATA)>
<!ELEMENT watches (watch)*>
<!ELEMENT watch (#PCDATA)>

<!ELEMENT open_auctions (open_auction)*>
<!ELEMENT open_auction (open_auction_id, initial, reserve?, bidder*, current, privacy?, itemref, seller, annotation, quantity, type, interval)>
<!ELEMENT open_auction_id (#PCDATA)>
<!ELEMENT initial (#PCDATA)>
<!ELEMENT reserve (#PCDATA)>
<!ELEMENT bidder (date, time, personref, increase)>
<!ELEMENT time (#PCDATA)>
<!ELEMENT personref (#PCDATA)>
<!ELEMENT increase (#PCDATA)>
<!ELEMENT current (#PCDATA)>
<!ELEMENT privacy (#PCDATA)>
<!ELEMENT itemref (#PCDATA)>
<!ELEMENT seller (#PCDATA)>
<!ELEMENT annotation (#PCDATA)>
<!ELEMENT type (#PCDATA)>
<!ELEMENT interval (#PCDATA)>

<!ELEMENT closed_auctions (closed_auction)*>
<!ELEMENT closed_auction (seller, buyer, itemref, price, date, quantity, type, annotation?)>
<!ELEMENT buyer (buyer_person)>
<!ELEMENT buyer_person (#PCDATA)>
<!ELEMENT price (#PCDATA)>
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use flux_dtd::Dtd;

    #[test]
    fn dtd_parses_with_site_root() {
        let dtd = Dtd::parse(XMARK_DTD).unwrap();
        assert_eq!(dtd.root(), "site");
    }

    #[test]
    fn order_constraints_the_paper_relies_on() {
        let dtd = Dtd::parse(XMARK_DTD).unwrap();
        // Q1 streams: the id precedes the name inside person.
        assert!(dtd.ord("person", "person_id", "name"));
        // Q13 streams: name precedes description inside item.
        assert!(dtd.ord("item", "name", "description"));
        // Q8/Q11: both join sides live under site, people first.
        assert!(dtd.ord("site", "people", "closed_auctions"));
        assert!(dtd.ord("site", "people", "open_auctions"));
        assert!(dtd.ord("site", "open_auctions", "closed_auctions"));
        // Persons repeat: no Ord among them.
        assert!(!dtd.ord("people", "person", "person"));
        // Singletons used by descent sharing:
        assert!(dtd.production("site").unwrap().card_le_1("people"));
        assert!(dtd.production("site").unwrap().card_le_1("closed_auctions"));
        assert!(dtd.doc_production().card_le_1("site"));
    }
}
