//! The five adapted XMark queries, verbatim from Appendix A.
//!
//! The only notational adjustment is wrapping Q20's bare `return $p` in the
//! braces our XQuery− parser requires for variable output (`return {$p}`);
//! everything else — paths, conditions, element constructors — is as
//! printed in the paper.

/// A named benchmark query.
#[derive(Debug, Clone, Copy)]
pub struct PaperQuery {
    /// Query name as used in Figure 4 ("Q1", …).
    pub name: &'static str,
    /// The XQuery− source text.
    pub source: &'static str,
    /// Does this query evaluate a join (the paper's naive nested loops)?
    pub is_join: bool,
}

/// XMark Q1: a single person looked up by id; streams with zero buffering.
pub const Q1: &str = "<query1>\
{ for $b in /site/people/person \
  where $b/person_id = 'person0' \
  return \
  <result> {$b/name} </result> }\
</query1>";

/// XMark Q8: items bought per person — a person ⋈ closed_auction join.
pub const Q8: &str = "<query8>\
{ for $p in /site/people/person return \
  <item>\
  <person> {$p/name} </person>\
  <items_bought>\
  { for $t in /site/closed_auctions/closed_auction \
    where $t/buyer/buyer_person = $p/person_id \
    return <result> {$t} </result> }\
  </items_bought>\
  </item> }\
</query8>";

/// XMark Q11: auctions a person could afford — person ⋈ open_auction with a
/// scaled comparison (`income > 5000 · initial`).
pub const Q11: &str = "<query11>\
{ for $p in /site/people/person return \
  <items>\
  {$p/name}\
  { for $o in /site/open_auctions/open_auction \
    where $p/profile/profile_income > (5000 * $o/initial) \
    return {$o/open_auction_id} }\
  </items> }\
</query11>";

/// XMark Q13: names and descriptions of Australian items; streams.
pub const Q13: &str = "<query13>\
{ for $i in /site/regions/australia/item return \
  <item>\
  <name> {$i/name} </name>\
  <desc> {$i/description} </desc>\
  </item> }\
</query13>";

/// XMark Q20 (the paper's variant): persons whose income is not available.
pub const Q20: &str = "<query20>\
{ for $p in /site/people/person \
  where empty($p/person_income) \
  return {$p} }\
</query20>";

/// All five benchmark queries in Figure 4 order.
pub const PAPER_QUERIES: &[PaperQuery] = &[
    PaperQuery { name: "Q1", source: Q1, is_join: false },
    PaperQuery { name: "Q8", source: Q8, is_join: true },
    PaperQuery { name: "Q11", source: Q11, is_join: true },
    PaperQuery { name: "Q13", source: Q13, is_join: false },
    PaperQuery { name: "Q20", source: Q20, is_join: false },
];

#[cfg(test)]
mod tests {
    use super::*;
    use flux_query::parse_xquery;

    #[test]
    fn all_queries_parse() {
        for q in PAPER_QUERIES {
            let e = parse_xquery(q.source).unwrap_or_else(|err| panic!("{}: {err}", q.name));
            assert!(
                flux_query::free_vars(&e).iter().all(|v| v == "ROOT"),
                "{} must be a closed query",
                q.name
            );
        }
    }

    #[test]
    fn join_flags_match_structure() {
        for q in PAPER_QUERIES {
            let has_join = q.source.contains("$t/buyer") || q.source.contains("5000");
            assert_eq!(q.is_join, has_join, "{}", q.name);
        }
    }
}
