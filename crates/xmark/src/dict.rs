//! Word and name dictionaries for synthetic text.
//!
//! XMark fills text content with shuffled Shakespeare; we use a compact
//! word list, which gives the same *shape* (element text of configurable
//! word counts) without shipping a corpus. All words are XML-clean ASCII so
//! generated documents need no escaping.

use rand::Rng;

/// Common English filler words.
pub const WORDS: &[&str] = &[
    "the",
    "quick",
    "brown",
    "fox",
    "jumps",
    "over",
    "lazy",
    "dog",
    "pack",
    "my",
    "box",
    "with",
    "five",
    "dozen",
    "liquor",
    "jugs",
    "how",
    "vexingly",
    "daft",
    "zebras",
    "jump",
    "amazingly",
    "few",
    "discotheques",
    "provide",
    "jukeboxes",
    "auction",
    "lot",
    "rare",
    "vintage",
    "mint",
    "condition",
    "original",
    "packaging",
    "shipping",
    "included",
    "reserve",
    "price",
    "bidder",
    "payment",
    "accepted",
    "credit",
    "card",
    "money",
    "order",
    "cash",
    "collection",
    "antique",
    "estate",
    "sale",
    "item",
    "excellent",
    "quality",
    "slight",
    "wear",
    "corner",
    "edge",
    "signed",
    "first",
    "edition",
    "limited",
    "series",
    "collector",
    "grade",
    "professional",
    "appraisal",
    "certificate",
    "authenticity",
    "guaranteed",
    "returns",
    "within",
    "days",
    "buyer",
    "pays",
    "insurance",
    "optional",
    "international",
    "welcome",
    "contact",
    "seller",
    "questions",
    "photos",
    "available",
    "request",
    "no",
    "low",
    "offers",
    "serious",
    "only",
    "fast",
    "dispatch",
    "tracked",
    "delivery",
    "secure",
    "wrapped",
    "bubble",
    "sturdy",
    "carton",
];

/// Given names for persons.
pub const FIRST_NAMES: &[&str] = &[
    "Ada",
    "Alan",
    "Barbara",
    "Claude",
    "Donald",
    "Edsger",
    "Frances",
    "Grace",
    "Hedy",
    "Ivan",
    "John",
    "Kathleen",
    "Leslie",
    "Margaret",
    "Niklaus",
    "Ole",
    "Peter",
    "Radia",
    "Seymour",
    "Tim",
    "Ursula",
    "Vint",
    "Whitfield",
    "Xiaoyun",
    "Yukihiro",
    "Zhenyi",
];

/// Family names for persons.
pub const LAST_NAMES: &[&str] = &[
    "Lovelace",
    "Turing",
    "Liskov",
    "Shannon",
    "Knuth",
    "Dijkstra",
    "Allen",
    "Hopper",
    "Lamarr",
    "Sutherland",
    "Backus",
    "Booth",
    "Lamport",
    "Hamilton",
    "Wirth",
    "Dahl",
    "Naur",
    "Perlman",
    "Cray",
    "Berners",
    "Franklin",
    "Cerf",
    "Diffie",
    "Wang",
    "Matsumoto",
    "Tu",
];

/// Countries for addresses.
pub const COUNTRIES: &[&str] = &[
    "Austria",
    "Germany",
    "France",
    "Italy",
    "Spain",
    "Norway",
    "Japan",
    "Brazil",
    "Canada",
    "Australia",
    "Kenya",
    "India",
];

/// Cities for addresses.
pub const CITIES: &[&str] = &[
    "Vienna", "Berlin", "Paris", "Rome", "Madrid", "Oslo", "Tokyo", "Recife", "Toronto", "Sydney",
    "Nairobi", "Mumbai",
];

/// Interest/category topics.
pub const TOPICS: &[&str] = &[
    "stamps",
    "coins",
    "furniture",
    "paintings",
    "books",
    "maps",
    "clocks",
    "cameras",
    "toys",
    "jewelry",
    "records",
    "posters",
    "instruments",
    "ceramics",
    "textiles",
    "tools",
];

/// Append `n` random words to `out`, space separated.
pub fn push_words<R: Rng>(rng: &mut R, n: usize, out: &mut String) {
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(WORDS[rng.random_range(0..WORDS.len())]);
    }
}

/// A random full name.
pub fn full_name<R: Rng>(rng: &mut R) -> String {
    format!(
        "{} {}",
        FIRST_NAMES[rng.random_range(0..FIRST_NAMES.len())],
        LAST_NAMES[rng.random_range(0..LAST_NAMES.len())]
    )
}

/// A random element of a slice.
pub fn pick<'a, R: Rng>(rng: &mut R, items: &'a [&'a str]) -> &'a str {
    items[rng.random_range(0..items.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn words_are_xml_clean() {
        for w in WORDS
            .iter()
            .chain(FIRST_NAMES)
            .chain(LAST_NAMES)
            .chain(COUNTRIES)
            .chain(CITIES)
            .chain(TOPICS)
        {
            assert!(w.chars().all(|c| c.is_ascii_alphanumeric()), "{w}");
        }
    }

    #[test]
    fn push_words_count() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut s = String::new();
        push_words(&mut rng, 5, &mut s);
        assert_eq!(s.split(' ').count(), 5);
    }

    #[test]
    fn deterministic_with_seed() {
        let mut a = rand::rngs::StdRng::seed_from_u64(42);
        let mut b = rand::rngs::StdRng::seed_from_u64(42);
        assert_eq!(full_name(&mut a), full_name(&mut b));
    }
}
