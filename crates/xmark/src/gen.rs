//! Deterministic, size-targeted XMark-like document generator.
//!
//! Faithful to the paper's setup rather than to xmlgen's bytes: the same
//! element hierarchy and reference structure (persons referenced by
//! `buyer_person`/`personref`, items by `itemref`), attributes already
//! converted to subelements, and entity populations that scale linearly with
//! the requested document size — so per-query buffer sizes and join costs
//! grow with document size exactly as in Figure 4. Text content is seeded
//! synthetic filler (see [`crate::dict`]).
//!
//! The generator works by byte budget: each section of `site` receives a
//! fixed share of the target size and emits entities until its share is
//! spent, which keeps the overall size within a few percent of the target
//! for any target ≥ ~64 KiB.

use std::io::{self, Write};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dict::{full_name, pick, push_words, CITIES, COUNTRIES, FIRST_NAMES, TOPICS};

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct XmarkConfig {
    /// Approximate size of the generated document in bytes.
    pub target_bytes: usize,
    /// RNG seed; equal seeds give byte-identical documents.
    pub seed: u64,
    /// Probability that a person has an income (drives Q11/Q20
    /// selectivity); the paper's data had roughly half.
    pub income_probability: f64,
}

impl XmarkConfig {
    /// Config for a target size in bytes.
    pub fn new(target_bytes: usize) -> XmarkConfig {
        XmarkConfig { target_bytes, seed: 0xF1A5C0DE, income_probability: 0.5 }
    }

    /// Config for a target size in mebibytes.
    pub fn megabytes(mb: usize) -> XmarkConfig {
        Self::new(mb << 20)
    }
}

/// What the generator produced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XmarkSummary {
    /// Exact bytes written.
    pub bytes: u64,
    /// Persons in `people`.
    pub persons: usize,
    /// Items across all regions.
    pub items: usize,
    /// Items in `australia` (Q13's region).
    pub australia_items: usize,
    /// Open auctions.
    pub open_auctions: usize,
    /// Closed auctions.
    pub closed_auctions: usize,
    /// Categories.
    pub categories: usize,
}

/// Section shares of the byte budget (roughly XMark's proportions).
const SHARE_REGIONS: f64 = 0.30;
const SHARE_CATEGORIES: f64 = 0.02;
const SHARE_CATGRAPH: f64 = 0.01;
const SHARE_PEOPLE: f64 = 0.27;
const SHARE_OPEN: f64 = 0.25;
const SHARE_CLOSED: f64 = 0.15;

/// Region shares within the regions budget (xmlgen's continental split).
const REGION_SHARES: &[(&str, f64)] = &[
    ("africa", 0.05),
    ("asia", 0.10),
    ("australia", 0.10),
    ("europe", 0.30),
    ("namerica", 0.40),
    ("samerica", 0.05),
];

struct Counting<W: Write> {
    inner: W,
    bytes: u64,
}

impl<W: Write> Counting<W> {
    fn emit(&mut self, s: &str) -> io::Result<()> {
        self.inner.write_all(s.as_bytes())?;
        self.bytes += s.len() as u64;
        Ok(())
    }
}

/// Generate a document to any sink; returns entity counts and exact size.
pub fn generate<W: Write>(cfg: &XmarkConfig, out: W) -> io::Result<XmarkSummary> {
    let mut w = Counting { inner: out, bytes: 0 };
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut summary = XmarkSummary::default();
    let mut buf = String::with_capacity(4096);
    let target = cfg.target_bytes as f64;

    w.emit("<site>")?;

    // Regions.
    w.emit("<regions>")?;
    let regions_budget = target * SHARE_REGIONS;
    let mut item_id = 0usize;
    for (region, share) in REGION_SHARES {
        w.emit(&format!("<{region}>"))?;
        let budget = w.bytes + (regions_budget * share) as u64;
        let mut emitted = 0usize;
        while w.bytes < budget
            || (*region == "australia" && emitted == 0 && cfg.target_bytes > 4096)
        {
            buf.clear();
            gen_item(&mut rng, item_id, &mut buf);
            w.emit(&buf)?;
            item_id += 1;
            emitted += 1;
            summary.items += 1;
            if *region == "australia" {
                summary.australia_items += 1;
            }
        }
        w.emit(&format!("</{region}>"))?;
    }
    w.emit("</regions>")?;
    let n_items = item_id.max(1);

    // Categories.
    w.emit("<categories>")?;
    let budget = w.bytes + (target * SHARE_CATEGORIES) as u64;
    let mut cat_id = 0usize;
    while w.bytes < budget || cat_id == 0 {
        buf.clear();
        gen_category(&mut rng, cat_id, &mut buf);
        w.emit(&buf)?;
        cat_id += 1;
        summary.categories += 1;
    }
    w.emit("</categories>")?;

    // Category graph.
    w.emit("<catgraph>")?;
    let budget = w.bytes + (target * SHARE_CATGRAPH) as u64;
    while w.bytes < budget {
        buf.clear();
        let from = rng.random_range(0..cat_id);
        let to = rng.random_range(0..cat_id);
        buf.push_str("<edge><edge_from>category");
        buf.push_str(&from.to_string());
        buf.push_str("</edge_from><edge_to>category");
        buf.push_str(&to.to_string());
        buf.push_str("</edge_to></edge>");
        w.emit(&buf)?;
    }
    w.emit("</catgraph>")?;

    // People. person0 always exists (Q1's lookup target).
    w.emit("<people>")?;
    let budget = w.bytes + (target * SHARE_PEOPLE) as u64;
    let mut person_id = 0usize;
    while w.bytes < budget || person_id == 0 {
        buf.clear();
        gen_person(&mut rng, person_id, cfg.income_probability, &mut buf);
        w.emit(&buf)?;
        person_id += 1;
        summary.persons += 1;
    }
    w.emit("</people>")?;
    let n_persons = person_id;

    // Open auctions.
    w.emit("<open_auctions>")?;
    let budget = w.bytes + (target * SHARE_OPEN) as u64;
    let mut oa_id = 0usize;
    while w.bytes < budget || oa_id == 0 {
        buf.clear();
        gen_open_auction(&mut rng, oa_id, n_persons, n_items, &mut buf);
        w.emit(&buf)?;
        oa_id += 1;
        summary.open_auctions += 1;
    }
    w.emit("</open_auctions>")?;

    // Closed auctions.
    w.emit("<closed_auctions>")?;
    let budget = w.bytes + (target * SHARE_CLOSED) as u64;
    let mut ca = 0usize;
    while w.bytes < budget || ca == 0 {
        buf.clear();
        gen_closed_auction(&mut rng, n_persons, n_items, &mut buf);
        w.emit(&buf)?;
        ca += 1;
        summary.closed_auctions += 1;
    }
    w.emit("</closed_auctions>")?;

    w.emit("</site>")?;
    w.inner.flush()?;
    summary.bytes = w.bytes;
    Ok(summary)
}

/// Generate into a string (tests and small benchmarks).
pub fn generate_string(cfg: &XmarkConfig) -> (String, XmarkSummary) {
    let mut out = Vec::with_capacity(cfg.target_bytes + cfg.target_bytes / 8);
    let summary = generate(cfg, &mut out).expect("writing to a Vec cannot fail");
    (String::from_utf8(out).expect("generator emits UTF-8"), summary)
}

fn tag(buf: &mut String, name: &str, value: &str) {
    buf.push('<');
    buf.push_str(name);
    buf.push('>');
    buf.push_str(value);
    buf.push_str("</");
    buf.push_str(name);
    buf.push('>');
}

fn tag_words(rng: &mut StdRng, buf: &mut String, name: &str, lo: usize, hi: usize) {
    buf.push('<');
    buf.push_str(name);
    buf.push('>');
    let n = rng.random_range(lo..=hi);
    push_words(rng, n, buf);
    buf.push_str("</");
    buf.push_str(name);
    buf.push('>');
}

fn gen_item(rng: &mut StdRng, id: usize, buf: &mut String) {
    buf.push_str("<item>");
    tag(buf, "item_id", &format!("item{id}"));
    tag(buf, "location", pick(rng, COUNTRIES));
    tag(buf, "quantity", &rng.random_range(1..=10u32).to_string());
    tag_words(rng, buf, "name", 2, 4);
    tag(buf, "payment", if rng.random_bool(0.5) { "Creditcard" } else { "Money order" });
    tag_words(rng, buf, "description", 25, 60);
    tag_words(rng, buf, "shipping", 4, 10);
    for _ in 0..rng.random_range(1..=3) {
        tag(buf, "incategory", &format!("category{}", rng.random_range(0..64)));
    }
    if rng.random_bool(0.7) {
        buf.push_str("<mailbox>");
        for _ in 0..rng.random_range(0..=2) {
            buf.push_str("<mail>");
            tag(buf, "from", &full_name(rng));
            tag(buf, "to", &full_name(rng));
            tag(buf, "date", &gen_date(rng));
            tag_words(rng, buf, "text", 30, 80);
            buf.push_str("</mail>");
        }
        buf.push_str("</mailbox>");
    }
    buf.push_str("</item>");
}

fn gen_category(rng: &mut StdRng, id: usize, buf: &mut String) {
    buf.push_str("<category>");
    tag(buf, "category_id", &format!("category{id}"));
    tag(buf, "name", pick(rng, TOPICS));
    tag_words(rng, buf, "description", 10, 30);
    buf.push_str("</category>");
}

fn gen_person(rng: &mut StdRng, id: usize, income_p: f64, buf: &mut String) {
    buf.push_str("<person>");
    tag(buf, "person_id", &format!("person{id}"));
    let name = full_name(rng);
    tag(buf, "name", &name);
    tag(
        buf,
        "emailaddress",
        &format!("mailto:{}@example.com", name.to_lowercase().replace(' ', ".")),
    );
    if rng.random_bool(0.5) {
        tag(
            buf,
            "phone",
            &format!(
                "+{} ({}) {}",
                rng.random_range(1..99),
                rng.random_range(10..999),
                rng.random_range(10000..9999999)
            ),
        );
    }
    if rng.random_bool(0.6) {
        buf.push_str("<address>");
        tag(buf, "street", &format!("{} {} St", rng.random_range(1..99), pick(rng, FIRST_NAMES)));
        tag(buf, "city", pick(rng, CITIES));
        tag(buf, "country", pick(rng, COUNTRIES));
        tag(buf, "zipcode", &rng.random_range(1000..99999u32).to_string());
        buf.push_str("</address>");
    }
    if rng.random_bool(0.5) {
        tag(buf, "homepage", &format!("http://example.com/~person{id}"));
    }
    if rng.random_bool(0.5) {
        tag(
            buf,
            "creditcard",
            &format!(
                "{} {} {} {}",
                rng.random_range(1000..9999),
                rng.random_range(1000..9999),
                rng.random_range(1000..9999),
                rng.random_range(1000..9999)
            ),
        );
    }
    let income: Option<u32> = rng.random_bool(income_p).then(|| rng.random_range(9000..90000));
    if rng.random_bool(0.75) {
        buf.push_str("<profile>");
        if let Some(inc) = income {
            tag(buf, "profile_income", &inc.to_string());
        }
        for _ in 0..rng.random_range(0..=3) {
            tag(buf, "interest", pick(rng, TOPICS));
        }
        if rng.random_bool(0.5) {
            tag(buf, "education", if rng.random_bool(0.5) { "Graduate School" } else { "College" });
        }
        if rng.random_bool(0.5) {
            tag(buf, "gender", if rng.random_bool(0.5) { "male" } else { "female" });
        }
        tag(buf, "business", if rng.random_bool(0.3) { "Yes" } else { "No" });
        if rng.random_bool(0.5) {
            tag(buf, "age", &rng.random_range(18..80u32).to_string());
        }
        buf.push_str("</profile>");
    }
    if let Some(inc) = income {
        // The Appendix-A Q20 variant reads person_income directly under
        // person; it mirrors the profile income (DESIGN.md §5.7).
        tag(buf, "person_income", &inc.to_string());
    }
    if rng.random_bool(0.5) {
        buf.push_str("<watches>");
        for _ in 0..rng.random_range(0..=4) {
            tag(buf, "watch", &format!("open_auction{}", rng.random_range(0..512)));
        }
        buf.push_str("</watches>");
    }
    buf.push_str("</person>");
}

fn gen_open_auction(
    rng: &mut StdRng,
    id: usize,
    n_persons: usize,
    n_items: usize,
    buf: &mut String,
) {
    buf.push_str("<open_auction>");
    tag(buf, "open_auction_id", &format!("open_auction{id}"));
    let initial = rng.random_range(0.5_f64..100.0);
    tag(buf, "initial", &format!("{initial:.2}"));
    if rng.random_bool(0.4) {
        tag(buf, "reserve", &format!("{:.2}", initial * rng.random_range(1.5..4.0)));
    }
    let mut current = initial;
    for _ in 0..rng.random_range(0..=5) {
        buf.push_str("<bidder>");
        tag(buf, "date", &gen_date(rng));
        tag(
            buf,
            "time",
            &format!(
                "{:02}:{:02}:{:02}",
                rng.random_range(0..24),
                rng.random_range(0..60),
                rng.random_range(0..60)
            ),
        );
        tag(buf, "personref", &format!("person{}", rng.random_range(0..n_persons)));
        let inc = rng.random_range(1.5_f64..30.0);
        tag(buf, "increase", &format!("{inc:.2}"));
        current += inc;
        buf.push_str("</bidder>");
    }
    tag(buf, "current", &format!("{current:.2}"));
    if rng.random_bool(0.3) {
        tag(buf, "privacy", "Yes");
    }
    tag(buf, "itemref", &format!("item{}", rng.random_range(0..n_items)));
    tag(buf, "seller", &format!("person{}", rng.random_range(0..n_persons)));
    tag_words(rng, buf, "annotation", 15, 35);
    tag(buf, "quantity", &rng.random_range(1..=10u32).to_string());
    tag(buf, "type", if rng.random_bool(0.5) { "Regular" } else { "Featured" });
    tag(buf, "interval", &format!("{} days", rng.random_range(1..30)));
    buf.push_str("</open_auction>");
}

fn gen_closed_auction(rng: &mut StdRng, n_persons: usize, n_items: usize, buf: &mut String) {
    buf.push_str("<closed_auction>");
    tag(buf, "seller", &format!("person{}", rng.random_range(0..n_persons)));
    buf.push_str("<buyer>");
    tag(buf, "buyer_person", &format!("person{}", rng.random_range(0..n_persons)));
    buf.push_str("</buyer>");
    tag(buf, "itemref", &format!("item{}", rng.random_range(0..n_items)));
    tag(buf, "price", &format!("{:.2}", rng.random_range(5.0_f64..500.0)));
    tag(buf, "date", &gen_date(rng));
    tag(buf, "quantity", &rng.random_range(1..=10u32).to_string());
    tag(buf, "type", if rng.random_bool(0.5) { "Regular" } else { "Featured" });
    if rng.random_bool(0.8) {
        tag_words(rng, buf, "annotation", 15, 35);
    }
    buf.push_str("</closed_auction>");
}

fn gen_date(rng: &mut StdRng) -> String {
    format!(
        "{:02}/{:02}/{}",
        rng.random_range(1..=12),
        rng.random_range(1..=28),
        rng.random_range(1998..2004)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_dtd::{validate_str, Dtd};

    #[test]
    fn deterministic() {
        let cfg = XmarkConfig::new(64 << 10);
        let (a, sa) = generate_string(&cfg);
        let (b, sb) = generate_string(&cfg);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        let (c, _) = generate_string(&XmarkConfig { seed: 99, ..cfg });
        assert_ne!(a, c, "different seeds give different documents");
    }

    #[test]
    fn size_close_to_target() {
        for kb in [64, 256, 1024] {
            let cfg = XmarkConfig::new(kb << 10);
            let (s, summary) = generate_string(&cfg);
            assert_eq!(s.len() as u64, summary.bytes);
            let ratio = s.len() as f64 / (kb << 10) as f64;
            assert!((0.9..1.15).contains(&ratio), "{kb}KiB target, got ratio {ratio}");
        }
    }

    #[test]
    fn validates_against_the_adapted_dtd() {
        let dtd = Dtd::parse(crate::XMARK_DTD).unwrap();
        let (doc, _) = generate_string(&XmarkConfig::new(128 << 10));
        validate_str(&dtd, &doc).unwrap();
    }

    #[test]
    fn entity_counts_scale_linearly() {
        let (_, small) = generate_string(&XmarkConfig::new(128 << 10));
        let (_, big) = generate_string(&XmarkConfig::new(512 << 10));
        let ratio = big.persons as f64 / small.persons as f64;
        assert!((3.0..5.5).contains(&ratio), "persons {} vs {}", small.persons, big.persons);
        assert!(big.closed_auctions > 2 * small.closed_auctions);
    }

    #[test]
    fn person0_exists_and_structure_is_sound() {
        let (doc, summary) = generate_string(&XmarkConfig::new(64 << 10));
        assert!(doc.contains("<person_id>person0</person_id>"));
        assert!(summary.persons > 0 && summary.closed_auctions > 0);
        assert!(summary.australia_items > 0, "Q13 needs australian items");
        assert!(doc.starts_with("<site><regions>"));
        assert!(doc.ends_with("</closed_auctions></site>"));
    }

    #[test]
    fn tiny_targets_still_produce_valid_documents() {
        let dtd = Dtd::parse(crate::XMARK_DTD).unwrap();
        let (doc, _) = generate_string(&XmarkConfig::new(1024));
        validate_str(&dtd, &doc).unwrap();
    }
}
