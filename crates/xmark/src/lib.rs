//! # flux-xmark — the XMark auction benchmark substrate (paper, Section 6)
//!
//! The paper's experiments run adapted XMark queries over documents from the
//! XMark `xmlgen` generator (V0.96), with "attributes … converted into
//! subelements of their parent element" by the XSAX layer and the DTD
//! "adjusted accordingly" (Appendix A). This crate rebuilds that substrate:
//!
//! * [`gen`] — a deterministic, size-targeted generator of XMark-like
//!   auction sites (same element hierarchy, synthetic text, seeded RNG,
//!   attributes already emitted as subelements: `person_id`,
//!   `open_auction_id`, `buyer_person`, `profile_income`, …).
//! * [`schema::XMARK_DTD`] — the adapted DTD. Its order constraints are the
//!   ones the paper's results rely on: `person_id` precedes `name` (Q1
//!   streams), `name` precedes `description` in items (Q13 streams), and
//!   `people` precede `open_auctions` precede `closed_auctions` in `site`
//!   (Q8/Q11 buffer both join sides under the shared scope).
//! * [`queries`] — Q1, Q8, Q11, Q13 and Q20 exactly as printed in
//!   Appendix A.

pub mod dict;
pub mod gen;
pub mod queries;
pub mod schema;

pub use gen::{generate, generate_string, XmarkConfig, XmarkSummary};
pub use queries::{PaperQuery, PAPER_QUERIES, Q1, Q11, Q13, Q20, Q8};
pub use schema::XMARK_DTD;
