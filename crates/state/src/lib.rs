//! Versioned binary encoding for resumable session state.
//!
//! A FluX `Session` is an owned, borrow-free value (the PR 3 sans-IO
//! refactor made every piece of pump state plan-index-based), so its
//! complete resumable state can leave the process: this crate defines the
//! byte format and the primitive codec the `flux-xml`, `flux-engine` and
//! facade layers use to write and read it. Three consumers build on the
//! encoding: live cross-shard migration, suspend-to-disk for idle
//! sessions, and serve-level session handoff across server restarts.
//!
//! # Format
//!
//! A snapshot is an *envelope*:
//!
//! ```text
//! "FLXS"                magic (4 bytes)
//! version               u8 (currently 1)
//! section-count         varint
//! sections              section-count × (id u8, len varint, payload)
//! ```
//!
//! Section payloads are sequences of primitives: LEB128 varints for all
//! integers, length-prefixed byte strings, one-byte booleans and option
//! tags. Everything is written in a deterministic order (no hash-map
//! iteration ever reaches the wire), so the same state always produces the
//! same bytes — which is what lets a committed golden fixture pin format
//! stability in CI.
//!
//! Unknown trailing sections are skipped on read: a version-1 reader stays
//! compatible with version-1 writers that append new optional sections.
//! Anything that would change the meaning of existing sections must bump
//! [`VERSION`].

use std::fmt;

/// Envelope magic: the first four bytes of every snapshot.
pub const MAGIC: [u8; 4] = *b"FLXS";

/// Current envelope version.
pub const VERSION: u8 = 1;

/// Well-known section ids of the session envelope. Kept here (rather than
/// in the facade) so every layer agrees and the golden-fixture test can
/// name them.
pub mod section {
    /// Snapshot kind, plan fingerprint, symbol-table fingerprint.
    pub const META: u8 = 1;
    /// Incremental reader: unconsumed window, open-element stack, offset.
    pub const READER: u8 = 2;
    /// Single-subscriber pump (scope stack, captures, observers, …).
    pub const PUMP: u8 = 3;
    /// Shared fan-out driver: all M subscriber pumps + wake buckets.
    pub const FANOUT: u8 = 4;
    /// Aggregate budget charges (validated against the per-pump charges).
    pub const BUDGET: u8 = 5;
}

/// META kind byte: a single-subscriber session snapshot (PUMP section).
pub const KIND_SESSION: u8 = 0;

/// META kind byte: a shared fan-out session snapshot (FANOUT section).
pub const KIND_SHARED: u8 = 1;

/// Read the kind byte out of a snapshot envelope without restoring it —
/// the dispatch a server needs before it knows which plan to rebuild.
pub fn snapshot_kind(bytes: &[u8]) -> Result<u8, StateError> {
    let sections = Sections::parse(bytes)?;
    sections.require(section::META)?.get_u8()
}

/// Peek the aggregate budget charges the snapshotted run held against its
/// shared [`BudgetHook`](../flux_engine) when the snapshot was taken (the
/// envelope's BUDGET section), without decoding any execution state. A
/// runtime that wants a refusal-free restore reserves exactly this amount
/// through its hook first, then restores pre-granted.
pub fn snapshot_charges(bytes: &[u8]) -> Result<usize, StateError> {
    let sections = Sections::parse(bytes)?;
    sections.require(section::BUDGET)?.get_usize()
}

/// Why a snapshot could not be produced or restored.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StateError {
    /// The byte stream ended inside a value.
    Truncated,
    /// The envelope does not start with [`MAGIC`].
    BadMagic,
    /// The envelope version is newer than this build understands.
    UnsupportedVersion(u8),
    /// A structurally impossible value (bad tag, inconsistent lengths, …).
    Corrupt(&'static str),
    /// A required section is missing from the envelope.
    MissingSection(u8),
    /// The snapshot was taken against a different compiled plan (or an
    /// incompatible symbol table): restoring would misinterpret every
    /// plan index in the state.
    PlanMismatch {
        /// Fingerprint recorded in the snapshot.
        expected: u64,
        /// Fingerprint of the plan offered for restore.
        found: u64,
    },
    /// The session is not at a quiescent point (mid-replay, failed, or
    /// holding a deferred borrow) — snapshot only between `feed` calls.
    NotQuiescent(&'static str),
    /// Restoring would re-charge `requested` bytes to the shared budget
    /// hook, and the hook denied the grant — the stalled-restore refusal.
    /// Retry once headroom frees up.
    BudgetDenied {
        /// Bytes the restore tried to re-grant.
        requested: usize,
    },
    /// Reading or writing a spill file failed.
    Io(String),
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::Truncated => write!(f, "snapshot truncated"),
            StateError::BadMagic => write!(f, "not a FluX snapshot (bad magic)"),
            StateError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (this build reads ≤ {VERSION})")
            }
            StateError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            StateError::MissingSection(id) => write!(f, "snapshot missing section {id}"),
            StateError::PlanMismatch { expected, found } => write!(
                f,
                "snapshot was taken against a different plan \
                 (fingerprint {expected:#018x}, offered {found:#018x})"
            ),
            StateError::NotQuiescent(what) => {
                write!(f, "session not at a quiescent point: {what}")
            }
            StateError::BudgetDenied { requested } => write!(
                f,
                "restore refused: re-granting {requested} bytes exceeds the budget headroom \
                 (retry when the pool drains)"
            ),
            StateError::Io(e) => write!(f, "snapshot I/O error: {e}"),
        }
    }
}

impl std::error::Error for StateError {}

/// Streaming FNV-1a (64-bit): the fingerprint hash used for plan and
/// symbol-table identity checks. Deterministic across platforms.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// The FNV-1a offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Fold `bytes` into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Fold an integer (little-endian) into the hash.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// Primitive encoder: appends values to a growing byte buffer.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Nothing written yet?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// LEB128 unsigned varint (all integers in the format use this).
    pub fn put_uint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// A `usize` as a varint.
    pub fn put_usize(&mut self, v: usize) {
        self.put_uint(v as u64);
    }

    /// A boolean as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Option tag (`0` = None, `1` = Some); the caller writes the payload
    /// after a `true` return.
    pub fn put_opt(&mut self, present: bool) -> bool {
        self.put_bool(present);
        present
    }
}

/// Primitive decoder over a byte slice.
#[derive(Debug, Clone, Copy)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decode from `buf`.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Everything consumed?
    pub fn is_done(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// One raw byte.
    pub fn get_u8(&mut self) -> Result<u8, StateError> {
        let b = *self.buf.get(self.pos).ok_or(StateError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// LEB128 unsigned varint.
    pub fn get_uint(&mut self) -> Result<u64, StateError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(StateError::Corrupt("varint overflows u64"));
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// A varint checked to fit `usize`.
    pub fn get_usize(&mut self) -> Result<usize, StateError> {
        usize::try_from(self.get_uint()?).map_err(|_| StateError::Corrupt("length exceeds usize"))
    }

    /// A varint additionally bounded by the bytes remaining — the right
    /// check for any count that prefixes per-item payloads of ≥ 1 byte, so
    /// corrupt lengths fail fast instead of provoking huge allocations.
    pub fn get_count(&mut self) -> Result<usize, StateError> {
        let n = self.get_usize()?;
        if n > self.remaining() {
            return Err(StateError::Corrupt("count exceeds remaining bytes"));
        }
        Ok(n)
    }

    /// One byte as a boolean; anything but 0/1 is corrupt.
    pub fn get_bool(&mut self) -> Result<bool, StateError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(StateError::Corrupt("boolean byte not 0/1")),
        }
    }

    /// Length-prefixed byte string (borrowed).
    pub fn get_bytes(&mut self) -> Result<&'a [u8], StateError> {
        let len = self.get_usize()?;
        let end = self.pos.checked_add(len).ok_or(StateError::Truncated)?;
        if end > self.buf.len() {
            return Err(StateError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Length-prefixed UTF-8 string (borrowed).
    pub fn get_str(&mut self) -> Result<&'a str, StateError> {
        std::str::from_utf8(self.get_bytes()?)
            .map_err(|_| StateError::Corrupt("string is not UTF-8"))
    }

    /// Option tag; on `true` the caller reads the payload.
    pub fn get_opt(&mut self) -> Result<bool, StateError> {
        self.get_bool()
    }
}

/// Envelope writer: collects sections, then serializes
/// `magic · version · count · (id, len, payload)*`.
#[derive(Debug, Default)]
pub struct Envelope {
    sections: Vec<(u8, Vec<u8>)>,
}

impl Envelope {
    /// An empty envelope.
    pub fn new() -> Envelope {
        Envelope::default()
    }

    /// Append a section (order is preserved on the wire).
    pub fn add(&mut self, id: u8, payload: Enc) {
        self.sections.push((id, payload.into_bytes()));
    }

    /// Serialize the envelope.
    pub fn into_bytes(self) -> Vec<u8> {
        let mut e = Enc::new();
        e.buf.extend_from_slice(&MAGIC);
        e.put_u8(VERSION);
        e.put_usize(self.sections.len());
        for (id, payload) in &self.sections {
            e.put_u8(*id);
            e.put_bytes(payload);
        }
        e.into_bytes()
    }
}

/// A parsed envelope: the section table of a snapshot.
#[derive(Debug)]
pub struct Sections<'a> {
    /// Envelope version (≤ [`VERSION`]).
    pub version: u8,
    table: Vec<(u8, &'a [u8])>,
}

impl<'a> Sections<'a> {
    /// Parse an envelope, checking magic and version.
    pub fn parse(bytes: &'a [u8]) -> Result<Sections<'a>, StateError> {
        let mut d = Dec::new(bytes);
        let mut magic = [0u8; 4];
        for m in &mut magic {
            *m = d.get_u8().map_err(|_| StateError::BadMagic)?;
        }
        if magic != MAGIC {
            return Err(StateError::BadMagic);
        }
        let version = d.get_u8()?;
        if version > VERSION {
            return Err(StateError::UnsupportedVersion(version));
        }
        let n = d.get_count()?;
        let mut table = Vec::with_capacity(n);
        for _ in 0..n {
            let id = d.get_u8()?;
            table.push((id, d.get_bytes()?));
        }
        Ok(Sections { version, table })
    }

    /// A section by id, if present.
    pub fn get(&self, id: u8) -> Option<Dec<'a>> {
        self.table.iter().find(|(i, _)| *i == id).map(|(_, b)| Dec::new(b))
    }

    /// A section that must be present.
    pub fn require(&self, id: u8) -> Result<Dec<'a>, StateError> {
        self.get(id).ok_or(StateError::MissingSection(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        let values =
            [0u64, 1, 127, 128, 129, 300, 16_383, 16_384, u32::MAX as u64, u64::MAX - 1, u64::MAX];
        let mut e = Enc::new();
        for &v in &values {
            e.put_uint(v);
        }
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        for &v in &values {
            assert_eq!(d.get_uint().unwrap(), v);
        }
        assert!(d.is_done());
    }

    #[test]
    fn primitives_roundtrip() {
        let mut e = Enc::new();
        e.put_u8(7);
        e.put_bool(true);
        e.put_bool(false);
        e.put_str("héllo");
        e.put_bytes(b"");
        e.put_usize(42);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.get_u8().unwrap(), 7);
        assert!(d.get_bool().unwrap());
        assert!(!d.get_bool().unwrap());
        assert_eq!(d.get_str().unwrap(), "héllo");
        assert_eq!(d.get_bytes().unwrap(), b"");
        assert_eq!(d.get_usize().unwrap(), 42);
        assert!(d.is_done());
    }

    #[test]
    fn truncation_is_detected() {
        let mut e = Enc::new();
        e.put_str("abcdef");
        let bytes = e.into_bytes();
        for cut in 0..bytes.len() {
            let mut d = Dec::new(&bytes[..cut]);
            assert!(d.get_str().is_err(), "cut at {cut} must not parse");
        }
    }

    #[test]
    fn bad_bool_is_corrupt() {
        let mut d = Dec::new(&[2]);
        assert!(matches!(d.get_bool(), Err(StateError::Corrupt(_))));
    }

    #[test]
    fn overlong_varint_rejected() {
        // 11 continuation bytes: > 64 bits of payload.
        let bytes = [0xffu8; 11];
        let mut d = Dec::new(&bytes);
        assert!(matches!(d.get_uint(), Err(StateError::Corrupt(_))));
    }

    #[test]
    fn envelope_roundtrip_and_unknown_sections() {
        let mut env = Envelope::new();
        let mut a = Enc::new();
        a.put_str("alpha");
        env.add(1, a);
        let mut b = Enc::new();
        b.put_uint(99);
        env.add(250, b); // an id this build knows nothing about
        let bytes = env.into_bytes();

        assert_eq!(&bytes[..4], b"FLXS");
        assert_eq!(bytes[4], VERSION);

        let s = Sections::parse(&bytes).unwrap();
        assert_eq!(s.get(1).unwrap().get_str().unwrap(), "alpha");
        assert!(s.get(7).is_none());
        assert!(matches!(s.require(7), Err(StateError::MissingSection(7))));
        // Unknown sections are carried, not rejected.
        assert_eq!(s.get(250).unwrap().get_uint().unwrap(), 99);
    }

    #[test]
    fn envelope_rejects_garbage() {
        assert!(matches!(Sections::parse(b""), Err(StateError::BadMagic)));
        assert!(matches!(Sections::parse(b"NOPE\x01\x00"), Err(StateError::BadMagic)));
        let mut future = Envelope::new().into_bytes();
        future[4] = VERSION + 1;
        assert!(matches!(Sections::parse(&future), Err(StateError::UnsupportedVersion(_))));
    }

    #[test]
    fn count_guard_rejects_huge_lengths() {
        let mut e = Enc::new();
        e.put_uint(1 << 40);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(matches!(d.get_count(), Err(StateError::Corrupt(_))));
    }

    #[test]
    fn fnv_is_stable() {
        // Check against a direct FNV-1a computation: the fingerprint
        // scheme must never drift silently.
        let reference = b"flux\x04\x00\x00\x00\x00\x00\x00\x00"
            .iter()
            .fold(0xcbf2_9ce4_8422_2325_u64, |acc, &b| {
                (acc ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
            });
        let mut h = Fnv64::new();
        h.write(b"flux");
        h.write_u64(4);
        assert_eq!(h.finish(), reference);
        let mut h3 = Fnv64::new();
        h3.write(b"flux");
        h3.write_u64(5);
        assert_ne!(h.finish(), h3.finish());
    }
}
