//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! tiny property-testing harness covering exactly the subset its test suites
//! use: the [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//! header), `prop_assert!`/`prop_assert_eq!`, strategies for integer ranges,
//! booleans, `any::<u8>()`, regex-like string patterns (character classes
//! with `{lo,hi}` repetition), and the `prop_map` / `prop_filter` /
//! `prop_recursive` / tuple / `option::of` / `collection::vec` combinators.
//!
//! Differences from real proptest, deliberately accepted: no shrinking (a
//! failing case panics with the sampled inputs unshrunk) and a fixed
//! deterministic seed sequence per test (cases are reproducible across
//! runs — handy for an offline CI gate).

use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration, named like the real crate's.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
    /// Accepted for compatibility; the shim does not shrink.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// The RNG handed to strategies.
pub type TestRng = StdRng;

#[doc(hidden)]
pub fn __rng_for_case(case: u64) -> TestRng {
    TestRng::seed_from_u64(0xF1A5_7E57 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A value generator.
pub trait Strategy: Sized {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Keep only values satisfying the predicate (resampled on rejection).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        f: F,
    ) -> Filter<Self, F> {
        Filter { inner: self, f, reason }
    }

    /// Build a recursive strategy: `f` maps "a strategy for the inner
    /// pieces" to "a strategy for one more level". The shim constructs
    /// `depth` levels eagerly; `desired_size`/`expected_branch_size` are
    /// accepted for signature compatibility and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut cur = self.boxed();
        for _ in 0..depth {
            cur = f(cur).boxed();
        }
        cur
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

trait DynStrategy<T> {
    fn dyn_sample(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_sample(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.dyn_sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 consecutive samples: {}", self.reason);
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Regex-like string patterns: a concatenation of atoms, each a literal
/// character or a `[...]` class, optionally followed by `{n}` / `{lo,hi}`.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let mut chars: Vec<char> = pattern.chars().collect();
    chars.reverse(); // pop() from the front
    while let Some(c) = chars.pop() {
        let class: Vec<char> = match c {
            '[' => parse_class(&mut chars, pattern),
            '\\' => vec![chars.pop().unwrap_or_else(|| bad_pattern(pattern))],
            lit => vec![lit],
        };
        let (lo, hi) = parse_quantifier(&mut chars, pattern);
        let n = rng.random_range(lo..=hi);
        for _ in 0..n {
            out.push(class[rng.random_range(0..class.len())]);
        }
    }
    out
}

fn parse_class(rest: &mut Vec<char>, pattern: &str) -> Vec<char> {
    let mut class = Vec::new();
    loop {
        let c = rest.pop().unwrap_or_else(|| bad_pattern(pattern));
        match c {
            ']' => break,
            '\\' => class.push(rest.pop().unwrap_or_else(|| bad_pattern(pattern))),
            _ => {
                // `a-z` range unless the `-` is the class's last character.
                if rest.last() == Some(&'-') && rest.get(rest.len().wrapping_sub(2)) != Some(&']') {
                    rest.pop();
                    let end = rest.pop().unwrap_or_else(|| bad_pattern(pattern));
                    for v in (c as u32)..=(end as u32) {
                        if let Some(ch) = char::from_u32(v) {
                            class.push(ch);
                        }
                    }
                } else {
                    class.push(c);
                }
            }
        }
    }
    if class.is_empty() {
        bad_pattern(pattern);
    }
    class
}

fn parse_quantifier(rest: &mut Vec<char>, pattern: &str) -> (usize, usize) {
    match rest.last() {
        Some('{') => {
            rest.pop();
            let mut spec = String::new();
            loop {
                match rest.pop() {
                    Some('}') => break,
                    Some(c) => spec.push(c),
                    None => bad_pattern(pattern),
                }
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().unwrap_or_else(|_| bad_pattern(pattern)),
                    hi.trim().parse().unwrap_or_else(|_| bad_pattern(pattern)),
                ),
                None => {
                    let n = spec.trim().parse().unwrap_or_else(|_| bad_pattern(pattern));
                    (n, n)
                }
            }
        }
        Some('?') => {
            rest.pop();
            (0, 1)
        }
        Some('*') => {
            rest.pop();
            (0, 8)
        }
        Some('+') => {
            rest.pop();
            (1, 8)
        }
        _ => (1, 1),
    }
}

fn bad_pattern(pattern: &str) -> ! {
    panic!("unsupported pattern in proptest shim: {pattern:?}")
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical "anything" strategy.
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.random_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.random_bool(0.5)
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A fair coin.
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.random_bool(0.5)
        }
    }

    /// The `proptest::bool::ANY` strategy.
    pub const ANY: AnyBool = AnyBool;
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// `Some` three times out of four, like the real crate's default weight.
    pub struct OptionOf<S>(S);

    impl<S: Strategy> Strategy for OptionOf<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            rng.random_bool(0.75).then(|| self.0.sample(rng))
        }
    }

    /// Optional values of the inner strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionOf<S> {
        OptionOf(inner)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// A vector with a length drawn from `size` (half-open).
    pub struct VecOf<S> {
        inner: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecOf<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.random_range(self.size.clone());
            (0..n).map(|_| self.inner.sample(rng)).collect()
        }
    }

    /// Vectors of the inner strategy's values.
    pub fn vec<S: Strategy>(inner: S, size: Range<usize>) -> VecOf<S> {
        VecOf { inner, size }
    }
}

/// The property-test macro: `#[test]` functions whose arguments are drawn
/// from strategies, run for `ProptestConfig::cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                let mut rng = $crate::__rng_for_case(case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
}

/// Assertion inside a property body (no shrinking in the shim: plain
/// `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Everything a test module typically imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, BoxedStrategy, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pattern_shapes() {
        let mut rng = crate::__rng_for_case(3);
        for _ in 0..200 {
            let name = Strategy::sample(&"[a-z][a-z0-9_.-]{0,8}", &mut rng);
            assert!((1..=9).contains(&name.chars().count()), "{name}");
            assert!(name.chars().next().unwrap().is_ascii_lowercase());
            let soup = Strategy::sample(&"[<>a-z/ =\"']{0,64}", &mut rng);
            assert!(soup.chars().count() <= 64);
            let text = Strategy::sample(&"[ -~äöü€<>&'\"]{1,20}", &mut rng);
            assert!((1..=20).contains(&text.chars().count()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_draws_in_range(x in 5u64..25, b in crate::bool::ANY) {
            prop_assert!((5..25).contains(&x));
            let _ = b;
        }

        #[test]
        fn combinators_compose(v in crate::collection::vec(any::<u8>(), 0..7), o in crate::option::of(0u32..3)) {
            prop_assert!(v.len() < 7);
            if let Some(x) = o { prop_assert!(x < 3); }
        }
    }
}
