//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! tiny, dependency-free implementation of exactly the API surface it uses:
//!
//! * [`rngs::StdRng`] with [`SeedableRng::seed_from_u64`] — deterministic,
//!   equal seeds give equal streams (the xmark generator's contract);
//! * [`Rng::random_range`] over integer and `f64` ranges (half-open and
//!   inclusive);
//! * [`Rng::random_bool`].
//!
//! The generator is xoshiro256** seeded through SplitMix64. The streams do
//! *not* match the real `rand` crate byte-for-byte — nothing in this
//! workspace depends on that, only on per-seed determinism.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (blanket-implemented for every [`RngCore`]).
pub trait Rng: RngCore {
    /// A uniform sample from the given range. Panics on empty ranges.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Map 64 random bits to `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from an empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the recommended xoshiro seeding.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0u64..1_000_000)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0u64..1_000_000)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.random_range(0u64..1_000_000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.random_range(3usize..7);
            assert!((3..7).contains(&v));
            let w = r.random_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = r.random_range(0.5_f64..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.random_bool(0.0)));
        assert!((0..100).all(|_| r.random_bool(1.0)));
        let heads = (0..10_000).filter(|_| r.random_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "{heads}");
    }
}
