//! The condition language of XQuery− (paper, Section 3).
//!
//! An *atomic condition* is `$x/π RelOp s`, `exists $x/π`, or
//! `$x/π RelOp $y/π′`; conditions are Boolean combinations thereof. As noted
//! in Appendix A, the prototype additionally supports
//! `$x/π RelOp c * $y/π′` (XMark Q11) and `empty($x/π)` (Q20, sugar for
//! `not exists $x/π`) — both are included here.

use std::fmt;

use crate::path::Path;

/// A variable-rooted path `$var/π`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PathRef {
    /// Variable name, without the `$` sigil.
    pub var: String,
    /// The fixed path below it.
    pub path: Path,
}

impl PathRef {
    /// Construct from a variable name and parsed path.
    pub fn new(var: impl Into<String>, path: Path) -> PathRef {
        PathRef { var: var.into(), path }
    }
}

impl fmt::Display for PathRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}/{}", self.var, self.path)
    }
}

/// Comparison operators: {=, <, ≤, >, ≥} (Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelOp {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl RelOp {
    /// Apply to an ordering-comparable pair.
    pub fn test(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            RelOp::Eq => ord == Equal,
            RelOp::Lt => ord == Less,
            RelOp::Le => ord != Greater,
            RelOp::Gt => ord == Greater,
            RelOp::Ge => ord != Less,
        }
    }
}

impl fmt::Display for RelOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RelOp::Eq => "=",
            RelOp::Lt => "<",
            RelOp::Le => "<=",
            RelOp::Gt => ">",
            RelOp::Ge => ">=",
        })
    }
}

/// Right-hand side of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum CmpRhs {
    /// A string or numeric literal.
    Const(String),
    /// Another path.
    Path(PathRef),
    /// `c * $y/π` (Appendix A, XMark Q11).
    Scaled {
        /// The constant factor.
        factor: f64,
        /// The scaled path.
        path: PathRef,
    },
}

impl fmt::Display for CmpRhs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmpRhs::Const(s) => {
                if s.parse::<f64>().is_ok() {
                    write!(f, "{s}")
                } else {
                    write!(f, "\"{s}\"")
                }
            }
            CmpRhs::Path(p) => write!(f, "{p}"),
            CmpRhs::Scaled { factor, path } => write!(f, "({factor} * {path})"),
        }
    }
}

/// An atomic condition.
#[derive(Debug, Clone, PartialEq)]
pub enum Atom {
    /// `$x/π RelOp rhs`, with XQuery existential semantics.
    Cmp {
        /// Left-hand path.
        left: PathRef,
        /// The operator.
        op: RelOp,
        /// Right-hand side.
        right: CmpRhs,
    },
    /// `exists $x/π`.
    Exists(PathRef),
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Cmp { left, op, right } => write!(f, "{left} {op} {right}"),
            Atom::Exists(p) => write!(f, "exists {p}"),
        }
    }
}

/// A Boolean combination of atomic conditions.
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    /// The constant `true`.
    True,
    /// Conjunction.
    And(Box<Cond>, Box<Cond>),
    /// Disjunction.
    Or(Box<Cond>, Box<Cond>),
    /// Negation.
    Not(Box<Cond>),
    /// An atom.
    Atom(Atom),
}

impl Cond {
    /// `χ and ψ` (used by normalization rule 6).
    pub fn and(self, other: Cond) -> Cond {
        Cond::And(Box::new(self), Box::new(other))
    }

    /// Visit every path reference occurring in the condition.
    pub fn visit_paths<'a, F: FnMut(&'a PathRef)>(&'a self, f: &mut F) {
        match self {
            Cond::True => {}
            Cond::And(a, b) | Cond::Or(a, b) => {
                a.visit_paths(f);
                b.visit_paths(f);
            }
            Cond::Not(c) => c.visit_paths(f),
            Cond::Atom(Atom::Exists(p)) => f(p),
            Cond::Atom(Atom::Cmp { left, right, .. }) => {
                f(left);
                match right {
                    CmpRhs::Path(p) | CmpRhs::Scaled { path: p, .. } => f(p),
                    CmpRhs::Const(_) => {}
                }
            }
        }
    }

    /// All variables mentioned in the condition.
    pub fn variables(&self) -> std::collections::BTreeSet<&str> {
        let mut out = std::collections::BTreeSet::new();
        self.visit_paths(&mut |p| {
            out.insert(p.var.as_str());
        });
        out
    }

    /// Does any atomic condition mention `var`? (Used by the "simple
    /// expression" side condition of Definition 3.3.)
    pub fn mentions(&self, var: &str) -> bool {
        self.variables().contains(var)
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::True => write!(f, "true"),
            Cond::And(a, b) => write!(f, "({a} and {b})"),
            Cond::Or(a, b) => write!(f, "({a} or {b})"),
            Cond::Not(c) => match &**c {
                Cond::Atom(Atom::Exists(p)) => write!(f, "empty({p})"),
                _ => write!(f, "not {c}"),
            },
            Cond::Atom(a) => write!(f, "{a}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pr(var: &str, path: &str) -> PathRef {
        PathRef::new(var, Path::parse(path).unwrap())
    }

    #[test]
    fn relop_tests() {
        use std::cmp::Ordering::*;
        assert!(RelOp::Eq.test(Equal) && !RelOp::Eq.test(Less));
        assert!(RelOp::Lt.test(Less) && !RelOp::Lt.test(Equal));
        assert!(RelOp::Le.test(Less) && RelOp::Le.test(Equal) && !RelOp::Le.test(Greater));
        assert!(RelOp::Gt.test(Greater) && !RelOp::Gt.test(Equal));
        assert!(RelOp::Ge.test(Greater) && RelOp::Ge.test(Equal) && !RelOp::Ge.test(Less));
    }

    #[test]
    fn variables_collected() {
        let c = Cond::Atom(Atom::Cmp {
            left: pr("article", "author"),
            op: RelOp::Eq,
            right: CmpRhs::Path(pr("book", "editor")),
        })
        .and(Cond::Atom(Atom::Exists(pr("b", "price"))));
        assert_eq!(c.variables().into_iter().collect::<Vec<_>>(), ["article", "b", "book"]);
        assert!(c.mentions("book"));
        assert!(!c.mentions("nope"));
    }

    #[test]
    fn display_forms() {
        let c = Cond::Not(Box::new(Cond::Atom(Atom::Exists(pr("p", "person_income")))));
        assert_eq!(c.to_string(), "empty($p/person_income)");
        let c2 = Cond::Atom(Atom::Cmp {
            left: pr("b", "year"),
            op: RelOp::Gt,
            right: CmpRhs::Const("1991".into()),
        });
        assert_eq!(c2.to_string(), "$b/year > 1991");
        let c3 = Cond::Atom(Atom::Cmp {
            left: pr("p", "profile/profile_income"),
            op: RelOp::Gt,
            right: CmpRhs::Scaled { factor: 5000.0, path: pr("o", "initial") },
        });
        assert_eq!(c3.to_string(), "$p/profile/profile_income > (5000 * $o/initial)");
    }
}
