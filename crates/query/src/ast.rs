//! The XQuery− abstract syntax (paper, Definition 3.1).

use crate::cond::Cond;
use crate::path::Path;

/// An XQuery− expression.
///
/// The eight forms of Definition 3.1. Sequences are flattened into one
/// n-ary node; the rewrite algorithm decomposes them head/tail as in the
/// paper's binary presentation. Fixed strings are first-class: `<result>`
/// is a string in XQuery−.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// 1. ε — the empty query.
    Empty,
    /// 2. `s` — output of a fixed string (tags included: `<result>` is a
    ///    string in XQuery−).
    Str(String),
    /// 3. `α β` — sequence.
    Seq(Vec<Expr>),
    /// 4./5. `{ for $var in $in_var/path (where pred)? return body }`.
    For {
        /// The bound variable (no `$` sigil).
        var: String,
        /// The variable the path starts from.
        in_var: String,
        /// The fixed path iterated over.
        path: Path,
        /// Optional `where` condition (form 5).
        pred: Option<Cond>,
        /// Loop body.
        body: Box<Expr>,
    },
    /// 6. `{ $var/path }` — output all subtrees reachable via the path.
    OutputPath {
        /// Root variable.
        var: String,
        /// The fixed path.
        path: Path,
    },
    /// 7. `{ $var }` — output the variable's subtree.
    OutputVar {
        /// The variable.
        var: String,
    },
    /// 8. `{ if cond then body }`.
    If {
        /// The condition.
        cond: Cond,
        /// Expression evaluated when the condition holds.
        body: Box<Expr>,
    },
}

impl Expr {
    /// Sequence constructor that flattens nested sequences and drops ε.
    pub fn seq(items: impl IntoIterator<Item = Expr>) -> Expr {
        let mut out = Vec::new();
        for it in items {
            match it {
                Expr::Empty => {}
                Expr::Seq(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Expr::Empty,
            1 => out.pop().unwrap(),
            _ => Expr::Seq(out),
        }
    }

    /// `{$var}` constructor.
    pub fn output_var(var: impl Into<String>) -> Expr {
        Expr::OutputVar { var: var.into() }
    }

    /// String-output constructor.
    pub fn str(s: impl Into<String>) -> Expr {
        Expr::Str(s.into())
    }

    /// Size of the expression: number of AST nodes plus condition atoms —
    /// the |Q| of the paper's complexity statements (proportional to the
    /// length of the string representation).
    pub fn size(&self) -> usize {
        match self {
            Expr::Empty | Expr::Str(_) | Expr::OutputVar { .. } => 1,
            Expr::OutputPath { path, .. } => 1 + path.len(),
            Expr::Seq(items) => 1 + items.iter().map(Expr::size).sum::<usize>(),
            Expr::For { path, pred, body, .. } => {
                1 + path.len() + pred.as_ref().map_or(0, cond_size) + body.size()
            }
            Expr::If { cond, body } => 1 + cond_size(cond) + body.size(),
        }
    }

    /// Does `{$var}` occur as a subexpression (the `{$x} ⊑ β` test of the
    /// rewrite algorithm, Figure 2 line 5)?
    ///
    /// Occurrences under a *rebinding* of `var` do not count — they refer to
    /// a different variable. (The paper assumes uniquely named variables;
    /// being scope-aware makes the check correct for arbitrary input too.)
    pub fn contains_output_var(&self, var: &str) -> bool {
        match self {
            Expr::OutputVar { var: v } => v == var,
            Expr::Seq(items) => items.iter().any(|e| e.contains_output_var(var)),
            Expr::For { var: bound, body, .. } => bound != var && body.contains_output_var(var),
            Expr::If { body, .. } => body.contains_output_var(var),
            _ => false,
        }
    }

    /// Visit every subexpression, pre-order.
    pub fn visit<'a, F: FnMut(&'a Expr)>(&'a self, f: &mut F) {
        f(self);
        match self {
            Expr::Seq(items) => items.iter().for_each(|e| e.visit(f)),
            Expr::For { body, .. } | Expr::If { body, .. } => body.visit(f),
            _ => {}
        }
    }

    /// Whether this is a *simple expression* in the sense of Definition 3.3:
    /// a sequence `α β γ` where α, γ consist of strings and
    /// `{if χ then s}` items, β is empty, `{$u}`, or `{if χ then {$u}}`,
    /// and no atomic condition in the α/β prefix mentions `$u`.
    pub fn is_simple(&self) -> bool {
        let items: &[Expr] = match self {
            Expr::Seq(items) => items,
            single => std::slice::from_ref(single),
        };
        let mut seen_var: Option<&str> = None;
        for item in items {
            let (var_here, conds_here): (Option<&str>, Vec<&Cond>) = match item {
                Expr::Empty | Expr::Str(_) => (None, vec![]),
                Expr::If { cond, body } => match &**body {
                    Expr::Str(_) => (None, vec![cond]),
                    Expr::OutputVar { var } => (Some(var), vec![cond]),
                    _ => return false,
                },
                Expr::OutputVar { var } => (Some(var), vec![]),
                _ => return false,
            };
            if let Some(v) = var_here {
                if seen_var.is_some() {
                    return false; // at most one {$u}
                }
                seen_var = Some(v);
            }
            // Conditions in α and β must not mention the β variable; since we
            // scan left to right, check each condition against a later-found
            // variable by deferring: collect conditions and re-check below.
            let _ = conds_here;
        }
        // Re-scan: no atomic condition in α β (everything up to and including
        // the {$u} item) may mention $u.
        if let Some(u) = seen_var {
            let mut passed_u = false;
            for item in items {
                let (cond, is_u_item) = match item {
                    Expr::If { cond, body } => {
                        (Some(cond), matches!(&**body, Expr::OutputVar { var } if var == u))
                    }
                    Expr::OutputVar { var } => (None, var == u),
                    _ => (None, false),
                };
                if !passed_u {
                    if let Some(c) = cond {
                        if c.mentions(u) {
                            return false;
                        }
                    }
                }
                if is_u_item {
                    passed_u = true;
                }
            }
        }
        true
    }
}

fn cond_size(c: &Cond) -> usize {
    match c {
        Cond::True => 1,
        Cond::And(a, b) | Cond::Or(a, b) => 1 + cond_size(a) + cond_size(b),
        Cond::Not(c) => 1 + cond_size(c),
        Cond::Atom(_) => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_xquery;

    #[test]
    fn seq_flattens_and_drops_empty() {
        let e = Expr::seq([Expr::Empty, Expr::str("a"), Expr::seq([Expr::str("b"), Expr::Empty])]);
        assert_eq!(e, Expr::Seq(vec![Expr::str("a"), Expr::str("b")]));
        assert_eq!(Expr::seq([]), Expr::Empty);
        assert_eq!(Expr::seq([Expr::str("x")]), Expr::str("x"));
    }

    #[test]
    fn contains_output_var_respects_scoping() {
        let e = parse_xquery("{ for $x in $y/a return {$x} }").unwrap();
        assert!(!e.contains_output_var("x"), "x is rebound by the for");
        assert!(!e.contains_output_var("y"));
        let e2 = parse_xquery("{ for $z in $y/a return {$x} }").unwrap();
        assert!(e2.contains_output_var("x"));
    }

    #[test]
    fn simple_expressions() {
        // The paper's example: <a>{$x}</a> {if $x/b=5 then <b>5</b>} is
        // simple…
        let e = parse_xquery("<a>{$x}</a> {if $x/b = 5 then <b>5</b>}").unwrap();
        assert!(e.is_simple());
        // …but {$x}{$y} is not.
        let e2 = parse_xquery("{$x}{$y}").unwrap();
        assert!(!e2.is_simple());
        // A condition mentioning the output variable before/at β breaks
        // simplicity.
        let e3 = parse_xquery("{if $x/b = 5 then {$x}}").unwrap();
        assert!(!e3.is_simple());
        // …but a condition on another variable is fine.
        let e4 = parse_xquery("{if $y/b = 5 then {$x}}").unwrap();
        assert!(e4.is_simple());
        // For-loops are never simple.
        let e5 = parse_xquery("{ for $a in $x/b return {$a} }").unwrap();
        assert!(!e5.is_simple());
        // Conditions after the {$u} item may mention $u (α β restriction
        // only).
        let e6 = parse_xquery("{$x} {if $x/b = 5 then <b>5</b>}").unwrap();
        assert!(e6.is_simple());
    }

    #[test]
    fn size_grows_with_structure() {
        let small = parse_xquery("<a>").unwrap();
        let big =
            parse_xquery("{ for $b in $ROOT/bib/book where $b/year > 1991 return {$b/title} }")
                .unwrap();
        assert!(big.size() > small.size());
    }
}
