//! The reference XQuery− evaluator over node trees (paper, Section 3.1
//! semantics).
//!
//! This single evaluator is used by every execution path in the system:
//!
//! * the DOM baseline engines run whole queries over the full document tree;
//! * the FluX streaming engine runs *buffered* XQuery− subexpressions over
//!   the partial trees held in its runtime buffers (paper, Section 5 — the
//!   buffers replay "indistinguishable from the input stream").
//!
//! Comparison semantics are XQuery's existential quantification over the
//! node sequences denoted by both sides; values compare numerically when
//! both operands parse as numbers, lexicographically otherwise.

use std::cmp::Ordering;
use std::fmt;

use flux_xml::{Node, Sink, Writer};

use crate::ast::Expr;
use crate::cond::{Atom, CmpRhs, Cond, PathRef, RelOp};

/// Evaluation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A variable was read that is not bound in the environment — a safety
    /// violation if it happens while running a FluX query.
    Unbound(String),
    /// Output sink failure.
    Io(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Unbound(v) => write!(f, "unbound variable ${v}"),
            EvalError::Io(e) => write!(f, "output error: {e}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// A variable environment: bindings from variable names to nodes, with
/// lexical shadowing (later bindings win).
#[derive(Debug, Default)]
pub struct Env<'a> {
    stack: Vec<(String, &'a Node)>,
}

impl<'a> Env<'a> {
    /// Empty environment.
    pub fn new() -> Self {
        Env { stack: Vec::new() }
    }

    /// Environment with a single binding (typically `$ROOT` → document).
    pub fn with(var: impl Into<String>, node: &'a Node) -> Self {
        let mut e = Env::new();
        e.push(var, node);
        e
    }

    /// Bind a variable (shadowing any previous binding).
    pub fn push(&mut self, var: impl Into<String>, node: &'a Node) {
        self.stack.push((var.into(), node));
    }

    /// Remove the most recent binding.
    pub fn pop(&mut self) {
        self.stack.pop();
    }

    /// Look a variable up.
    pub fn get(&self, var: &str) -> Result<&'a Node, EvalError> {
        self.stack
            .iter()
            .rev()
            .find(|(v, _)| v == var)
            .map(|&(_, n)| n)
            .ok_or_else(|| EvalError::Unbound(var.to_string()))
    }

    /// Resolve `$var/path` to the matching nodes in document order.
    pub fn select(&self, pr: &PathRef) -> Result<Vec<&'a Node>, EvalError> {
        let root = self.get(&pr.var)?;
        let mut out = Vec::new();
        root.select(pr.path.steps(), &mut out);
        Ok(out)
    }
}

/// External resolver for atomic conditions evaluable outside the buffers
/// (the FluX engine's on-the-fly condition flags, paper §5). Called with
/// the atom and the variables bound *inside* the expression so far; returns
/// `Some(value)` for atoms it owns, `None` to evaluate against the
/// environment's node bindings. Threading the resolver through evaluation
/// (instead of substituting into a cloned expression) keeps handler
/// firings allocation-free on the streaming path.
pub type AtomResolver<'r> = &'r dyn Fn(&Atom, &[String]) -> Option<bool>;

/// Evaluate an expression, writing the result through an XML writer.
pub fn eval_expr<S: Sink>(
    expr: &Expr,
    env: &mut Env<'_>,
    out: &mut Writer<S>,
) -> Result<(), EvalError> {
    eval_expr_with(expr, env, out, &|_, _| None)
}

/// [`eval_expr`] with an external atom resolver (see [`AtomResolver`]).
pub fn eval_expr_with<S: Sink>(
    expr: &Expr,
    env: &mut Env<'_>,
    out: &mut Writer<S>,
    resolve: AtomResolver<'_>,
) -> Result<(), EvalError> {
    eval_expr_inner(expr, env, out, resolve, &mut Vec::new())
}

fn eval_expr_inner<S: Sink>(
    expr: &Expr,
    env: &mut Env<'_>,
    out: &mut Writer<S>,
    resolve: AtomResolver<'_>,
    bound: &mut Vec<String>,
) -> Result<(), EvalError> {
    match expr {
        Expr::Empty => Ok(()),
        Expr::Str(s) => out.write_raw(s).map_err(io_err),
        Expr::Seq(items) => {
            for it in items {
                eval_expr_inner(it, env, out, resolve, bound)?;
            }
            Ok(())
        }
        Expr::OutputVar { var } => out.write_node(env.get(var)?).map_err(io_err),
        Expr::OutputPath { var, path } => {
            let root = env.get(var)?;
            let mut nodes = Vec::new();
            root.select(path.steps(), &mut nodes);
            for n in nodes {
                out.write_node(n).map_err(io_err)?;
            }
            Ok(())
        }
        Expr::If { cond, body } => {
            if eval_cond_inner(cond, env, resolve, bound)? {
                eval_expr_inner(body, env, out, resolve, bound)?;
            }
            Ok(())
        }
        Expr::For { var, in_var, path, pred, body } => {
            let root = env.get(in_var)?;
            let mut nodes = Vec::new();
            root.select(path.steps(), &mut nodes);
            // `var` is rebound below this point: the resolver must not
            // claim atoms rooted at it (lexical shadowing).
            bound.push(var.clone());
            for n in nodes {
                env.push(var.clone(), n);
                let keep = match pred {
                    Some(chi) => eval_cond_inner(chi, env, resolve, bound)?,
                    None => true,
                };
                let res =
                    if keep { eval_expr_inner(body, env, out, resolve, bound) } else { Ok(()) };
                env.pop();
                res?;
            }
            bound.pop();
            Ok(())
        }
    }
}

fn io_err(e: std::io::Error) -> EvalError {
    EvalError::Io(e.to_string())
}

/// Evaluate a condition under the environment.
pub fn eval_cond(cond: &Cond, env: &Env<'_>) -> Result<bool, EvalError> {
    eval_cond_with(cond, env, &|_, _| None)
}

/// [`eval_cond`] with an external atom resolver (see [`AtomResolver`]).
pub fn eval_cond_with(
    cond: &Cond,
    env: &Env<'_>,
    resolve: AtomResolver<'_>,
) -> Result<bool, EvalError> {
    eval_cond_inner(cond, env, resolve, &mut Vec::new())
}

fn eval_cond_inner(
    cond: &Cond,
    env: &Env<'_>,
    resolve: AtomResolver<'_>,
    bound: &mut Vec<String>,
) -> Result<bool, EvalError> {
    Ok(match cond {
        Cond::True => true,
        Cond::And(a, b) => {
            eval_cond_inner(a, env, resolve, bound)? && eval_cond_inner(b, env, resolve, bound)?
        }
        Cond::Or(a, b) => {
            eval_cond_inner(a, env, resolve, bound)? || eval_cond_inner(b, env, resolve, bound)?
        }
        Cond::Not(c) => !eval_cond_inner(c, env, resolve, bound)?,
        Cond::Atom(atom) => {
            if let Some(v) = resolve(atom, bound) {
                return Ok(v);
            }
            match atom {
                Atom::Exists(p) => !env.select(p)?.is_empty(),
                Atom::Cmp { left, op, right } => {
                    let lhs = env.select(left)?;
                    match right {
                        CmpRhs::Const(s) => lhs.iter().any(|n| compare_values(&n.text(), *op, s)),
                        CmpRhs::Path(rp) => {
                            let rhs = env.select(rp)?;
                            lhs.iter().any(|l| {
                                let lv = l.text();
                                rhs.iter().any(|r| compare_values(&lv, *op, &r.text()))
                            })
                        }
                        CmpRhs::Scaled { factor, path } => {
                            let rhs = env.select(path)?;
                            lhs.iter().any(|l| {
                                let Ok(lv) = l.text().trim().parse::<f64>() else { return false };
                                rhs.iter().any(|r| match r.text().trim().parse::<f64>() {
                                    Ok(rv) => op.test(partial_ord(lv, factor * rv)),
                                    Err(_) => false,
                                })
                            })
                        }
                    }
                }
            }
        }
    })
}

fn partial_ord(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or(Ordering::Less)
}

/// Compare two string values: numerically when both parse as numbers,
/// lexicographically otherwise.
pub fn compare_values(left: &str, op: RelOp, right: &str) -> bool {
    let (l, r) = (left.trim(), right.trim());
    match (l.parse::<f64>(), r.parse::<f64>()) {
        (Ok(a), Ok(b)) => op.test(partial_ord(a, b)),
        _ => op.test(l.cmp(r)),
    }
}

/// Wrap a parsed root element in a document node so that `$ROOT/rootname/…`
/// paths resolve (the paper's `$ROOT` denotes the document node).
pub fn wrap_document(root: Node) -> Node {
    let mut doc = Node::new("#document");
    doc.children.push(flux_xml::Child::Elem(root));
    doc
}

/// Evaluate a whole query against a document node (as produced by
/// [`wrap_document`]); returns the serialized result.
pub fn eval_query(expr: &Expr, doc: &Node) -> Result<String, EvalError> {
    let mut env = Env::with(crate::ROOT_VAR, doc);
    let mut w = Writer::new(Vec::new());
    eval_expr(expr, &mut env, &mut w)?;
    let bytes = w.into_inner().map_err(io_err)?;
    Ok(String::from_utf8(bytes).expect("writer emits UTF-8"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_condition, parse_xquery};

    fn bib_doc() -> Node {
        wrap_document(
            Node::parse_str(
                "<bib>\
                   <book><title>TCP</title><author>Stevens</author><author>Wright</author>\
                     <publisher>Addison-Wesley</publisher><year>1994</year></book>\
                   <book><title>Data on the Web</title><author>Abiteboul</author>\
                     <publisher>Morgan Kaufmann</publisher><year>1999</year></book>\
                 </bib>",
            )
            .unwrap(),
        )
    }

    #[track_caller]
    fn run(q: &str) -> String {
        eval_query(&parse_xquery(q).unwrap(), &bib_doc()).unwrap()
    }

    #[test]
    fn intro_query() {
        let out = run(
            "<results>{ for $b in $ROOT/bib/book return <result> {$b/title} {$b/author} </result> }</results>",
        );
        assert_eq!(
            out,
            "<results><result><title>TCP</title><author>Stevens</author><author>Wright</author></result>\
             <result><title>Data on the Web</title><author>Abiteboul</author></result></results>"
        );
    }

    #[test]
    fn where_filters() {
        let out = run(
            "{ for $b in $ROOT/bib/book where $b/publisher = \"Addison-Wesley\" and $b/year > 1991 \
               return <b>{$b/title}</b> }",
        );
        assert_eq!(out, "<b><title>TCP</title></b>");
        // numeric comparison really is numeric:
        let none = run("{ for $b in $ROOT/bib/book where $b/year > 2020 return <b/> }");
        assert_eq!(none, "");
    }

    #[test]
    fn exists_and_empty() {
        assert_eq!(
            run("{ for $b in $ROOT/bib/book where exists $b/author return <y/> }"),
            "<y/><y/>"
        );
        assert_eq!(
            run("{ for $b in $ROOT/bib/book where empty($b/price) return <n/> }"),
            "<n/><n/>"
        );
        assert_eq!(run("{ for $b in $ROOT/bib/book where empty($b/title) return <n/> }"), "");
    }

    #[test]
    fn join_comparison_is_existential() {
        // Any author equal to any of the listed authors.
        let doc = bib_doc();
        let env = Env::with("ROOT", &doc);
        let c = parse_condition("$ROOT/bib/book/author = $ROOT/bib/book/author").unwrap();
        assert!(eval_cond(&c, &env).unwrap());
    }

    #[test]
    fn scaled_comparison() {
        let doc =
            wrap_document(Node::parse_str("<r><a><v>100</v></a><b><w>30</w></b></r>").unwrap());
        let env = Env::with("ROOT", &doc);
        assert!(
            eval_cond(&parse_condition("$ROOT/r/a/v > (3 * $ROOT/r/b/w)").unwrap(), &env).unwrap()
        );
        assert!(
            !eval_cond(&parse_condition("$ROOT/r/a/v > (4 * $ROOT/r/b/w)").unwrap(), &env).unwrap()
        );
        // Non-numeric operands make the comparison false, not an error.
        let doc2 =
            wrap_document(Node::parse_str("<r><a><v>abc</v></a><b><w>30</w></b></r>").unwrap());
        let env2 = Env::with("ROOT", &doc2);
        assert!(!eval_cond(&parse_condition("$ROOT/r/a/v > (1 * $ROOT/r/b/w)").unwrap(), &env2)
            .unwrap());
    }

    #[test]
    fn string_vs_numeric_comparison() {
        assert!(compare_values("10", RelOp::Gt, "9"));
        assert!(!compare_values("10", RelOp::Gt, "9a"), "lexicographic: \"10\" < \"9a\"");
        assert!(compare_values("abc", RelOp::Lt, "abd"));
        assert!(compare_values(" 42 ", RelOp::Eq, "42"));
    }

    #[test]
    fn unbound_variable_errors() {
        let e = parse_xquery("{$nope}").unwrap();
        assert_eq!(eval_query(&e, &bib_doc()).unwrap_err(), EvalError::Unbound("nope".into()));
    }

    #[test]
    fn atom_resolver_respects_rebinding() {
        // The resolver claims every atom rooted at $b as `true` — except
        // where $b is rebound inside the expression, which must fall back
        // to node evaluation (lexical shadowing, as FluX flag scoping
        // requires).
        let doc = wrap_document(Node::parse_str("<y><z><x>0</x></z><z><x>1</x></z></y>").unwrap());
        let e = parse_xquery(
            "{ if $b/x = 1 then <outer/> } \
             { for $b in $ROOT/y/z return { if $b/x = 1 then <inner/> } }",
        )
        .unwrap();
        let mut env = Env::with(crate::ROOT_VAR, &doc);
        // $b is NOT bound in the environment: if the resolver failed to
        // claim the outer atom, evaluation would error with Unbound.
        let resolve = |atom: &Atom, bound: &[String]| {
            let var = match atom {
                Atom::Cmp { left, .. } => &left.var,
                Atom::Exists(p) => &p.var,
            };
            (var == "b" && !bound.iter().any(|b| b == "b")).then_some(true)
        };
        let mut w = Writer::new(Vec::new());
        eval_expr_with(&e, &mut env, &mut w, &resolve).unwrap();
        let out = String::from_utf8(w.into_inner().unwrap()).unwrap();
        // Outer atom resolved true; inner $b rebound → evaluated over the
        // document (matches only the second <z>).
        assert_eq!(out, "<outer/><inner/>");
    }

    #[test]
    fn shadowing() {
        let doc = bib_doc();
        let out = eval_query(
            &parse_xquery(
                "{ for $b in $ROOT/bib/book return { for $b in $b/author return {$b} } }",
            )
            .unwrap(),
            &doc,
        )
        .unwrap();
        assert_eq!(
            out,
            "<author>Stevens</author><author>Wright</author><author>Abiteboul</author>"
        );
    }

    #[test]
    fn equivalence_under_normalization() {
        // Proposition 3.2 / Theorem 4.1: normalization preserves semantics.
        let queries = [
            "<results>{ for $b in $ROOT/bib/book return <result> {$b/title} {$b/author} </result> }</results>",
            "{ for $b in $ROOT/bib/book where $b/publisher = \"Addison-Wesley\" and $b/year > 1991 \
               return <book> {$b/year} {$b/title} </book> }",
            "{ $ROOT/bib/book/title }",
            "{ if $ROOT/bib/book/year > 1000 then <old> {$ROOT/bib/book/author} </old> }",
        ];
        let doc = bib_doc();
        for q in queries {
            let e = parse_xquery(q).unwrap();
            let n = crate::normalize::normalize(&e);
            assert_eq!(eval_query(&e, &doc).unwrap(), eval_query(&n, &doc).unwrap(), "query: {q}");
        }
    }
}
