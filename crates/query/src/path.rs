//! Fixed paths (paper, Section 3): `a1/a2/…/an` with n ≥ 1.
//!
//! XPath features such as `a/*/b`, `a//b` and predicates are deliberately
//! excluded — the rewrite algorithm's dependency analysis relies on knowing
//! the first step of every path exactly.

use std::fmt;

/// A non-empty fixed path.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Path(Vec<String>);

impl Path {
    /// Build from steps; panics on an empty step list (fixed paths have
    /// n ≥ 1 by definition).
    pub fn new(steps: Vec<String>) -> Path {
        assert!(!steps.is_empty(), "fixed paths have at least one step");
        Path(steps)
    }

    /// Build from string steps.
    pub fn from_steps<S: Into<String>>(steps: impl IntoIterator<Item = S>) -> Path {
        Path::new(steps.into_iter().map(Into::into).collect())
    }

    /// Parse `a/b/c`.
    pub fn parse(s: &str) -> Result<Path, String> {
        let steps: Vec<String> = s.split('/').map(str::to_string).collect();
        if steps.iter().any(|st| st.is_empty()) {
            return Err(format!("empty step in path `{s}`"));
        }
        Ok(Path(steps))
    }

    /// The steps.
    pub fn steps(&self) -> &[String] {
        &self.0
    }

    /// The first step (`b` in the paper's `$y/b/π` notation) — what
    /// `dependencies` records.
    pub fn head(&self) -> &str {
        &self.0[0]
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Always false (paths are non-empty); provided for clippy's sake.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// For a single-step path, its step.
    pub fn single(&self) -> Option<&str> {
        (self.0.len() == 1).then(|| self.head())
    }

    /// Split into head and remainder (`None` remainder for single-step).
    pub fn split_head(&self) -> (&str, Option<Path>) {
        let rest = (self.0.len() > 1).then(|| Path(self.0[1..].to_vec()));
        (self.head(), rest)
    }

    /// New path with `prefix` steps prepended.
    pub fn prepend(&self, prefix: &[String]) -> Path {
        let mut steps = prefix.to_vec();
        steps.extend(self.0.iter().cloned());
        Path(steps)
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0.join("/"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let p = Path::parse("bib/book/title").unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.head(), "bib");
        assert_eq!(p.to_string(), "bib/book/title");
    }

    #[test]
    fn parse_rejects_empty_steps() {
        assert!(Path::parse("a//b").is_err());
        assert!(Path::parse("").is_err());
        assert!(Path::parse("/a").is_err());
    }

    #[test]
    fn single_and_split() {
        let p = Path::parse("title").unwrap();
        assert_eq!(p.single(), Some("title"));
        assert_eq!(p.split_head(), ("title", None));
        let q = Path::parse("a/b").unwrap();
        assert_eq!(q.single(), None);
        let (h, rest) = q.split_head();
        assert_eq!(h, "a");
        assert_eq!(rest.unwrap().to_string(), "b");
    }

    #[test]
    fn prepend() {
        let p = Path::parse("c").unwrap();
        assert_eq!(p.prepend(&["a".into(), "b".into()]).to_string(), "a/b/c");
    }
}
