//! # flux-query — the XQuery− fragment (paper, Section 3.1)
//!
//! XQuery− is the paper's XQuery fragment: sequences of fixed strings,
//! for-loops over fixed paths (optionally with `where` conditions),
//! conditionals, and subtree output. Fixed strings are first-class — the
//! query `<result> {$x} </result>` is a *sequence* of three expressions
//! (string, subtree output, string), which Proposition 3.2 shows agrees with
//! standard XQuery semantics whenever the query parses in both.
//!
//! Provided here:
//!
//! * [`ast::Expr`] / [`cond::Cond`] — the abstract syntax (Definition 3.1).
//! * [`parser::parse_xquery`] — a parser for the paper's concrete syntax.
//! * [`normalize()`](normalize::normalize) — the Figure 1 normal form (Theorem 4.1): single-step
//!   paths, no conditional for-loops, conditionals only around strings and
//!   `{$x}`.
//! * [`eval`] — the reference tree evaluator implementing the XQuery−
//!   semantics; it is reused by the DOM baselines *and* by the FluX engine
//!   to run buffered subexpressions, so all three execution paths share one
//!   definition of the language.

pub mod ast;
pub mod cond;
pub mod eval;
pub mod normalize;
pub mod parser;
pub mod path;
pub mod print;
pub mod vars;

pub use ast::Expr;
pub use cond::{Atom, CmpRhs, Cond, PathRef, RelOp};
pub use eval::{eval_expr, eval_query, Env, EvalError};
pub use normalize::{is_normal_form, normalize, normalize_with_stats, NormalizeStats};
pub use parser::{parse_condition, parse_xquery, Cursor, ParseError};
pub use path::Path;
pub use vars::{free_vars, VarGen};

/// The distinguished variable bound to the document node (paper: `$ROOT`).
pub const ROOT_VAR: &str = "ROOT";
