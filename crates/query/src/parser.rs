//! Parser for the paper's concrete XQuery− syntax.
//!
//! Queries are written exactly as in the paper: literal text (including
//! markup like `<results>`) is *output of fixed strings*, and `{ … }` blocks
//! contain for-loops, conditionals and variable/path output:
//!
//! ```text
//! <results>
//! { for $b in $ROOT/bib/book return
//!     <result> {$b/title} {$b/author} </result> }
//! </results>
//! ```
//!
//! Following Appendix A, `$ROOT` may be omitted in absolute paths
//! (`for $p in /site/people/person …`), `empty($x/π)` is accepted as sugar
//! for `not exists $x/π`, and comparisons may scale a path by a constant
//! (`$x/π > 5000 * $y/π′`).
//!
//! Literal chunks are trimmed at their boundaries to `{`/`}`; interior
//! whitespace is preserved. [`Cursor`] is public so that `flux-core` can
//! build the FluX parser (which adds `process-stream`) on top of the same
//! machinery.

use std::fmt;

use crate::ast::Expr;
use crate::cond::{Atom, CmpRhs, Cond, PathRef, RelOp};
use crate::path::Path;
use crate::ROOT_VAR;

/// A parse failure with its byte offset in the query text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description.
    pub message: String,
    /// Byte offset.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete XQuery− query.
pub fn parse_xquery(src: &str) -> Result<Expr, ParseError> {
    let mut cur = Cursor::new(src);
    let e = parse_mixed(&mut cur, &[])?;
    if !cur.at_end() {
        return Err(cur.error("unbalanced `}`"));
    }
    Ok(e)
}

/// Parse a condition given as a standalone string.
pub fn parse_condition(src: &str) -> Result<Cond, ParseError> {
    let mut cur = Cursor::new(src);
    let c = parse_cond(&mut cur)?;
    cur.skip_ws();
    if !cur.at_end() {
        return Err(cur.error("trailing input after condition"));
    }
    Ok(c)
}

/// A character cursor over query text. Public so the FluX parser in
/// `flux-core` can reuse it.
#[derive(Debug, Clone)]
pub struct Cursor<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Start at the beginning of `src`.
    pub fn new(src: &'a str) -> Self {
        Cursor { src, pos: 0 }
    }

    /// Current byte offset.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Whether all input is consumed.
    pub fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    /// Peek the next byte without consuming.
    pub fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    /// Consume one char.
    pub fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    /// Skip ASCII whitespace.
    pub fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_whitespace() {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
    }

    /// Build an error at the current position.
    pub fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError { message: msg.into(), offset: self.pos }
    }

    /// After whitespace, consume `kw` if it is present as a whole word.
    pub fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        if !rest.starts_with(kw) {
            return false;
        }
        let boundary = rest[kw.len()..]
            .chars()
            .next()
            .is_none_or(|c| !(c.is_alphanumeric() || c == '_' || c == '-'));
        if boundary {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    /// After whitespace, consume an exact character or error.
    pub fn expect_char(&mut self, c: char) -> Result<(), ParseError> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected `{c}`, found {:?}", self.peek())))
        }
    }

    /// After whitespace, consume a character if present.
    pub fn eat_char(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Parse an identifier (tag/variable name).
    pub fn parse_name(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || matches!(c, '_' | '-' | '.') {
                self.bump();
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected a name"));
        }
        Ok(self.src[start..self.pos].to_string())
    }

    /// Parse `$name` and return the name.
    pub fn parse_var(&mut self) -> Result<String, ParseError> {
        self.expect_char('$')?;
        self.parse_name()
    }

    /// Parse `name(/name)*`.
    pub fn parse_path(&mut self) -> Result<Path, ParseError> {
        let mut steps = vec![self.parse_name()?];
        while self.peek() == Some('/') {
            self.bump();
            steps.push(self.parse_name()?);
        }
        Ok(Path::new(steps))
    }

    /// Parse `$var/path` or an absolute `/path` (implicit `$ROOT`).
    /// Returns `(variable, optional path)` — the path is `None` for a bare
    /// `$var`.
    pub fn parse_var_path(&mut self) -> Result<(String, Option<Path>), ParseError> {
        self.skip_ws();
        if self.peek() == Some('/') {
            self.bump();
            let p = self.parse_path()?;
            return Ok((ROOT_VAR.to_string(), Some(p)));
        }
        let var = self.parse_var()?;
        if self.peek() == Some('/') {
            self.bump();
            let p = self.parse_path()?;
            Ok((var, Some(p)))
        } else {
            Ok((var, None))
        }
    }
}

/// Parse a mixed sequence of literal text and `{…}` expressions, stopping
/// (without consuming) at any of `stops` when it occurs outside braces, or
/// at end of input. Literal chunks are trimmed at their boundaries.
pub fn parse_mixed(cur: &mut Cursor<'_>, stops: &[char]) -> Result<Expr, ParseError> {
    let mut items: Vec<Expr> = Vec::new();
    let mut literal = String::new();
    loop {
        match cur.peek() {
            None => break,
            Some('{') => {
                flush_literal(&mut literal, &mut items);
                items.push(parse_brace_expr(cur)?);
            }
            Some(c) if stops.contains(&c) => break,
            Some('}') => {
                if stops.is_empty() {
                    return Err(cur.error("unbalanced `}`"));
                }
                break;
            }
            Some(c) => {
                literal.push(c);
                cur.bump();
            }
        }
    }
    flush_literal(&mut literal, &mut items);
    Ok(Expr::seq(items))
}

fn flush_literal(literal: &mut String, items: &mut Vec<Expr>) {
    let trimmed = literal.trim();
    if !trimmed.is_empty() {
        items.push(Expr::Str(trimmed.to_string()));
    }
    literal.clear();
}

/// Parse one `{ … }` expression (cursor must be at `{`).
pub fn parse_brace_expr(cur: &mut Cursor<'_>) -> Result<Expr, ParseError> {
    cur.expect_char('{')?;
    let e = parse_inner_expr(cur)?;
    cur.expect_char('}')?;
    Ok(e)
}

/// Parse the body of a brace expression up to (not consuming) its `}`.
fn parse_inner_expr(cur: &mut Cursor<'_>) -> Result<Expr, ParseError> {
    cur.skip_ws();
    if cur.eat_keyword("for") {
        return parse_for(cur);
    }
    if cur.eat_keyword("if") {
        let cond = parse_cond(cur)?;
        if !cur.eat_keyword("then") {
            return Err(cur.error("expected `then` in conditional"));
        }
        let body = parse_mixed(cur, &['}'])?;
        return Ok(Expr::If { cond, body: Box::new(body) });
    }
    if cur.eat_keyword("process-stream") || cur.eat_keyword("ps") {
        return Err(
            cur.error("`process-stream` is FluX syntax, not XQuery−; use flux_core::parse_flux")
        );
    }
    cur.skip_ws();
    let (var, path) = cur.parse_var_path()?;
    Ok(match path {
        Some(path) => Expr::OutputPath { var, path },
        None => Expr::OutputVar { var },
    })
}

fn parse_for(cur: &mut Cursor<'_>) -> Result<Expr, ParseError> {
    let var = cur.parse_var()?;
    if !cur.eat_keyword("in") {
        return Err(cur.error("expected `in` in for-loop"));
    }
    let (in_var, path) = cur.parse_var_path()?;
    let path = path.ok_or_else(|| cur.error("for-loop requires a path (`$y/a/…`)"))?;
    let pred = if cur.eat_keyword("where") { Some(parse_cond(cur)?) } else { None };
    if !cur.eat_keyword("return") {
        return Err(cur.error("expected `return` in for-loop"));
    }
    let body = parse_mixed(cur, &['}'])?;
    Ok(Expr::For { var, in_var, path, pred, body: Box::new(body) })
}

/// Parse a condition (`or` has lowest precedence, then `and`, then `not`).
pub fn parse_cond(cur: &mut Cursor<'_>) -> Result<Cond, ParseError> {
    let mut left = parse_cond_and(cur)?;
    while cur.eat_keyword("or") {
        let right = parse_cond_and(cur)?;
        left = Cond::Or(Box::new(left), Box::new(right));
    }
    Ok(left)
}

fn parse_cond_and(cur: &mut Cursor<'_>) -> Result<Cond, ParseError> {
    let mut left = parse_cond_unary(cur)?;
    while cur.eat_keyword("and") {
        let right = parse_cond_unary(cur)?;
        left = left.and(right);
    }
    Ok(left)
}

fn parse_cond_unary(cur: &mut Cursor<'_>) -> Result<Cond, ParseError> {
    if cur.eat_keyword("not") {
        return Ok(Cond::Not(Box::new(parse_cond_unary(cur)?)));
    }
    if cur.eat_keyword("true") {
        return Ok(Cond::True);
    }
    if cur.eat_keyword("exists") {
        let parenthesized = cur.eat_char('(');
        let p = parse_pathref(cur)?;
        if parenthesized {
            cur.expect_char(')')?;
        }
        return Ok(Cond::Atom(Atom::Exists(p)));
    }
    if cur.eat_keyword("empty") {
        cur.expect_char('(')?;
        let p = parse_pathref(cur)?;
        cur.expect_char(')')?;
        return Ok(Cond::Not(Box::new(Cond::Atom(Atom::Exists(p)))));
    }
    cur.skip_ws();
    if cur.peek() == Some('(') {
        // Parenthesized subcondition.
        cur.bump();
        let inner = parse_cond(cur)?;
        cur.expect_char(')')?;
        return Ok(inner);
    }
    // An atomic comparison.
    let left = parse_pathref(cur)?;
    let op = parse_relop(cur)?;
    let right = parse_cmp_rhs(cur)?;
    Ok(Cond::Atom(Atom::Cmp { left, op, right }))
}

fn parse_pathref(cur: &mut Cursor<'_>) -> Result<PathRef, ParseError> {
    let (var, path) = cur.parse_var_path()?;
    let path = path.ok_or_else(|| cur.error("conditions require a path below the variable"))?;
    Ok(PathRef { var, path })
}

fn parse_relop(cur: &mut Cursor<'_>) -> Result<RelOp, ParseError> {
    cur.skip_ws();
    match cur.peek() {
        Some('=') => {
            cur.bump();
            Ok(RelOp::Eq)
        }
        Some('<') => {
            cur.bump();
            if cur.peek() == Some('=') {
                cur.bump();
                Ok(RelOp::Le)
            } else {
                Ok(RelOp::Lt)
            }
        }
        Some('>') => {
            cur.bump();
            if cur.peek() == Some('=') {
                cur.bump();
                Ok(RelOp::Ge)
            } else {
                Ok(RelOp::Gt)
            }
        }
        other => Err(cur.error(format!("expected a comparison operator, found {other:?}"))),
    }
}

fn parse_cmp_rhs(cur: &mut Cursor<'_>) -> Result<CmpRhs, ParseError> {
    cur.skip_ws();
    match cur.peek() {
        Some('$') | Some('/') => Ok(CmpRhs::Path(parse_pathref(cur)?)),
        Some('"') | Some('\'') => {
            let quote = cur.bump().unwrap();
            let mut s = String::new();
            loop {
                match cur.bump() {
                    Some(c) if c == quote => break,
                    Some(c) => s.push(c),
                    None => return Err(cur.error("unterminated string literal")),
                }
            }
            Ok(CmpRhs::Const(s))
        }
        Some('(') => {
            // `(c * $y/π)` — the parenthesized scaled-path form of Q11.
            cur.bump();
            let rhs = parse_scaled_or_number(cur)?;
            cur.expect_char(')')?;
            Ok(rhs)
        }
        Some(c) if c.is_ascii_digit() || c == '-' || c == '+' => parse_scaled_or_number(cur),
        other => Err(cur.error(format!("expected a comparison right-hand side, found {other:?}"))),
    }
}

fn parse_scaled_or_number(cur: &mut Cursor<'_>) -> Result<CmpRhs, ParseError> {
    cur.skip_ws();
    let start = cur.offset();
    while let Some(c) = cur.peek() {
        if c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E') {
            cur.bump();
        } else {
            break;
        }
    }
    let lit = cur.src[start..cur.offset()].to_string();
    if lit.is_empty() {
        return Err(cur.error("expected a numeric literal"));
    }
    if cur.eat_char('*') {
        let factor: f64 =
            lit.parse().map_err(|_| cur.error(format!("bad numeric factor `{lit}`")))?;
        let path = parse_pathref(cur)?;
        Ok(CmpRhs::Scaled { factor, path })
    } else {
        Ok(CmpRhs::Const(lit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_only() {
        assert_eq!(parse_xquery("<a><b/></a>").unwrap(), Expr::str("<a><b/></a>"));
    }

    #[test]
    fn intro_query_q3() {
        let q = parse_xquery(
            "<results>\n{ for $b in $ROOT/bib/book return\n  <result> {$b/title} {$b/author} </result> }\n</results>",
        )
        .unwrap();
        let Expr::Seq(items) = &q else { panic!("expected sequence") };
        assert_eq!(items.len(), 3);
        assert_eq!(items[0], Expr::str("<results>"));
        assert_eq!(items[2], Expr::str("</results>"));
        let Expr::For { var, in_var, path, pred, body } = &items[1] else { panic!() };
        assert_eq!(var, "b");
        assert_eq!(in_var, "ROOT");
        assert_eq!(path.to_string(), "bib/book");
        assert!(pred.is_none());
        let Expr::Seq(inner) = &**body else { panic!() };
        assert_eq!(inner.len(), 4);
        assert_eq!(
            inner[1],
            Expr::OutputPath { var: "b".into(), path: Path::parse("title").unwrap() }
        );
    }

    #[test]
    fn where_clause_with_and() {
        let q = parse_xquery(
            "{ for $b in $ROOT/bib/book where $b/publisher = \"Addison-Wesley\" and $b/year > 1991 \
             return <book> {$b/year} {$b/title} </book> }",
        )
        .unwrap();
        let Expr::For { pred: Some(pred), .. } = &q else { panic!() };
        let Cond::And(l, r) = pred else { panic!("expected and") };
        assert_eq!(l.to_string(), "$b/publisher = \"Addison-Wesley\"");
        assert_eq!(r.to_string(), "$b/year > 1991");
    }

    #[test]
    fn absolute_paths_imply_root() {
        let q = parse_xquery("{ for $p in /site/people/person return {$p/name} }").unwrap();
        let Expr::For { in_var, path, .. } = &q else { panic!() };
        assert_eq!(in_var, "ROOT");
        assert_eq!(path.to_string(), "site/people/person");
    }

    #[test]
    fn empty_is_not_exists() {
        let q = parse_xquery(
            "{ for $p in /site/people/person where empty($p/person_income) return {$p} }",
        )
        .unwrap();
        let Expr::For { pred: Some(pred), .. } = &q else { panic!() };
        assert_eq!(pred.to_string(), "empty($p/person_income)");
        assert!(matches!(pred, Cond::Not(_)));
    }

    #[test]
    fn scaled_comparison_q11() {
        let c = parse_condition("$p/profile/profile_income > (5000 * $o/initial)").unwrap();
        let Cond::Atom(Atom::Cmp { right: CmpRhs::Scaled { factor, path }, op, .. }) = &c else {
            panic!("expected scaled comparison, got {c:?}")
        };
        assert_eq!(*factor, 5000.0);
        assert_eq!(*op, RelOp::Gt);
        assert_eq!(path.to_string(), "$o/initial");
        // Unparenthesized spelling too:
        parse_condition("$p/a > 2 * $o/b").unwrap();
    }

    #[test]
    fn join_condition() {
        let c = parse_condition("$article/author = $book/editor").unwrap();
        assert_eq!(c.to_string(), "$article/author = $book/editor");
    }

    #[test]
    fn boolean_structure() {
        let c = parse_condition("not ($a/x = 1 or $a/y = 2) and true").unwrap();
        let Cond::And(l, _) = &c else { panic!() };
        assert!(matches!(&**l, Cond::Not(_)));
    }

    #[test]
    fn exists_with_and_without_parens() {
        parse_condition("exists $x/a").unwrap();
        parse_condition("exists($x/a/b)").unwrap();
    }

    #[test]
    fn all_relops() {
        for (src, op) in [
            ("$x/a = 1", RelOp::Eq),
            ("$x/a < 1", RelOp::Lt),
            ("$x/a <= 1", RelOp::Le),
            ("$x/a > 1", RelOp::Gt),
            ("$x/a >= 1", RelOp::Ge),
        ] {
            let c = parse_condition(src).unwrap();
            let Cond::Atom(Atom::Cmp { op: got, .. }) = c else { panic!() };
            assert_eq!(got, op, "{src}");
        }
    }

    #[test]
    fn output_var_and_path() {
        assert_eq!(parse_xquery("{$x}").unwrap(), Expr::output_var("x"));
        assert_eq!(
            parse_xquery("{ $b/title }").unwrap(),
            Expr::OutputPath { var: "b".into(), path: Path::parse("title").unwrap() }
        );
    }

    #[test]
    fn nested_braces() {
        let q = parse_xquery("{ for $a in $x/a return { for $b in $a/b return {$b} } }").unwrap();
        let Expr::For { body, .. } = &q else { panic!() };
        assert!(matches!(&**body, Expr::For { .. }));
    }

    #[test]
    fn errors() {
        assert!(parse_xquery("{ for $x in return {$x} }").is_err());
        assert!(parse_xquery("{ for $x $y }").is_err());
        assert!(parse_xquery("}").is_err());
        assert!(parse_xquery("{ $x ").is_err());
        assert!(parse_xquery("{ if $x/a then {$x}").is_err());
        assert!(parse_condition("$x/a !! 3").is_err());
        assert!(parse_condition("$x/a = ").is_err());
        assert!(parse_xquery("{ ps $x: on a as $y return {$y} }").is_err());
    }

    #[test]
    fn whitespace_trimming_at_brace_boundaries() {
        let q = parse_xquery("<result> {$t} {$a} </result>").unwrap();
        let Expr::Seq(items) = &q else { panic!() };
        assert_eq!(items.len(), 4); // the solitary space between braces is dropped
        assert_eq!(items[0], Expr::str("<result>"));
        assert_eq!(items[3], Expr::str("</result>"));
    }

    #[test]
    fn interior_whitespace_preserved() {
        let q = parse_xquery("hello brave world").unwrap();
        assert_eq!(q, Expr::str("hello brave world"));
    }
}
