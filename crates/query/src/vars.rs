//! Free variables and fresh-variable generation.

use std::collections::BTreeSet;

use crate::ast::Expr;
use crate::cond::Cond;

/// The free variables of an expression (paper, Section 3.2): `{$x/π}` and
/// `{$x}` contribute `$x`; conditions contribute their variables; `for`
/// binds its loop variable.
pub fn free_vars(e: &Expr) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    collect_free(e, &mut Vec::new(), &mut out);
    out
}

fn collect_free(e: &Expr, bound: &mut Vec<String>, out: &mut BTreeSet<String>) {
    match e {
        Expr::Empty | Expr::Str(_) => {}
        Expr::Seq(items) => items.iter().for_each(|i| collect_free(i, bound, out)),
        Expr::OutputPath { var, .. } | Expr::OutputVar { var } => {
            if !bound.iter().any(|b| b == var) {
                out.insert(var.clone());
            }
        }
        Expr::If { cond, body } => {
            collect_cond_vars(cond, bound, out);
            collect_free(body, bound, out);
        }
        Expr::For { var, in_var, path: _, pred, body } => {
            if !bound.iter().any(|b| b == in_var) {
                out.insert(in_var.clone());
            }
            bound.push(var.clone());
            if let Some(p) = pred {
                collect_cond_vars(p, bound, out);
            }
            collect_free(body, bound, out);
            bound.pop();
        }
    }
}

fn collect_cond_vars(c: &Cond, bound: &[String], out: &mut BTreeSet<String>) {
    c.visit_paths(&mut |p| {
        if !bound.contains(&p.var) {
            out.insert(p.var.clone());
        }
    });
}

/// Generates variable names that do not collide with any name already used
/// in a query (normalization rule 3's "`$x0` new").
#[derive(Debug, Clone, Default)]
pub struct VarGen {
    used: BTreeSet<String>,
    counter: usize,
}

impl VarGen {
    /// Seed with every variable name occurring anywhere in the expression
    /// (bound or free).
    pub fn from_expr(e: &Expr) -> VarGen {
        let mut used = BTreeSet::new();
        collect_all_vars(e, &mut used);
        VarGen { used, counter: 0 }
    }

    /// Mark a name as taken.
    pub fn reserve(&mut self, name: &str) {
        self.used.insert(name.to_string());
    }

    /// Produce a fresh name based on `hint` (usually the path step the
    /// variable will range over, so generated queries stay readable).
    pub fn fresh(&mut self, hint: &str) -> String {
        if !hint.is_empty() && self.used.insert(hint.to_string()) {
            return hint.to_string();
        }
        loop {
            let candidate = format!("{hint}_{}", self.counter);
            self.counter += 1;
            if self.used.insert(candidate.clone()) {
                return candidate;
            }
        }
    }
}

fn collect_all_vars(e: &Expr, out: &mut BTreeSet<String>) {
    match e {
        Expr::Empty | Expr::Str(_) => {}
        Expr::Seq(items) => items.iter().for_each(|i| collect_all_vars(i, out)),
        Expr::OutputPath { var, .. } | Expr::OutputVar { var } => {
            out.insert(var.clone());
        }
        Expr::If { cond, body } => {
            cond.visit_paths(&mut |p| {
                out.insert(p.var.clone());
            });
            collect_all_vars(body, out);
        }
        Expr::For { var, in_var, pred, body, .. } => {
            out.insert(var.clone());
            out.insert(in_var.clone());
            if let Some(p) = pred {
                p.visit_paths(&mut |pr| {
                    out.insert(pr.var.clone());
                });
            }
            collect_all_vars(body, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_xquery;

    #[test]
    fn free_vars_of_query() {
        let e = parse_xquery("{ for $b in $ROOT/bib/book return {$b/title} }").unwrap();
        assert_eq!(free_vars(&e).into_iter().collect::<Vec<_>>(), ["ROOT"]);
    }

    #[test]
    fn bound_variables_are_not_free() {
        let e = parse_xquery("{ for $x in $y/a where $x/b = 1 return {$x} {$z} }").unwrap();
        let fv = free_vars(&e);
        assert!(fv.contains("y") && fv.contains("z"));
        assert!(!fv.contains("x"));
    }

    #[test]
    fn condition_variables_are_free() {
        let e = parse_xquery("{ if $w/a = $v/b then <x> }").unwrap();
        let fv = free_vars(&e);
        assert_eq!(fv.into_iter().collect::<Vec<_>>(), ["v", "w"]);
    }

    #[test]
    fn where_can_use_loop_variable() {
        let e = parse_xquery("{ for $x in $y/a where $x/b = 1 return <z> }").unwrap();
        assert_eq!(free_vars(&e).into_iter().collect::<Vec<_>>(), ["y"]);
    }

    #[test]
    fn fresh_names_avoid_collisions() {
        let e = parse_xquery("{ for $book in $ROOT/bib return {$book} }").unwrap();
        let mut gen = VarGen::from_expr(&e);
        let a = gen.fresh("book");
        assert_ne!(a, "book");
        let b = gen.fresh("book");
        assert_ne!(a, b);
        let c = gen.fresh("year");
        assert_eq!(c, "year");
    }
}
