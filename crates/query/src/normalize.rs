//! The XQuery− normal form (paper, Figure 1 and Theorem 4.1).
//!
//! An expression in normal form has: (1) only simple-step paths outside
//! conditions, (2) no conditional for-loops, and (3) conditionals only
//! around fixed strings and `{$x}`. The six rules of Figure 1 are applied
//! "downwards" until no rule matches; we implement this as a single
//! recursive pass that is easily seen to apply each rule the same number of
//! times a fair fixpoint engine would — `O(|Q|)` applications (Theorem 4.1),
//! which [`NormalizeStats`] lets tests verify.

use crate::ast::Expr;
use crate::cond::Cond;
use crate::path::Path;
use crate::vars::VarGen;

/// Counters for Theorem 4.1's bound.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NormalizeStats {
    /// Rule 1: conditional for-loop → `if` inside the loop body.
    pub rule_for_where: usize,
    /// Rule 2: `{$y/π}` → for-loop.
    pub rule_output_path: usize,
    /// Rule 3: multi-step for-loop path → nested loops.
    pub rule_path_split: usize,
    /// Rule 4: `if` pushed through a for-loop.
    pub rule_if_for: usize,
    /// Rule 5: `if` distributed over a sequence (counted per binary split).
    pub rule_if_seq: usize,
    /// Rule 6: nested `if`s merged by conjunction.
    pub rule_if_if: usize,
}

impl NormalizeStats {
    /// Total rule applications.
    pub fn total(&self) -> usize {
        self.rule_for_where
            + self.rule_output_path
            + self.rule_path_split
            + self.rule_if_for
            + self.rule_if_seq
            + self.rule_if_if
    }
}

/// Normalize an expression (Figure 1). The result is unique (Theorem 4.1).
pub fn normalize(e: &Expr) -> Expr {
    normalize_with_stats(e).0
}

/// Normalize and report how many rule applications were performed.
pub fn normalize_with_stats(e: &Expr) -> (Expr, NormalizeStats) {
    let mut gen = VarGen::from_expr(e);
    let mut stats = NormalizeStats::default();
    let out = norm(e, &mut gen, &mut stats);
    (out, stats)
}

fn norm(e: &Expr, gen: &mut VarGen, stats: &mut NormalizeStats) -> Expr {
    match e {
        Expr::Empty => Expr::Empty,
        Expr::Str(s) => Expr::Str(s.clone()),
        Expr::OutputVar { var } => Expr::OutputVar { var: var.clone() },
        Expr::Seq(items) => {
            Expr::seq(items.iter().map(|i| norm(i, gen, stats)).collect::<Vec<_>>())
        }
        Expr::OutputPath { var, path } => {
            // Rule 2, then rule 3 for the remaining steps.
            stats.rule_output_path += 1;
            stats.rule_path_split += path.len() - 1;
            expand_path(var.clone(), path, gen, |leaf| Expr::OutputVar { var: leaf })
        }
        Expr::For { var, in_var, path, pred, body } => {
            // Rule 1: move the `where` condition into the body.
            let body2: Expr = match pred {
                Some(chi) => {
                    stats.rule_for_where += 1;
                    Expr::If { cond: chi.clone(), body: body.clone() }
                }
                None => (**body).clone(),
            };
            let nb = norm(&body2, gen, stats);
            // Rule 3: split multi-step paths with fresh intermediate
            // variables.
            stats.rule_path_split += path.len() - 1;
            let steps = path.steps();
            let mut expr = Expr::For {
                var: var.clone(),
                in_var: String::new(), // patched below
                path: Path::from_steps([steps.last().unwrap().clone()]),
                pred: None,
                body: Box::new(nb),
            };
            // Wrap outwards: the last step binds `var`; earlier steps get
            // fresh variables named after the step.
            let mut parents: Vec<String> = Vec::with_capacity(steps.len());
            parents.push(in_var.clone());
            for step in &steps[..steps.len() - 1] {
                parents.push(gen.fresh(step));
            }
            // parents[i] is the variable the i-th step starts from.
            for i in (0..steps.len()).rev() {
                match &mut expr {
                    Expr::For { in_var: iv, .. } if iv.is_empty() => *iv = parents[i].clone(),
                    _ => {}
                }
                if i > 0 {
                    expr = Expr::For {
                        var: parents[i].clone(),
                        in_var: String::new(),
                        path: Path::from_steps([steps[i - 1].clone()]),
                        pred: None,
                        body: Box::new(expr),
                    };
                }
            }
            match &mut expr {
                Expr::For { in_var: iv, .. } if iv.is_empty() => *iv = parents[0].clone(),
                _ => {}
            }
            expr
        }
        Expr::If { cond, body } => {
            let nb = norm(body, gen, stats);
            push_if(cond.clone(), nb, stats)
        }
    }
}

/// Expand a multi-step path into nested for-loops (rules 2+3), with `leaf`
/// building the innermost body from the final bound variable.
fn expand_path(
    in_var: String,
    path: &Path,
    gen: &mut VarGen,
    leaf: impl FnOnce(String) -> Expr,
) -> Expr {
    let steps = path.steps();
    let vars: Vec<String> = steps.iter().map(|s| gen.fresh(s)).collect();
    let mut expr = leaf(vars.last().unwrap().clone());
    for i in (0..steps.len()).rev() {
        let parent = if i == 0 { in_var.clone() } else { vars[i - 1].clone() };
        expr = Expr::For {
            var: vars[i].clone(),
            in_var: parent,
            path: Path::from_steps([steps[i].clone()]),
            pred: None,
            body: Box::new(expr),
        };
    }
    expr
}

/// Push a condition down into an already-normalized expression
/// (rules 4, 5, 6). `{if χ then ε}` is dropped (it outputs nothing either
/// way), keeping the Seq representation canonical.
fn push_if(chi: Cond, body: Expr, stats: &mut NormalizeStats) -> Expr {
    match body {
        Expr::Empty => Expr::Empty,
        Expr::Seq(items) => {
            stats.rule_if_seq += items.len().saturating_sub(1);
            Expr::seq(items.into_iter().map(|i| push_if(chi.clone(), i, stats)).collect::<Vec<_>>())
        }
        Expr::For { var, in_var, path, pred, body } => {
            debug_assert!(pred.is_none(), "body is normalized");
            stats.rule_if_for += 1;
            let inner = push_if(chi, *body, stats);
            Expr::For { var, in_var, path, pred, body: Box::new(inner) }
        }
        Expr::If { cond, body } => {
            stats.rule_if_if += 1;
            Expr::If { cond: chi.and(cond), body }
        }
        leaf @ (Expr::Str(_) | Expr::OutputVar { .. }) => {
            Expr::If { cond: chi, body: Box::new(leaf) }
        }
        Expr::OutputPath { .. } => unreachable!("body is normalized"),
    }
}

/// Check the three normal-form properties.
pub fn is_normal_form(e: &Expr) -> bool {
    match e {
        Expr::Empty | Expr::Str(_) | Expr::OutputVar { .. } => true,
        Expr::OutputPath { .. } => false,
        Expr::Seq(items) => items.iter().all(|i| {
            // A canonical Seq has no nested sequences or ε items.
            !matches!(i, Expr::Seq(_) | Expr::Empty) && is_normal_form(i)
        }),
        Expr::For { path, pred, body, .. } => {
            pred.is_none() && path.len() == 1 && is_normal_form(body)
        }
        Expr::If { body, .. } => matches!(**body, Expr::Str(_) | Expr::OutputVar { .. }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_xquery;

    #[track_caller]
    fn norm_str(src: &str) -> Expr {
        let e = parse_xquery(src).unwrap();
        let n = normalize(&e);
        assert!(is_normal_form(&n), "not normal: {n}");
        n
    }

    #[test]
    fn already_normal_is_unchanged() {
        let e = parse_xquery("<a> { for $b in $x/c return {$b} } </a>").unwrap();
        assert_eq!(normalize(&e), e);
        assert!(is_normal_form(&e));
    }

    #[test]
    fn output_path_becomes_loop() {
        let n = norm_str("{$b/title}");
        let Expr::For { var, in_var, path, body, .. } = &n else { panic!("{n}") };
        assert_eq!(in_var, "b");
        assert_eq!(path.to_string(), "title");
        assert_eq!(**body, Expr::OutputVar { var: var.clone() });
    }

    #[test]
    fn multi_step_paths_split() {
        let n = norm_str("{ for $b in $ROOT/bib/book return {$b} }");
        let Expr::For { var: v1, in_var, path: p1, body, .. } = &n else { panic!() };
        assert_eq!(in_var, "ROOT");
        assert_eq!(p1.to_string(), "bib");
        let Expr::For { var: v2, in_var: iv2, path: p2, body: b2, .. } = &**body else { panic!() };
        assert_eq!(iv2, v1);
        assert_eq!(p2.to_string(), "book");
        assert_eq!(v2, "b", "the original variable binds the last step");
        assert_eq!(**b2, Expr::OutputVar { var: "b".into() });
    }

    #[test]
    fn example_4_2_q1_normalization_shape() {
        // XMP Q1 from Example 4.2. The paper's Q1' is:
        //   for $bib in $ROOT/bib: for $b in $bib/book:
        //     {if χ then <book>}
        //     {for $year in $b/year return {if χ then {$year}}}
        //     {for $title in $b/title return {if χ then {$title}}}
        //     {if χ then </book>}
        let n = norm_str(
            "<bib>{ for $b in $ROOT/bib/book \
               where $b/publisher = \"Addison-Wesley\" and $b/year > 1991 \
               return <book> {$b/year} {$b/title} </book> }</bib>",
        );
        let Expr::Seq(top) = &n else { panic!("{n}") };
        assert_eq!(top[0], Expr::str("<bib>"));
        let Expr::For { path, body, .. } = &top[1] else { panic!() };
        assert_eq!(path.to_string(), "bib");
        let Expr::For { path: p2, body: inner, .. } = &**body else { panic!() };
        assert_eq!(p2.to_string(), "book");
        let Expr::Seq(items) = &**inner else { panic!("{inner}") };
        assert_eq!(items.len(), 4);
        assert!(matches!(&items[0], Expr::If { body, .. } if **body == Expr::str("<book>")));
        let Expr::For { path: py, body: yb, .. } = &items[1] else { panic!() };
        assert_eq!(py.to_string(), "year");
        assert!(
            matches!(&**yb, Expr::If { body, .. } if matches!(&**body, Expr::OutputVar { .. }))
        );
        let Expr::For { path: pt, .. } = &items[2] else { panic!() };
        assert_eq!(pt.to_string(), "title");
        assert!(matches!(&items[3], Expr::If { body, .. } if **body == Expr::str("</book>")));
    }

    #[test]
    fn nested_ifs_merge() {
        let n = norm_str("{ if $a/x = 1 then { if $a/y = 2 then ok } }");
        let Expr::If { cond, body } = &n else { panic!("{n}") };
        assert_eq!(**body, Expr::str("ok"));
        assert!(matches!(cond, Cond::And(_, _)));
    }

    #[test]
    fn if_distributes_over_sequences_and_loops() {
        let n = norm_str("{ if $a/x = 1 then <r> { for $b in $a/c return {$b} } </r> }");
        let Expr::Seq(items) = &n else { panic!("{n}") };
        assert_eq!(items.len(), 3);
        assert!(matches!(&items[0], Expr::If { .. }));
        let Expr::For { body, .. } = &items[1] else { panic!() };
        assert!(matches!(&**body, Expr::If { .. }), "condition pushed through the loop");
        assert!(matches!(&items[2], Expr::If { .. }));
    }

    #[test]
    fn if_over_empty_vanishes() {
        let e = Expr::If {
            cond: crate::parser::parse_condition("$a/x = 1").unwrap(),
            body: Box::new(Expr::Empty),
        };
        assert_eq!(normalize(&e), Expr::Empty);
    }

    #[test]
    fn idempotent() {
        for src in [
            "<results>{ for $b in $ROOT/bib/book return <result> {$b/title} {$b/author} </result> }</results>",
            "{ for $p in /site/people/person where empty($p/person_income) return {$p} }",
            "{ if $a/x = 1 then <r> { for $b in $a/c return {$b/d/e} } </r> }",
        ] {
            let once = normalize(&parse_xquery(src).unwrap());
            let twice = normalize(&once);
            assert_eq!(once, twice, "normalize must be idempotent on {src}");
            let (_, stats) = normalize_with_stats(&once);
            assert_eq!(stats.total(), 0, "no rules apply to a normal form");
        }
    }

    #[test]
    fn fresh_variables_do_not_collide() {
        // `bib` is already taken as a variable; rule 3 must pick a new name.
        let n = norm_str("{ for $bib in $ROOT/x return { for $b in $bib/bib/book return {$b} } }");
        let mut names = Vec::new();
        fn collect(e: &Expr, out: &mut Vec<String>) {
            if let Expr::For { var, body, .. } = e {
                out.push(var.clone());
                collect(body, out);
            } else if let Expr::Seq(items) = e {
                items.iter().for_each(|i| collect(i, out));
            }
        }
        collect(&n, &mut names);
        let unique: std::collections::BTreeSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "all loop variables distinct: {names:?}");
    }

    #[test]
    fn linear_rule_applications() {
        // Theorem 4.1: O(|Q|) rule applications. Build a deep query and
        // check the counter stays within a small multiple of |Q|.
        let mut src = String::from("{ for $a in $ROOT/r/s/t where $a/k = 1 return ");
        for i in 0..20 {
            src.push_str(&format!(
                "{{ for $b{i} in $a/c{i} return <x{i}> {{$b{i}/d/e}} </x{i}> }}"
            ));
        }
        src.push('}');
        let e = parse_xquery(&src).unwrap();
        let (n, stats) = normalize_with_stats(&e);
        assert!(is_normal_form(&n));
        assert!(
            stats.total() <= 4 * e.size(),
            "rule applications {} exceed 4·|Q| = {}",
            stats.total(),
            4 * e.size()
        );
    }
}
