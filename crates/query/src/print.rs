//! Concrete-syntax printer for XQuery− expressions.
//!
//! `parse_xquery(&expr.to_string())` reproduces `expr` (up to whitespace),
//! which the round-trip tests rely on.

use std::fmt;

use crate::ast::Expr;

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Empty => Ok(()),
            Expr::Str(s) => f.write_str(s),
            // No separator: brace expressions self-delimit, and a separator
            // between adjacent strings would change what the query outputs.
            Expr::Seq(items) => {
                for it in items {
                    write!(f, "{it}")?;
                }
                Ok(())
            }
            Expr::For { var, in_var, path, pred, body } => {
                write!(f, "{{ for ${var} in ${in_var}/{path}")?;
                if let Some(p) = pred {
                    write!(f, " where {p}")?;
                }
                write!(f, " return {body} }}")
            }
            Expr::OutputPath { var, path } => write!(f, "{{${var}/{path}}}"),
            Expr::OutputVar { var } => write!(f, "{{${var}}}"),
            Expr::If { cond, body } => write!(f, "{{ if {cond} then {body} }}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_xquery;

    #[track_caller]
    fn roundtrip(src: &str) {
        let e = parse_xquery(src).unwrap();
        let printed = e.to_string();
        let back =
            parse_xquery(&printed).unwrap_or_else(|err| panic!("reparse of `{printed}`: {err}"));
        assert_eq!(back, e, "printed form: {printed}");
    }

    #[test]
    fn roundtrips() {
        roundtrip("<a>hello</a>");
        roundtrip("{$x}");
        roundtrip("{$b/title}");
        roundtrip("<results>{ for $b in $ROOT/bib/book return <result> {$b/title} {$b/author} </result> }</results>");
        roundtrip("{ for $b in /site/people/person where empty($p/person_income) return {$p} }");
        roundtrip("{ if $b/year > 1991 and $b/publisher = \"AW\" then <book> }");
        roundtrip(
            "{ for $o in $x/a where $p/profile/profile_income > (5000 * $o/initial) return {$o} }",
        );
        roundtrip("{ if not ($a/x = 1 or true) then ok }");
    }
}
