//! A minimal DOM for buffered data and baseline engines.
//!
//! The FluX engine keeps *streams* flowing and only materializes the parts of
//! the input that the buffer trees (paper, Section 5) select. Those buffered
//! fragments — and the whole document in the DOM baseline engines — are
//! represented by [`Node`] trees. A `Node` is exactly a well-formed sequence
//! of SAX events (start, …children…, end), so replaying a buffer is just a
//! pre-order walk.

use std::fmt;
use std::io::BufRead;

use crate::events::{Event, OwnedEvent};
use crate::reader::{Reader, XmlError, XmlErrorKind};

/// An element node: a name plus an ordered list of children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Tag name.
    pub name: Box<str>,
    /// Children in document order.
    pub children: Vec<Child>,
}

/// A child of an element: a subelement or character data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Child {
    /// Element child.
    Elem(Node),
    /// Text child (entities already resolved).
    Text(Box<str>),
}

impl Node {
    /// Create an empty element.
    pub fn new(name: impl Into<Box<str>>) -> Self {
        Node { name: name.into(), children: Vec::new() }
    }

    /// Append an element child and return a mutable reference to it.
    pub fn push_elem(&mut self, name: impl Into<Box<str>>) -> &mut Node {
        self.children.push(Child::Elem(Node::new(name)));
        match self.children.last_mut() {
            Some(Child::Elem(n)) => n,
            _ => unreachable!(),
        }
    }

    /// Append a text child.
    pub fn push_text(&mut self, text: impl Into<Box<str>>) {
        self.children.push(Child::Text(text.into()));
    }

    /// Iterate over element children.
    pub fn elems(&self) -> impl Iterator<Item = &Node> {
        self.children.iter().filter_map(|c| match c {
            Child::Elem(n) => Some(n),
            Child::Text(_) => None,
        })
    }

    /// Iterate over element children with a given tag name.
    pub fn elems_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Node> + 'a {
        self.elems().filter(move |n| &*n.name == name)
    }

    /// The string value: concatenation of all descendant text, in document
    /// order (XPath `string()` semantics, which the paper's comparisons use).
    pub fn text(&self) -> String {
        let mut out = String::new();
        self.collect_text(&mut out);
        out
    }

    fn collect_text(&self, out: &mut String) {
        for c in &self.children {
            match c {
                Child::Text(t) => out.push_str(t),
                Child::Elem(n) => n.collect_text(out),
            }
        }
    }

    /// Pre-order event walk: `Start(name)`, children, `End(name)`.
    pub fn visit_events<'a, F: FnMut(Event<'a>)>(&'a self, f: &mut F) {
        f(Event::Start(&self.name));
        for c in &self.children {
            match c {
                Child::Text(t) => f(Event::Text(t)),
                Child::Elem(n) => n.visit_events(f),
            }
        }
        f(Event::End(&self.name));
    }

    /// Materialize the event list for this subtree.
    pub fn to_events(&self) -> Vec<OwnedEvent> {
        let mut out = Vec::new();
        self.visit_events(&mut |ev| out.push(ev.to_owned()));
        out
    }

    /// Serialize this subtree to XML text.
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.visit_events(&mut |ev| out.push_str(&ev.to_string()));
        out
    }

    /// Bytes of event payload this subtree occupies when buffered: two copies
    /// of every element name (start + end event) plus all text. This mirrors
    /// the paper's buffer memory metric (buffers are lists of SAX events).
    pub fn buffered_bytes(&self) -> usize {
        let mut total = 2 * self.name.len();
        for c in &self.children {
            total += match c {
                Child::Text(t) => t.len(),
                Child::Elem(n) => n.buffered_bytes(),
            };
        }
        total
    }

    /// Number of element nodes in this subtree (including self).
    pub fn element_count(&self) -> usize {
        1 + self.elems().map(Node::element_count).sum::<usize>()
    }

    /// Resolve a fixed path `a1/a2/…/an` relative to this node, collecting
    /// all matching descendants in document order.
    pub fn select<'a>(&'a self, path: &[impl AsRef<str>], out: &mut Vec<&'a Node>) {
        fn go<'a, S: AsRef<str>>(node: &'a Node, path: &[S], out: &mut Vec<&'a Node>) {
            match path.split_first() {
                None => out.push(node),
                Some((head, rest)) => {
                    let head = head.as_ref();
                    for c in &node.children {
                        if let Child::Elem(n) = c {
                            if &*n.name == head {
                                go(n, rest, out);
                            }
                        }
                    }
                }
            }
        }
        go(self, path, out)
    }

    /// Build a tree from a well-formed event slice (one root element).
    pub fn from_events<'a, I>(events: I) -> Result<Node, String>
    where
        I: IntoIterator<Item = Event<'a>>,
    {
        let mut stack: Vec<Node> = Vec::new();
        let mut root: Option<Node> = None;
        for ev in events {
            match ev {
                Event::Start(n) => stack.push(Node::new(n)),
                Event::Text(t) => match stack.last_mut() {
                    Some(top) => top.push_text(t),
                    None => return Err("text event outside any element".into()),
                },
                Event::End(n) => {
                    let done = stack.pop().ok_or("end event with no open element")?;
                    if &*done.name != n {
                        return Err(format!("end event </{n}> closes <{}>", done.name));
                    }
                    match stack.last_mut() {
                        Some(top) => top.children.push(Child::Elem(done)),
                        None => {
                            if root.is_some() {
                                return Err("multiple root elements in event stream".into());
                            }
                            root = Some(done);
                        }
                    }
                }
            }
        }
        if !stack.is_empty() {
            return Err(format!("{} unclosed element(s) in event stream", stack.len()));
        }
        root.ok_or_else(|| "empty event stream".into())
    }

    /// Parse a whole document from a reader into a tree.
    pub fn parse<R: BufRead>(reader: &mut Reader<R>) -> Result<Node, XmlError> {
        let mut stack: Vec<Node> = Vec::new();
        let mut root: Option<Node> = None;
        while let Some(ev) = reader.next_event()? {
            match ev {
                Event::Start(n) => stack.push(Node::new(n)),
                Event::Text(t) => {
                    if let Some(top) = stack.last_mut() {
                        top.push_text(t);
                    }
                }
                Event::End(_) => {
                    let done = stack.pop().expect("reader guarantees matched tags");
                    match stack.last_mut() {
                        Some(top) => top.children.push(Child::Elem(done)),
                        None => root = Some(done),
                    }
                }
            }
        }
        root.ok_or(XmlError { kind: XmlErrorKind::UnexpectedEof, offset: 0 })
    }

    /// Parse a document held in a string.
    pub fn parse_str(xml: &str) -> Result<Node, XmlError> {
        Node::parse(&mut Reader::from_str(xml))
    }

    /// Serialize this subtree as its pre-order event walk (the snapshot
    /// form used by `flux_state` consumers — a `Node` *is* a well-formed
    /// event sequence, so the codec reuses that identity).
    pub fn state_save(&self, enc: &mut flux_state::Enc) {
        let mut count = 0usize;
        self.visit_events(&mut |_| count += 1);
        enc.put_usize(count);
        self.visit_events(&mut |ev| match ev {
            Event::Start(n) => {
                enc.put_u8(0);
                enc.put_str(n);
            }
            Event::Text(t) => {
                enc.put_u8(2);
                enc.put_str(t);
            }
            Event::End(_) => enc.put_u8(1),
        });
    }

    /// Rebuild a subtree saved by [`Node::state_save`]. Decoding is
    /// iterative (an explicit stack), so snapshot depth never threatens the
    /// call stack.
    pub fn state_load(dec: &mut flux_state::Dec<'_>) -> Result<Node, flux_state::StateError> {
        use flux_state::StateError;
        let n = dec.get_count()?;
        let mut stack: Vec<Node> = Vec::new();
        let mut root: Option<Node> = None;
        for _ in 0..n {
            if root.is_some() {
                return Err(StateError::Corrupt("events after the node tree closed"));
            }
            match dec.get_u8()? {
                0 => stack.push(Node::new(dec.get_str()?)),
                2 => match stack.last_mut() {
                    Some(top) => top.push_text(dec.get_str()?),
                    None => return Err(StateError::Corrupt("text outside the node tree")),
                },
                1 => {
                    let done = stack.pop().ok_or(StateError::Corrupt("unbalanced end event"))?;
                    match stack.last_mut() {
                        Some(top) => top.children.push(Child::Elem(done)),
                        None => root = Some(done),
                    }
                }
                _ => return Err(StateError::Corrupt("unknown node event kind")),
            }
        }
        root.ok_or(StateError::Corrupt("node tree not closed"))
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_xml())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bib() -> Node {
        Node::parse_str(
            "<bib><book><title>T1</title><author>A1</author><author>A2</author></book>\
             <book><title>T2</title></book></bib>",
        )
        .unwrap()
    }

    #[test]
    fn parse_and_serialize_roundtrip() {
        let n = bib();
        let xml = n.to_xml();
        assert_eq!(Node::parse_str(&xml).unwrap(), n);
    }

    #[test]
    fn select_paths() {
        let n = bib();
        let mut out = Vec::new();
        n.select(&["book", "author"], &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].text(), "A1");
        out.clear();
        n.select(&["book", "title"], &mut out);
        assert_eq!(out.iter().map(|n| n.text()).collect::<Vec<_>>(), ["T1", "T2"]);
        out.clear();
        n.select(&["nosuch"], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn select_empty_path_is_self() {
        let n = bib();
        let mut out = Vec::new();
        n.select(&[] as &[&str], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(&*out[0].name, "bib");
    }

    #[test]
    fn string_value_concatenates() {
        let n = Node::parse_str("<a>x<b>y</b>z</a>").unwrap();
        assert_eq!(n.text(), "xyz");
    }

    #[test]
    fn event_roundtrip() {
        let n = bib();
        let evs = n.to_events();
        let back = Node::from_events(evs.iter().map(|e| e.as_event())).unwrap();
        assert_eq!(back, n);
    }

    #[test]
    fn from_events_rejects_garbage() {
        assert!(Node::from_events([Event::Start("a")]).is_err());
        assert!(Node::from_events([Event::End("a")]).is_err());
        assert!(Node::from_events([Event::Start("a"), Event::End("b")]).is_err());
        assert!(Node::from_events([
            Event::Start("a"),
            Event::End("a"),
            Event::Start("b"),
            Event::End("b")
        ])
        .is_err());
        assert!(Node::from_events(std::iter::empty()).is_err());
    }

    #[test]
    fn buffered_bytes_counts_tags_twice() {
        let n = Node::parse_str("<ab>xyz</ab>").unwrap();
        assert_eq!(n.buffered_bytes(), 2 * 2 + 3);
    }

    #[test]
    fn element_count() {
        assert_eq!(bib().element_count(), 1 + 2 + 3 + 1);
    }

    #[test]
    fn elems_named_filters() {
        let n = bib();
        let book = n.elems().next().unwrap();
        assert_eq!(book.elems_named("author").count(), 2);
        assert_eq!(book.elems_named("title").count(), 1);
    }
}
