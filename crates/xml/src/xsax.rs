//! XSAX-style attribute-to-subelement conversion (paper, Appendix A).
//!
//! The paper's experiments use an attribute-free data model; their "XSAX
//! parser converted attributes into subelements on-the-fly", renaming
//! `<person id="…">` to `<person><person_id>…</person_id>`. The synthesized
//! element name is `{element}_{attribute}` — this is where the adapted XMark
//! query names `person_id`, `buyer_person`, `open_auction_id`,
//! `profile_income` come from. The reader performs the conversion directly
//! into its pending event arena (see
//! [`AttributeMode::ConvertToSubelements`](crate::reader::AttributeMode));
//! this module owns the naming rule.

/// Name of the subelement synthesized for attribute `attr` of `element`.
pub fn converted_name(element: &str, attr: &str) -> String {
    let mut s = String::with_capacity(element.len() + attr.len() + 1);
    converted_name_into(element, attr, &mut s);
    s
}

/// [`converted_name`] into a reusable buffer (the reader's conversion path
/// synthesizes one name per attribute; reusing the buffer keeps that
/// allocation-free after warmup).
pub fn converted_name_into(element: &str, attr: &str, out: &mut String) {
    out.clear();
    out.push_str(element);
    out.push('_');
    out.push_str(attr);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_the_paper() {
        assert_eq!(converted_name("person", "id"), "person_id");
        assert_eq!(converted_name("buyer", "person"), "buyer_person");
        assert_eq!(converted_name("open_auction", "id"), "open_auction_id");
        assert_eq!(converted_name("profile", "income"), "profile_income");
    }

    #[test]
    fn into_reuses_the_buffer() {
        let mut buf = String::from("junk");
        converted_name_into("a", "k", &mut buf);
        assert_eq!(buf, "a_k");
        converted_name_into("item", "featured", &mut buf);
        assert_eq!(buf, "item_featured");
    }
}
