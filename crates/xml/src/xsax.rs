//! XSAX-style attribute-to-subelement conversion (paper, Appendix A).
//!
//! The paper's experiments use an attribute-free data model; their "XSAX
//! parser converted attributes into subelements on-the-fly", renaming
//! `<person id="…">` to `<person><person_id>…</person_id>`. The synthesized
//! element name is `{element}_{attribute}` — this is where the adapted XMark
//! query names `person_id`, `buyer_person`, `open_auction_id`,
//! `profile_income` come from.

use crate::events::OwnedEvent;

/// Name of the subelement synthesized for attribute `attr` of `element`.
pub fn converted_name(element: &str, attr: &str) -> String {
    let mut s = String::with_capacity(element.len() + attr.len() + 1);
    s.push_str(element);
    s.push('_');
    s.push_str(attr);
    s
}

/// Produce the event sequence for a start tag with attributes:
/// `Start(element)` followed by one `Start/Text/End` triple per attribute,
/// in source order. The caller appends the element's real content afterwards.
pub fn convert_attributes(element: &str, attrs: &[(String, String)]) -> Vec<OwnedEvent> {
    let mut out = Vec::with_capacity(1 + attrs.len() * 3);
    out.push(OwnedEvent::Start(element.into()));
    for (name, value) in attrs {
        let sub = converted_name(element, name);
        out.push(OwnedEvent::Start(sub.clone().into_boxed_str()));
        if !value.is_empty() {
            out.push(OwnedEvent::Text(value.as_str().into()));
        }
        out.push(OwnedEvent::End(sub.into_boxed_str()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_the_paper() {
        assert_eq!(converted_name("person", "id"), "person_id");
        assert_eq!(converted_name("buyer", "person"), "buyer_person");
        assert_eq!(converted_name("open_auction", "id"), "open_auction_id");
        assert_eq!(converted_name("profile", "income"), "profile_income");
    }

    #[test]
    fn conversion_event_shape() {
        let evs = convert_attributes("person", &[("id".into(), "person0".into())]);
        let s: String = evs.iter().map(|e| e.to_string()).collect();
        assert_eq!(s, "<person><person_id>person0</person_id>");
    }

    #[test]
    fn empty_value_has_no_text_event() {
        let evs = convert_attributes("a", &[("k".into(), String::new())]);
        assert_eq!(evs.len(), 3); // Start a, Start a_k, End a_k
    }
}
