//! # flux-xml — streaming XML substrate for the FluX query engine
//!
//! The FluX paper (Koch et al., VLDB 2004) evaluates queries directly on
//! streams of SAX events. This crate provides everything the engine needs
//! from the XML layer, built from scratch:
//!
//! * [`reader::Reader`] — a pull-based streaming parser producing
//!   [`events::Event`]s (start element / end element / text). It checks
//!   well-formedness (tag nesting, single root) as it goes and can convert
//!   attributes into subelements on the fly, mirroring the paper's "XSAX"
//!   parser (Appendix A: `<person id="x">` becomes
//!   `<person><person_id>x</person_id>…`).
//! * [`writer::Writer`] — a streaming serializer that is the exact inverse of
//!   the reader; the FluX engine writes its output through it.
//! * [`tree::Node`] — a small DOM used by the baseline engines and by the
//!   runtime buffers (the paper's buffers hold well-formed event sequences,
//!   which are isomorphic to these subtrees).
//! * [`events::OwnedEvent`] — owned events for buffering and replay; data
//!   replayed from a buffer is indistinguishable from stream input
//!   (paper, Section 5).
//! * [`symbols::Symbols`] — the compile-time symbol table. Element names of
//!   the static vocabulary (DTD + query) are interned once into dense
//!   [`symbols::NameId`]s; a reader carrying the table
//!   ([`reader::Reader::with_symbols`]) hashes each tag name once at
//!   tokenization and yields [`events::ResolvedEvent`]s, so automaton
//!   steps, handler dispatch and buffer trees downstream work on integers.
//!   Out-of-vocabulary names map to the reserved
//!   [`symbols::NameId::UNKNOWN`].
//! * [`evbuf::EventBuf`] — arena-backed owned event sequences (`NameId`
//!   tags, `(offset, len)` text spans): the runtime buffer representation,
//!   with no per-event heap allocation.
//! * [`scan`] — the two-stage structural scanner behind the reader's fast
//!   paths: runtime-detected SIMD (AVX2/SSE2) or portable SWAR
//!   classification of each 32-byte block into per-class bitmasks, which
//!   the reader's text/name/attribute loops consume instead of
//!   byte-at-a-time dispatch. See the module docs for the feature-detection
//!   story and the `FeedSource` batch-boundary contract.
//! * [`tape`] — batched event delivery: the reader records whole batches
//!   of resolved events into a reusable [`tape::EventTape`] that consumers
//!   walk with a tight index loop (and skip subtrees inside with a scan
//!   over recorded close events), amortizing the per-event pull-API cost.
//!   See the module docs for the anchor → batch → drain → rollback
//!   lifecycle and why the tape is never serialized.
//!
//! The data model follows the paper: elements and character data only; the
//! reader either rejects, drops, or converts attributes. Namespaces, DTD
//! internal-subset entity definitions and other XML arcana are out of scope,
//! exactly as in the paper's prototype.

pub mod escape;
pub mod evbuf;
pub mod events;
pub mod idtrie;
pub mod reader;
pub mod scan;
pub mod sink;
pub mod symbols;
pub mod tape;
pub mod tree;
pub mod writer;
pub mod xsax;

pub use evbuf::EventBuf;
pub use events::{Event, OwnedEvent, ResolvedEvent};
pub use idtrie::IdTrie;
pub use reader::{
    AttributeMode, FeedSource, Polled, Reader, ReaderOptions, SkipPoll, TapeFill, XmlError,
    XmlErrorKind,
};
pub use scan::{Backend, ScanTelemetry, Scanner, ScannerChoice};
pub use sink::{Sink, StringSink};
pub use symbols::{NameId, Symbols};
pub use tape::{DeliveryMode, EventTape, SkipScan, TapeKind, TapeTelemetry};
pub use tree::{Child, Node};
pub use writer::Writer;
