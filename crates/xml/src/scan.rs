//! Two-stage structural scan: wide classification, then mask-driven parsing.
//!
//! The tokenizer's cost model changed once the engine path became
//! zero-alloc: the profile is dominated by the byte loops that find the
//! next structural character (`<`, `>`, `&`, quotes) and classify the run
//! in front of it. This module splits that work simdjson-style into two
//! stages:
//!
//! 1. **Stage 1 — classification.** A [`Scanner`] turns each 32-byte block
//!    of the source window into a [`BlockClasses`] record: one bitmask per
//!    character class (bit *i* set ⇔ byte *i* belongs to the class). The
//!    kernel is chosen **once per reader** by runtime feature detection —
//!    AVX2 (one 32-byte vector per class), SSE2 (two 16-byte halves), or a
//!    portable fallback that classifies through a 256-entry class table
//!    and transposes the flag bytes into masks with word arithmetic
//!    (SWAR), needing no `std::arch` at all — the only option off x86,
//!    and forced everywhere by `FLUX_FORCE_SWAR=1`. Each backend's whole
//!    batch loop lives inside one `#[target_feature]` function, so the
//!    per-block kernel inlines and there is a single call per batch, not
//!    per block.
//! 2. **Stage 2 — resolution.** Batches land in a reusable
//!    [`StructuralIndex`] anchored at a stream offset, and the reader's
//!    text / tag-name / attribute hot loops consume it with word
//!    operations (`trailing_zeros` over the masks) instead of
//!    byte-at-a-time dispatch: "first `<`", "properties of the text run
//!    before it", "length of this name", "end of this attribute value"
//!    are all O(1) per 32-byte block.
//!
//! The index is **amortized across events**: one anchor call classifies up
//! to [`ANCHOR_BYTES`] of the window, and the next few hundred events
//! resolve against the same batch (their positions differ from the anchor
//! by a delta the reader tracks). When the parse reaches the end of the
//! covered range the index is extended in place ([`EXTEND_BYTES`] at a
//! time, so a construct longer than one batch grows the index only to the
//! construct's own size — the same memory class as the general path's
//! accumulation buffer), and re-anchored once the parse moves past it
//! entirely. Classification cost is therefore ~one pass per input byte,
//! not per event.
//!
//! # The `FeedSource` batch-boundary contract
//!
//! Stage 1 is a **pure memo over the bytes of the stream**: block *k* of
//! an index anchored at stream offset `o` describes stream bytes
//! `[o + 32k, o + 32k + 32)`, which are immutable once read from the
//! source (a `FeedSource` only ever appends). The memo never consumes,
//! never looks past `fill_buf`, and holds no state the parser would have
//! to roll back. The incremental reader's checkpoint/rollback protocol
//! (`Reader::poll_resolved`) therefore holds by construction — a parse
//! attempt that runs off the end of the fed bytes rolls back reader state
//! only, and the still-valid memo is simply extended once more bytes
//! arrive. Chunk boundaries can split the input at any byte, including
//! mid-block: batches are an artifact of the *window*, not of the
//! chunking, and the every-offset chunking suites pin that the emitted
//! event stream is byte-identical for every split and every backend.
//!
//! # Why masks instead of an offset list
//!
//! simdjson emits a flat array of structural *offsets*. XML needs slightly
//! richer per-byte information (the same byte stream is scanned for
//! different classes depending on whether the cursor is in text or inside
//! a tag), so the index keeps the per-class masks themselves — each block
//! is a batch of 32 classifications — and lets the consumer pick the class
//! it cares about. The masks for one block live in one cache line.

use std::sync::OnceLock;

/// Bytes per classified block: one AVX2 vector, two SSE2 vectors, four
/// SWAR words. Mask type is [`u32`] — bit *i* describes byte *i* of the
/// block.
pub const BLOCK: usize = 32;

/// Bytes classified by one re-anchor (multiple of [`BLOCK`]): the steady-
/// state mask footprint, sized to a buffered-reader window.
pub const ANCHOR_BYTES: usize = 8192;

/// Bytes added per in-place extension (multiple of [`BLOCK`]).
pub const EXTEND_BYTES: usize = 8192;

/// One classified block: a bitmask per character class. Bits past the end
/// of a partial block (a window tail shorter than [`BLOCK`]) are zero in
/// every mask.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockClasses {
    /// `<`
    pub lt: u32,
    /// `>`
    pub gt: u32,
    /// `&`
    pub amp: u32,
    /// `"`
    pub quot: u32,
    /// `'`
    pub apos: u32,
    /// ASCII whitespace: 0x09–0x0D and 0x20 (the `char::is_whitespace`
    /// ASCII subset the reader's paths agree on).
    pub ws: u32,
    /// Bytes ≥ 0x80 (non-ASCII; routes to the general UTF-8 path).
    pub hi: u32,
    /// ASCII XML name characters after the first: `[A-Za-z0-9_\-.:]`.
    pub name: u32,
}

/// The classification kernel in use. Ordered by preference; see
/// [`Scanner::detect`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Backend {
    /// Class-table + word-transpose scan on `u64`s: portable, no
    /// `std::arch`.
    #[default]
    Swar,
    /// `std::arch` SSE2 (x86/x86_64).
    Sse2,
    /// `std::arch` AVX2 (x86/x86_64).
    Avx2,
}

impl Backend {
    /// Stable lowercase label ("swar" / "sse2" / "avx2") for stats lines,
    /// bench sections and the wire protocol.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Swar => "swar",
            Backend::Sse2 => "sse2",
            Backend::Avx2 => "avx2",
        }
    }

    /// Wire encoding (see `flux-serve`'s `DONE` frame).
    pub fn code(self) -> u8 {
        match self {
            Backend::Swar => 0,
            Backend::Sse2 => 1,
            Backend::Avx2 => 2,
        }
    }

    /// Inverse of [`Backend::code`].
    pub fn from_code(code: u8) -> Option<Backend> {
        match code {
            0 => Some(Backend::Swar),
            1 => Some(Backend::Sse2),
            2 => Some(Backend::Avx2),
            _ => None,
        }
    }
}

/// How a [`Reader`](crate::reader::Reader) picks its scanner backend
/// (`ReaderOptions::scanner`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ScannerChoice {
    /// Best available backend for this CPU (AVX2 → SSE2 → SWAR).
    #[default]
    Auto,
    /// Portable SWAR, unconditionally.
    ForceSwar,
    /// SSE2 if the CPU has it, otherwise the best available below it.
    ForceSse2,
    /// AVX2 if the CPU has it, otherwise the best available below it.
    ForceAvx2,
}

/// Process-wide environment: detected CPU features plus the
/// `FLUX_FORCE_SWAR` kill switch, probed once.
struct Detected {
    forced_swar: bool,
    has_sse2: bool,
    has_avx2: bool,
}

fn detected() -> &'static Detected {
    static DETECTED: OnceLock<Detected> = OnceLock::new();
    DETECTED.get_or_init(|| {
        let forced_swar = std::env::var_os("FLUX_FORCE_SWAR").is_some_and(|v| !v.is_empty());
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        let (has_sse2, has_avx2) =
            (is_x86_feature_detected!("sse2"), is_x86_feature_detected!("avx2"));
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        let (has_sse2, has_avx2) = (false, false);
        Detected { forced_swar, has_sse2, has_avx2 }
    })
}

/// Scan-path observability counters, carried on `RunStats` and the serve
/// `DONE` frame so benches and logs show which tokenizer path actually
/// ran.
///
/// Deliberately **excluded from equality**: how many bytes flow through
/// the structural fast path versus the accumulating general path depends
/// on chunk geometry (a construct split across a feed boundary takes the
/// general path), and run-equivalence suites compare `RunStats` across
/// different chunkings of the same input. Telemetry must never make two
/// semantically identical runs compare unequal.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanTelemetry {
    /// The classification kernel the reader selected.
    pub backend: Backend,
    /// Bytes consumed via the structural-index fast paths.
    pub fast_path_bytes: u64,
    /// Bytes consumed via the accumulating general path.
    pub general_path_bytes: u64,
}

impl PartialEq for ScanTelemetry {
    /// Always equal — see the type docs.
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl Eq for ScanTelemetry {}

/// Stage-1 classifier, selected once per reader. Copy-sized: just the
/// backend discriminant; all kernels are stateless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scanner {
    backend: Backend,
}

impl Scanner {
    /// The best backend available on this CPU, honouring the
    /// `FLUX_FORCE_SWAR=1` kill switch (which wins over everything,
    /// including explicit choices — it exists so the whole workspace can
    /// be release-tested on the portable path).
    pub fn detect() -> Scanner {
        Scanner::with_choice(ScannerChoice::Auto)
    }

    /// Resolve a [`ScannerChoice`] against this CPU. Forced choices
    /// degrade to the best available backend at or below the request;
    /// `FLUX_FORCE_SWAR=1` overrides them all.
    pub fn with_choice(choice: ScannerChoice) -> Scanner {
        let d = detected();
        if d.forced_swar {
            return Scanner { backend: Backend::Swar };
        }
        let cap = match choice {
            ScannerChoice::ForceSwar => Backend::Swar,
            ScannerChoice::ForceSse2 => Backend::Sse2,
            ScannerChoice::Auto | ScannerChoice::ForceAvx2 => Backend::Avx2,
        };
        let best = if d.has_avx2 {
            Backend::Avx2
        } else if d.has_sse2 {
            Backend::Sse2
        } else {
            Backend::Swar
        };
        Scanner { backend: best.min(cap) }
    }

    /// The backend this scanner dispatches to.
    pub fn backend(self) -> Backend {
        self.backend
    }

    /// Classify one block (`block.len() <= BLOCK`). Partial blocks report
    /// zero bits past their end in every mask. (Test/diagnostic entry
    /// point; the reader goes through [`Scanner::anchor`] /
    /// [`Scanner::extend`].)
    pub fn classify_block(self, block: &[u8]) -> BlockClasses {
        assert!(block.len() <= BLOCK);
        let mut idx = StructuralIndex::new();
        self.anchor(&mut idx, 0, block);
        idx.blocks.first().copied().unwrap_or_default()
    }

    /// Re-anchor `idx` at stream offset `at` (= the offset of `window[0]`)
    /// and classify up to [`ANCHOR_BYTES`] of `window`, replacing the
    /// previous batch.
    pub fn anchor(self, idx: &mut StructuralIndex, at: u64, window: &[u8]) {
        idx.blocks.clear();
        idx.origin = at;
        idx.len = 0;
        self.classify_append(idx, window, ANCHOR_BYTES);
    }

    /// Grow the covered range in place: `tail` must be the window slice
    /// beginning at the index's current end (requires the covered length
    /// to be block-aligned, which holds whenever the previous batch was
    /// capped rather than window-exhausted). Classifies up to
    /// [`EXTEND_BYTES`] more.
    pub fn extend(self, idx: &mut StructuralIndex, tail: &[u8]) {
        debug_assert!(idx.len.is_multiple_of(BLOCK), "extend from a block-aligned boundary");
        self.classify_append(idx, tail, EXTEND_BYTES);
    }

    #[inline]
    fn classify_append(self, idx: &mut StructuralIndex, hay: &[u8], cap: usize) {
        debug_assert!(cap.is_multiple_of(BLOCK));
        let take = &hay[..hay.len().min(cap)];
        idx.len += take.len();
        // One exact reservation per batch: the kernels push block by block,
        // and amortized doubling would make a run's allocation count depend
        // on how much of the anchor budget its documents fill (pinned by
        // the zero-per-event-allocation suite).
        idx.blocks.reserve_exact(take.len().div_ceil(BLOCK));
        match self.backend {
            Backend::Swar => classify_batch_swar(&mut idx.blocks, take),
            #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
            // SAFETY: `Scanner::with_choice` only selects Sse2/Avx2 after
            // `is_x86_feature_detected!` confirmed the feature on this CPU
            // (cached in `detected()`), so the target-feature batch loops
            // are safe to call here.
            Backend::Sse2 => unsafe { x86::classify_batch_sse2(&mut idx.blocks, take) },
            #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
            // SAFETY: as above — Avx2 is only ever selected when
            // `is_x86_feature_detected!("avx2")` reported support.
            Backend::Avx2 => unsafe { x86::classify_batch_avx2(&mut idx.blocks, take) },
            #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
            _ => classify_batch_swar(&mut idx.blocks, take),
        }
    }

    /// Position of the first `needle` in `hay`, dispatched to the widest
    /// available compare. Used where a bare find is all that's needed
    /// (e.g. the incremental reader's text-scan hint, which runs over raw
    /// fed bytes before any parse attempt).
    #[inline]
    pub fn find_byte(self, needle: u8, hay: &[u8]) -> Option<usize> {
        match self.backend {
            Backend::Swar => swar_find(needle, hay),
            #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
            // SAFETY: backend selection guarantees SSE2 support (see
            // `classify_append`).
            Backend::Sse2 => unsafe { x86::find_byte_sse2(needle, hay) },
            #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
            // SAFETY: backend selection guarantees AVX2 support (see
            // `classify_append`).
            Backend::Avx2 => unsafe { x86::find_byte_avx2(needle, hay) },
            #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
            _ => swar_find(needle, hay),
        }
    }
}

/// Stage-1 output, reused across events: a batch of classified blocks
/// covering stream bytes `[origin, origin + covered)`. All query
/// positions are index-relative byte offsets (stream offset − origin);
/// results never exceed [`covered`](StructuralIndex::covered).
#[derive(Debug, Default)]
pub struct StructuralIndex {
    blocks: Vec<BlockClasses>,
    /// Stream offset of block 0, bit 0.
    origin: u64,
    /// Classified bytes from the origin (the final block may be partial).
    len: usize,
}

impl StructuralIndex {
    /// An empty index (no allocation until first use).
    pub fn new() -> StructuralIndex {
        StructuralIndex::default()
    }

    /// Stream offset this index is anchored at.
    pub fn origin(&self) -> u64 {
        self.origin
    }

    /// Classified bytes from the origin.
    pub fn covered(&self) -> usize {
        self.len
    }

    /// One-past-the-last classified stream offset.
    pub fn end(&self) -> u64 {
        self.origin + self.len as u64
    }

    /// The classified blocks of the current batch.
    pub fn blocks(&self) -> &[BlockClasses] {
        &self.blocks
    }

    #[inline]
    fn first_set(&self, class: impl Fn(&BlockClasses) -> u32, from: usize) -> Option<usize> {
        let mut blk = from / BLOCK;
        let mut shift = from % BLOCK;
        while let Some(b) = self.blocks.get(blk) {
            let m = class(b) >> shift << shift;
            if m != 0 {
                let pos = blk * BLOCK + m.trailing_zeros() as usize;
                return (pos < self.len).then_some(pos);
            }
            blk += 1;
            shift = 0;
        }
        None
    }

    /// First position `>= from` whose bit is **clear** in `class`, clamped
    /// to the covered range. (Partial-block padding reads as clear, which
    /// is exactly the "run ends here" answer.)
    #[inline]
    fn first_clear(&self, class: impl Fn(&BlockClasses) -> u32, from: usize) -> usize {
        let mut blk = from / BLOCK;
        let mut shift = from % BLOCK;
        while let Some(b) = self.blocks.get(blk) {
            let m = !(class(b) >> shift << shift) & (u32::MAX << shift);
            if m != 0 {
                return (blk * BLOCK + m.trailing_zeros() as usize).min(self.len);
            }
            blk += 1;
            shift = 0;
        }
        self.len
    }

    /// Position of the first `<` at or after `from`.
    #[inline]
    pub fn first_lt(&self, from: usize) -> Option<usize> {
        self.first_set(|b| b.lt, from)
    }

    /// Position of the first `>` at or after `from`.
    #[inline]
    pub fn first_gt(&self, from: usize) -> Option<usize> {
        self.first_set(|b| b.gt, from)
    }

    /// Properties of the text run `[from, upto)`: (any non-ASCII byte, any
    /// `&`, any non-whitespace). Requires `upto <= covered()`.
    #[inline]
    pub fn text_props(&self, from: usize, upto: usize) -> (bool, bool, bool) {
        debug_assert!(from <= upto && upto <= self.len);
        let (mut hi, mut amp, mut nonws) = (0u32, 0u32, 0u32);
        let mut blk = from / BLOCK;
        let mut lo = from % BLOCK;
        while blk * BLOCK < upto {
            let b = &self.blocks[blk];
            let hi_bits = upto - blk * BLOCK;
            let keep_hi = if hi_bits >= BLOCK { u32::MAX } else { (1u32 << hi_bits) - 1 };
            let keep = keep_hi & (u32::MAX << lo);
            hi |= b.hi & keep;
            amp |= b.amp & keep;
            nonws |= !b.ws & keep;
            blk += 1;
            lo = 0;
        }
        (hi != 0, amp != 0, nonws != 0)
    }

    /// Any byte ≥ 0x80 in `[from, upto)`? Requires `upto <= covered()`.
    #[inline]
    pub fn any_hi(&self, from: usize, upto: usize) -> bool {
        debug_assert!(from <= upto && upto <= self.len);
        let mut blk = from / BLOCK;
        let mut lo = from % BLOCK;
        while blk * BLOCK < upto {
            let b = &self.blocks[blk];
            let hi_bits = upto - blk * BLOCK;
            let keep_hi = if hi_bits >= BLOCK { u32::MAX } else { (1u32 << hi_bits) - 1 };
            if b.hi & keep_hi & (u32::MAX << lo) != 0 {
                return true;
            }
            blk += 1;
            lo = 0;
        }
        false
    }

    /// End of the ASCII-name-character run starting at `from` (exclusive),
    /// clamped to the covered range.
    #[inline]
    pub fn name_run(&self, from: usize) -> usize {
        self.first_clear(|b| b.name, from)
    }

    /// First non-whitespace position `>= from`, clamped to the covered
    /// range.
    #[inline]
    pub fn skip_ws(&self, from: usize) -> usize {
        self.first_clear(|b| b.ws, from)
    }

    /// First position `>= from` holding the given quote character or `&`
    /// (the two bytes that end an attribute-value scan). `quote` must be
    /// `b'"'` or `b'\''`.
    #[inline]
    pub fn value_end(&self, from: usize, quote: u8) -> Option<usize> {
        debug_assert!(quote == b'"' || quote == b'\'');
        if quote == b'"' {
            self.first_set(|b| b.quot | b.amp, from)
        } else {
            self.first_set(|b| b.apos | b.amp, from)
        }
    }
}

// ---------------------------------------------------------------------------
// Class table (shared by the SWAR kernel and the unit-test oracle).

/// Bit index of each class in [`CLASS_TABLE`] flag bytes.
const C_LT: u32 = 0;
const C_GT: u32 = 1;
const C_AMP: u32 = 2;
const C_QUOT: u32 = 3;
const C_APOS: u32 = 4;
const C_WS: u32 = 5;
const C_HI: u32 = 6;
const C_NAME: u32 = 7;

/// Per-byte class flags: the whole classification problem as one 256-byte
/// lookup (the eight classes fit a `u8` exactly).
static CLASS_TABLE: [u8; 256] = {
    let mut t = [0u8; 256];
    let mut b = 0usize;
    while b < 256 {
        let c = b as u8;
        let mut f = 0u8;
        if c == b'<' {
            f |= 1 << C_LT;
        }
        if c == b'>' {
            f |= 1 << C_GT;
        }
        if c == b'&' {
            f |= 1 << C_AMP;
        }
        if c == b'"' {
            f |= 1 << C_QUOT;
        }
        if c == b'\'' {
            f |= 1 << C_APOS;
        }
        if c == b' ' || (c >= 0x09 && c <= 0x0D) {
            f |= 1 << C_WS;
        }
        if c >= 0x80 {
            f |= 1 << C_HI;
        }
        if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
            f |= 1 << C_NAME;
        }
        t[b] = f;
        b += 1;
    }
    t
};

// ---------------------------------------------------------------------------
// SWAR kernel: table lookups, then a word transpose that turns the flag
// bytes of 8 consecutive input bytes into per-class mask bits.

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;

/// Pack a 0x80-per-byte indicator into 8 bits, byte *k* (little-endian) →
/// bit *k*. The multiply accumulates each byte's bit into the top byte
/// without carries (every partial sum stays below 0x100).
#[inline]
fn movemask_swar(m80: u64) -> u32 {
    (((m80 >> 7).wrapping_mul(0x0102_0408_1020_4080)) >> 56) as u32
}

/// Extract class-bit `c` of each flag byte in `flags` as a packed 8-bit
/// mask: shift the class bit up to bit 7 of its byte, then movemask.
#[inline]
fn class_mask(flags: u64, c: u32) -> u32 {
    movemask_swar((flags << (7 - c)) & HI)
}

fn classify_swar(block: &[u8; BLOCK]) -> BlockClasses {
    let mut out = BlockClasses::default();
    for (k, chunk) in block.chunks_exact(8).enumerate() {
        let flags = u64::from_le_bytes([
            CLASS_TABLE[chunk[0] as usize],
            CLASS_TABLE[chunk[1] as usize],
            CLASS_TABLE[chunk[2] as usize],
            CLASS_TABLE[chunk[3] as usize],
            CLASS_TABLE[chunk[4] as usize],
            CLASS_TABLE[chunk[5] as usize],
            CLASS_TABLE[chunk[6] as usize],
            CLASS_TABLE[chunk[7] as usize],
        ]);
        let shift = (k * 8) as u32;
        out.lt |= class_mask(flags, C_LT) << shift;
        out.gt |= class_mask(flags, C_GT) << shift;
        out.amp |= class_mask(flags, C_AMP) << shift;
        out.quot |= class_mask(flags, C_QUOT) << shift;
        out.apos |= class_mask(flags, C_APOS) << shift;
        out.ws |= class_mask(flags, C_WS) << shift;
        out.hi |= class_mask(flags, C_HI) << shift;
        out.name |= class_mask(flags, C_NAME) << shift;
    }
    out
}

/// Stamp the batch loop for one kernel: classify full blocks straight off
/// the slice, pad the tail into a zeroed block (zero bytes belong to no
/// class).
macro_rules! classify_batch_loop {
    ($out:expr, $hay:expr, $kernel:expr) => {{
        let out: &mut Vec<BlockClasses> = $out;
        let hay: &[u8] = $hay;
        let mut chunks = hay.chunks_exact(BLOCK);
        for block in &mut chunks {
            out.push($kernel(block.try_into().expect("BLOCK bytes")));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut padded = [0u8; BLOCK];
            padded[..tail.len()].copy_from_slice(tail);
            out.push($kernel(&padded));
        }
    }};
}

fn classify_batch_swar(out: &mut Vec<BlockClasses>, hay: &[u8]) {
    classify_batch_loop!(out, hay, classify_swar)
}

/// SWAR byte search (the `memchr` of the portable path — `std`'s is
/// private). Hoisted from the reader, where it predates the structural
/// index; the incremental text-scan hint and the SWAR find path still use
/// it directly.
#[inline]
pub fn swar_find(needle: u8, hay: &[u8]) -> Option<usize> {
    let pat = u64::from(needle).wrapping_mul(LO);
    let mut i = 0usize;
    while i + 8 <= hay.len() {
        let w = u64::from_le_bytes(hay[i..i + 8].try_into().expect("8-byte chunk")) ^ pat;
        if w.wrapping_sub(LO) & !w & HI != 0 {
            for (j, &b) in hay[i..i + 8].iter().enumerate() {
                if b == needle {
                    return Some(i + j);
                }
            }
        }
        i += 8;
    }
    hay[i..].iter().position(|&b| b == needle).map(|p| p + i)
}

/// Branchless property scan of a candidate text run: (any non-ASCII byte,
/// any `&`, any non-whitespace). Whitespace is the `char::is_whitespace`
/// ASCII subset (0x09–0x0D, 0x20); non-ASCII bytes read as non-whitespace
/// but also set the first flag, which routes to the general path. Hoisted
/// from the reader; the structural paths now get the same answers from
/// [`StructuralIndex::text_props`], and this byte-exact version is their
/// test oracle.
#[inline]
pub fn scan_text_props(run: &[u8]) -> (bool, bool, bool) {
    let (mut hi, mut amp, mut nonws) = (0u8, 0u8, 0u8);
    for &b in run {
        hi |= b & 0x80;
        amp |= u8::from(b == b'&');
        nonws |= u8::from(b != b' ' && !(0x09..=0x0D).contains(&b));
    }
    (hi != 0, amp != 0, nonws != 0)
}

// ---------------------------------------------------------------------------
// x86/x86_64 kernels.

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
mod x86 {
    use super::{BlockClasses, BLOCK};
    #[cfg(target_arch = "x86")]
    use std::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// # Safety
    /// Requires AVX2 (callers hold a positive
    /// `is_x86_feature_detected!("avx2")` result).
    #[target_feature(enable = "avx2")]
    unsafe fn classify_avx2(block: &[u8; BLOCK]) -> BlockClasses {
        // SAFETY: `block` is exactly BLOCK = 32 bytes; unaligned load.
        let v = _mm256_loadu_si256(block.as_ptr() as *const __m256i);
        let eq =
            |n: u8| _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, _mm256_set1_epi8(n as i8))) as u32;
        // Unsigned `lo <= b <= hi` via saturating subtraction: both
        // differences are zero exactly when `b` is in range.
        let range = |lo: u8, hi: u8| {
            let z = _mm256_setzero_si256();
            let ge = _mm256_cmpeq_epi8(_mm256_subs_epu8(_mm256_set1_epi8(lo as i8), v), z);
            let le = _mm256_cmpeq_epi8(_mm256_subs_epu8(v, _mm256_set1_epi8(hi as i8)), z);
            _mm256_and_si256(ge, le)
        };
        let alnum = _mm256_or_si256(
            range(b'0', b'9'),
            _mm256_or_si256(range(b'A', b'Z'), range(b'a', b'z')),
        );
        let punct = {
            let eqv = |n: u8| _mm256_cmpeq_epi8(v, _mm256_set1_epi8(n as i8));
            _mm256_or_si256(
                _mm256_or_si256(eqv(b'_'), eqv(b'-')),
                _mm256_or_si256(eqv(b'.'), eqv(b':')),
            )
        };
        BlockClasses {
            lt: eq(b'<'),
            gt: eq(b'>'),
            amp: eq(b'&'),
            quot: eq(b'"'),
            apos: eq(b'\''),
            ws: _mm256_movemask_epi8(_mm256_or_si256(
                _mm256_cmpeq_epi8(v, _mm256_set1_epi8(b' ' as i8)),
                range(0x09, 0x0D),
            )) as u32,
            hi: _mm256_movemask_epi8(v) as u32,
            name: _mm256_movemask_epi8(_mm256_or_si256(alnum, punct)) as u32,
        }
    }

    /// # Safety
    /// Requires SSE2 (callers hold a positive
    /// `is_x86_feature_detected!("sse2")` result).
    #[target_feature(enable = "sse2")]
    unsafe fn classify_sse2(block: &[u8; BLOCK]) -> BlockClasses {
        let mut out = BlockClasses::default();
        for half in 0..2 {
            // SAFETY: `block` is 32 bytes; each half is a full 16-byte
            // unaligned load.
            let v = _mm_loadu_si128(block.as_ptr().add(half * 16) as *const __m128i);
            let shift = (half * 16) as u32;
            let eq = |n: u8| _mm_movemask_epi8(_mm_cmpeq_epi8(v, _mm_set1_epi8(n as i8))) as u32;
            let range = |lo: u8, hi: u8| {
                let z = _mm_setzero_si128();
                let ge = _mm_cmpeq_epi8(_mm_subs_epu8(_mm_set1_epi8(lo as i8), v), z);
                let le = _mm_cmpeq_epi8(_mm_subs_epu8(v, _mm_set1_epi8(hi as i8)), z);
                _mm_and_si128(ge, le)
            };
            let alnum =
                _mm_or_si128(range(b'0', b'9'), _mm_or_si128(range(b'A', b'Z'), range(b'a', b'z')));
            let punct = {
                let eqv = |n: u8| _mm_cmpeq_epi8(v, _mm_set1_epi8(n as i8));
                _mm_or_si128(_mm_or_si128(eqv(b'_'), eqv(b'-')), _mm_or_si128(eqv(b'.'), eqv(b':')))
            };
            out.lt |= eq(b'<') << shift;
            out.gt |= eq(b'>') << shift;
            out.amp |= eq(b'&') << shift;
            out.quot |= eq(b'"') << shift;
            out.apos |= eq(b'\'') << shift;
            out.ws |= (_mm_movemask_epi8(_mm_or_si128(
                _mm_cmpeq_epi8(v, _mm_set1_epi8(b' ' as i8)),
                range(0x09, 0x0D),
            )) as u32)
                << shift;
            out.hi |= (_mm_movemask_epi8(v) as u32) << shift;
            out.name |= (_mm_movemask_epi8(_mm_or_si128(alnum, punct)) as u32) << shift;
        }
        out
    }

    /// # Safety
    /// Requires AVX2 (callers hold a positive feature-detection result).
    #[target_feature(enable = "avx2")]
    pub unsafe fn classify_batch_avx2(out: &mut Vec<BlockClasses>, hay: &[u8]) {
        classify_batch_loop!(out, hay, classify_avx2)
    }

    /// # Safety
    /// Requires SSE2 (callers hold a positive feature-detection result).
    #[target_feature(enable = "sse2")]
    pub unsafe fn classify_batch_sse2(out: &mut Vec<BlockClasses>, hay: &[u8]) {
        classify_batch_loop!(out, hay, classify_sse2)
    }

    /// # Safety
    /// Requires AVX2 (callers hold a positive feature-detection result).
    #[target_feature(enable = "avx2")]
    pub unsafe fn find_byte_avx2(needle: u8, hay: &[u8]) -> Option<usize> {
        let pat = _mm256_set1_epi8(needle as i8);
        let mut i = 0usize;
        while i + 32 <= hay.len() {
            // SAFETY: `i + 32 <= hay.len()` bounds the unaligned load.
            let v = _mm256_loadu_si256(hay.as_ptr().add(i) as *const __m256i);
            let m = _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, pat)) as u32;
            if m != 0 {
                return Some(i + m.trailing_zeros() as usize);
            }
            i += 32;
        }
        hay[i..].iter().position(|&b| b == needle).map(|p| p + i)
    }

    /// # Safety
    /// Requires SSE2 (callers hold a positive feature-detection result).
    #[target_feature(enable = "sse2")]
    pub unsafe fn find_byte_sse2(needle: u8, hay: &[u8]) -> Option<usize> {
        let pat = _mm_set1_epi8(needle as i8);
        let mut i = 0usize;
        while i + 16 <= hay.len() {
            // SAFETY: `i + 16 <= hay.len()` bounds the unaligned load.
            let v = _mm_loadu_si128(hay.as_ptr().add(i) as *const __m128i);
            let m = _mm_movemask_epi8(_mm_cmpeq_epi8(v, pat)) as u32;
            if m != 0 {
                return Some(i + m.trailing_zeros() as usize);
            }
            i += 16;
        }
        hay[i..].iter().position(|&b| b == needle).map(|p| p + i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Byte-exact reference classifier, built from first principles (not
    /// the table, which it cross-checks).
    fn naive(block: &[u8]) -> BlockClasses {
        let mut out = BlockClasses::default();
        for (i, &b) in block.iter().enumerate() {
            let bit = 1u32 << i;
            if b == b'<' {
                out.lt |= bit;
            }
            if b == b'>' {
                out.gt |= bit;
            }
            if b == b'&' {
                out.amp |= bit;
            }
            if b == b'"' {
                out.quot |= bit;
            }
            if b == b'\'' {
                out.apos |= bit;
            }
            if b == b' ' || (0x09..=0x0D).contains(&b) {
                out.ws |= bit;
            }
            if b >= 0x80 {
                out.hi |= bit;
            }
            if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') {
                out.name |= bit;
            }
        }
        out
    }

    fn backends() -> Vec<Scanner> {
        let mut out = vec![Scanner::with_choice(ScannerChoice::ForceSwar)];
        for choice in [ScannerChoice::ForceSse2, ScannerChoice::ForceAvx2] {
            let s = Scanner::with_choice(choice);
            if !out.iter().any(|o| o.backend() == s.backend()) {
                out.push(s);
            }
        }
        out
    }

    #[test]
    fn every_byte_value_classifies_exactly_at_every_offset() {
        // Each of the 256 byte values, at each offset of a block otherwise
        // filled with 'x', must classify identically to the reference on
        // every available backend.
        for scanner in backends() {
            for byte in 0..=255u8 {
                for offset in 0..BLOCK {
                    let mut block = [b'x'; BLOCK];
                    block[offset] = byte;
                    assert_eq!(
                        scanner.classify_block(&block),
                        naive(&block),
                        "backend {:?} byte {byte:#x} offset {offset}",
                        scanner.backend(),
                    );
                }
            }
        }
    }

    #[test]
    fn partial_blocks_zero_the_padding() {
        for scanner in backends() {
            for len in 0..BLOCK {
                let block = vec![b'<'; len];
                let c = scanner.classify_block(&block);
                assert_eq!(c, naive(&block), "len {len}");
                let past_end = !((1u64 << len) as u32).wrapping_sub(1);
                assert_eq!(c.lt & past_end, 0, "len {len}");
            }
        }
    }

    #[test]
    fn swar_transpose_is_exact() {
        // The movemask pack and the class-bit transpose are per-byte
        // exact for arbitrary flag patterns.
        assert_eq!(movemask_swar(0x8080_8080_8080_8080), 0xFF);
        assert_eq!(movemask_swar(0x0080_0000_0000_8000), 0b0100_0010);
        for b in 0..=255u8 {
            let flags = u64::from_le_bytes([CLASS_TABLE[b as usize]; 8]);
            for c in 0..8 {
                let expect = if CLASS_TABLE[b as usize] >> c & 1 != 0 { 0xFF } else { 0 };
                assert_eq!(class_mask(flags, c), expect, "byte {b:#x} class {c}");
            }
        }
    }

    #[test]
    fn find_byte_agrees_with_naive_at_every_offset() {
        let mut hay = vec![b'a'; 3 * BLOCK + 7];
        for scanner in backends() {
            assert_eq!(scanner.find_byte(b'<', &hay), None);
            for at in 0..hay.len() {
                hay[at] = b'<';
                assert_eq!(
                    scanner.find_byte(b'<', &hay),
                    Some(at),
                    "backend {:?} offset {at}",
                    scanner.backend()
                );
                hay[at] = b'a';
            }
        }
        assert_eq!(swar_find(b'z', b""), None);
        assert_eq!(swar_find(b'z', b"abcz"), Some(3));
    }

    #[test]
    fn hoisted_scan_text_props_matches_spec() {
        assert_eq!(scan_text_props(b"   \t\n"), (false, false, false));
        assert_eq!(scan_text_props(b"  x "), (false, false, true));
        assert_eq!(scan_text_props(b"a&b"), (false, true, true));
        assert_eq!(scan_text_props("é".as_bytes()), (true, false, true));
        assert_eq!(scan_text_props(b""), (false, false, false));
    }

    #[test]
    fn index_queries_walk_blocks_and_clamp() {
        let scanner = Scanner::detect();
        let mut idx = StructuralIndex::new();
        // Text: 40 spaces (crossing a block boundary), then "ab&cd<tail".
        let mut hay = vec![b' '; 40];
        hay.extend_from_slice(b"ab&cd<tail");
        scanner.anchor(&mut idx, 0, &hay);
        let lt = idx.first_lt(0).unwrap();
        assert_eq!(lt, 45);
        assert_eq!(idx.text_props(0, lt), (false, true, true));
        assert_eq!(idx.text_props(0, 40), (false, false, false));
        assert_eq!(idx.text_props(45, 45), (false, false, false));
        // Sub-ranges honour `from`.
        assert_eq!(idx.text_props(43, lt), (false, false, true));

        // Tag: name run, whitespace skip, quoted value with '&'.
        let body = br#"name  attr = "v&w" > rest"#;
        scanner.anchor(&mut idx, 0, body);
        assert_eq!(idx.first_gt(0), Some(19));
        assert_eq!(idx.name_run(0), 4);
        assert_eq!(idx.skip_ws(4), 6);
        assert_eq!(idx.name_run(6), 10);
        assert_eq!(idx.value_end(14, b'"'), Some(15), "the & ends the scan");
        assert_eq!(idx.value_end(16, b'"'), Some(17));
        assert!(!idx.any_hi(0, 19));

        // Clamping: runs that reach the end of a partial final block.
        scanner.anchor(&mut idx, 0, b"abc");
        assert_eq!(idx.name_run(0), 3);
        assert_eq!(idx.skip_ws(0), 0);
        assert_eq!(idx.first_gt(0), None);
        assert_eq!(idx.covered(), 3);
    }

    #[test]
    fn anchor_caps_and_extend_grows_in_place() {
        for scanner in backends() {
            let mut idx = StructuralIndex::new();
            let mut hay = vec![b'x'; ANCHOR_BYTES + 2 * BLOCK];
            let at = hay.len() - 5;
            hay[at] = b'<';
            scanner.anchor(&mut idx, 100, &hay);
            assert_eq!(idx.covered(), ANCHOR_BYTES, "anchor is capped");
            assert_eq!(idx.origin(), 100);
            assert_eq!(idx.end(), 100 + ANCHOR_BYTES as u64);
            assert_eq!(idx.first_lt(0), None, "the `<` is past the cap");
            let covered = idx.covered();
            scanner.extend(&mut idx, &hay[covered..]);
            assert_eq!(idx.covered(), hay.len());
            assert_eq!(idx.first_lt(0), Some(at));
            // Queries starting past the old boundary see the new blocks.
            assert_eq!(idx.first_lt(ANCHOR_BYTES), Some(at));
            assert_eq!(idx.name_run(ANCHOR_BYTES), at, "x-run ends at `<`");
        }
    }

    #[test]
    fn backend_selection_degrades_and_labels() {
        let auto = Scanner::detect();
        let swar = Scanner::with_choice(ScannerChoice::ForceSwar);
        assert_eq!(swar.backend(), Backend::Swar);
        assert!(auto.backend() >= Backend::Swar);
        for b in [Backend::Swar, Backend::Sse2, Backend::Avx2] {
            assert_eq!(Backend::from_code(b.code()), Some(b));
            assert!(!b.name().is_empty());
        }
        assert_eq!(Backend::from_code(9), None);
        // Forced choices never exceed their cap.
        assert!(Scanner::with_choice(ScannerChoice::ForceSse2).backend() <= Backend::Sse2);
        assert!(Scanner::with_choice(ScannerChoice::ForceAvx2).backend() <= Backend::Avx2);
    }

    #[test]
    fn telemetry_compares_equal_by_design() {
        let a =
            ScanTelemetry { backend: Backend::Avx2, fast_path_bytes: 10, general_path_bytes: 2 };
        let b = ScanTelemetry::default();
        assert_eq!(a, b, "telemetry must never fail run-equivalence comparisons");
    }
}
