//! Batched event tape: amortizing the per-event pull-API cost.
//!
//! # Architecture
//!
//! The pull API ([`poll_resolved`](crate::reader::Reader::poll_resolved))
//! pays a fixed toll per event: a checkpoint copy, the `advance`/`current`
//! slot handshake, a `Polled` match in the caller, and a virtual-ish hop
//! into the consumer. At XMark density (~14 bytes/event) that toll is the
//! dominant cost once structural classification is SIMD-cheap. The tape
//! batches it away: [`Reader::fill_tape`](crate::reader::Reader::fill_tape)
//! runs the same incremental state machine but records a whole batch of
//! fully-resolved events — interned [`NameId`]s plus payload spans — into a
//! reusable [`EventTape`], and the consumer walks the batch with a tight
//! index-advance loop. A consumer that wants to skip a subtree scans the
//! recorded open/close kinds ([`EventTape::skip_scan`]) instead of stepping
//! the parser event by event.
//!
//! # Lifecycle: anchor → batch → drain → rollback
//!
//! 1. **Anchor** — a fill begins at a quiescent reader (no deferred window
//!    borrow, no half-delivered pending events) and stamps the tape with
//!    the source window epoch.
//! 2. **Batch** — lean constructs (plain tags, clean text) are recorded
//!    by an in-window *burst*: a local cursor walks the structural index
//!    without consuming, and the reader's position, offset and counters
//!    are committed in bulk when the burst exits — at the last event
//!    boundary, so anything non-lean falls back to the per-event
//!    checkpoint/rollback machinery with nothing to undo. Scanner-verified
//!    ASCII payloads — clean text runs and lean tag names — are recorded
//!    as *window spans* (origin + length into the reader's unconsumed
//!    buffer) and never copied; only the general path copies name bytes
//!    into the tape's arena.
//! 3. **Drain** — the consumer materializes each item back into a
//!    [`ResolvedEvent`](crate::events::ResolvedEvent) via
//!    [`Reader::tape_event`](crate::reader::Reader::tape_event). Window
//!    spans stay valid because the reader only compacts its buffer on the
//!    next `feed`, which by contract happens after the drain (enforced by
//!    the epoch stamp in debug builds).
//! 4. **Rollback** — a construct that runs out of fed bytes mid-parse is
//!    rolled back exactly as in pull mode; only the trailing partial event
//!    is discarded, everything already on the tape stands.
//!
//! # Why the tape is never serialized
//!
//! A `FLXS` snapshot is taken at *batch-drain quiescence*: the facade
//! drains every filled batch before control returns to the caller, so at
//! any snapshot point the tape is empty and the reader satisfies the same
//! invariants as in pull mode. Serializing the tape would also pin a
//! snapshot to transient window offsets. The tape is therefore a purely
//! in-memory accelerator — snapshot bytes are identical across
//! [`DeliveryMode`]s, and restoring under the opposite mode is always
//! legal.

use crate::symbols::NameId;

/// How a session delivers parser events to the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DeliveryMode {
    /// Batch events through an [`EventTape`] (the default).
    #[default]
    Tape,
    /// Pull one event at a time through `poll_resolved`.
    PerEvent,
}

impl DeliveryMode {
    /// The mode actually in effect: `FLUX_FORCE_PULL` (any non-empty
    /// value) forces [`DeliveryMode::PerEvent`] regardless of the builder
    /// setting, mirroring the `FLUX_FORCE_SWAR` scanner kill switch.
    #[inline]
    pub fn resolved(self) -> DeliveryMode {
        if force_pull() {
            DeliveryMode::PerEvent
        } else {
            self
        }
    }
}

/// Cached `FLUX_FORCE_PULL` check (the environment cannot change
/// mid-process in any way we support).
fn force_pull() -> bool {
    use std::sync::OnceLock;
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| std::env::var_os("FLUX_FORCE_PULL").is_some_and(|v| !v.is_empty()))
}

/// Delivery-layer counters, threaded through run stats like
/// `ScanTelemetry`.
///
/// Like the scan counters, these are observability, not semantics: two
/// runs that differ only in delivery mode produce equal stats, so the
/// telemetry compares as always-equal and is never serialized into
/// snapshots.
#[derive(Debug, Clone, Copy, Default)]
pub struct TapeTelemetry {
    /// Tape batches drained (0 in per-event mode).
    pub batches: u64,
    /// Events delivered via the tape.
    pub events: u64,
    /// Events fast-forwarded by in-tape skip scans instead of per-event
    /// dispatch.
    pub fast_forwarded: u64,
    /// Name resolutions answered by the `Symbols` quick table.
    pub quick_hits: u64,
    /// Name resolutions that fell through to the FNV map.
    pub quick_misses: u64,
    /// Skip-subtree pre-screens that armed a skip (no handler fired).
    pub prescreen_hits: u64,
    /// Pre-screens where some handler fired and the child was entered.
    pub prescreen_misses: u64,
}

/// Telemetry never participates in stats equality: a forced-pull run and
/// a tape run of the same document are the *same run* as far as tests and
/// snapshot compatibility are concerned.
impl PartialEq for TapeTelemetry {
    fn eq(&self, _: &TapeTelemetry) -> bool {
        true
    }
}

impl Eq for TapeTelemetry {}

/// The structural kind of one tape item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapeKind {
    /// Element open; payload is the name.
    Start,
    /// Element close; payload is the name.
    End,
    /// Character data; payload is the (unescaped) text.
    Text,
}

/// One recorded event: kind, interned id, and a payload span that lives
/// either in the tape's arena or directly in the reader's window.
#[derive(Debug, Clone, Copy)]
pub struct TapeItem {
    pub(crate) kind: TapeKind,
    pub(crate) id: NameId,
    pub(crate) off: u32,
    pub(crate) len: u32,
    /// Payload lives in the reader's unconsumed window, not the arena.
    pub(crate) window: bool,
}

impl TapeItem {
    /// The structural kind of this item.
    #[inline]
    pub fn kind(&self) -> TapeKind {
        self.kind
    }
}

/// Outcome of an in-tape skip scan (see [`EventTape::skip_scan`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipScan {
    /// The close event that ends the subtree is at index `at`; `skipped`
    /// events lie strictly inside (the close event itself is *not*
    /// counted — it is delivered normally, matching the pull-mode
    /// skip contract).
    Close { at: usize, skipped: u64 },
    /// The batch ended inside the subtree: all `skipped` remaining events
    /// were inside it, and the skip is still `depth` levels deep.
    Tail { depth: u32, skipped: u64 },
}

/// Soft batch size: small enough that items + payloads stay cache-warm
/// through the drain, large enough to amortize the per-batch handshake.
/// Skips spanning batches are handled by the `SkipScan::Tail` arm, so the
/// cap costs nothing on large skipped subtrees.
pub(crate) const TAPE_BATCH_EVENTS: usize = 1024;

/// Soft arena cap: a batch also ends once its copied payload bytes reach
/// this mark, so the arena allocated up front in [`EventTape::new`] is
/// (almost) never grown — the tape contributes zero allocations in steady
/// state and a *fixed* two at construction, which is what keeps whole-run
/// allocation counts independent of document size. A single oversized
/// payload (one giant name or non-window text run) may overshoot the cap
/// once; the grown capacity is then kept by `clear`.
pub(crate) const TAPE_ARENA_BYTES: usize = 32 * 1024;

/// A reusable batch of resolved events. See the [module docs](self) for
/// the lifecycle; constructed once per session and recycled every batch.
#[derive(Debug)]
pub struct EventTape {
    pub(crate) items: Vec<TapeItem>,
    /// Copied payload bytes (names, escaped/assembled text). Window-span
    /// items do not touch this arena.
    pub(crate) arena: String,
    /// Source-window epoch this batch was recorded against; used to
    /// assert (in debug builds) that window spans are materialized before
    /// the next compaction invalidates them.
    pub(crate) epoch: u64,
}

impl Default for EventTape {
    fn default() -> EventTape {
        EventTape::new()
    }
}

impl EventTape {
    /// An empty tape with its batch capacity allocated up front.
    pub fn new() -> EventTape {
        EventTape {
            items: Vec::with_capacity(TAPE_BATCH_EVENTS),
            arena: String::with_capacity(TAPE_ARENA_BYTES),
            epoch: 0,
        }
    }

    /// Number of recorded events.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no events are recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when the batch has reached its soft capacity — either the
    /// item count or the copied-payload arena mark (see
    /// [`TAPE_ARENA_BYTES`]).
    #[inline]
    pub fn is_full(&self) -> bool {
        self.items.len() >= TAPE_BATCH_EVENTS || self.arena.len() >= TAPE_ARENA_BYTES
    }

    /// Discard all recorded events, keeping the allocations.
    #[inline]
    pub fn clear(&mut self) {
        self.items.clear();
        self.arena.clear();
    }

    /// The item at `i` (panics when out of bounds).
    #[inline]
    pub fn item(&self, i: usize) -> TapeItem {
        self.items[i]
    }

    /// The structural kind at `i` without touching the payload.
    #[inline]
    pub fn kind(&self, i: usize) -> TapeKind {
        self.items[i].kind
    }

    /// Arena payload for a non-window item.
    #[inline]
    pub(crate) fn arena_str(&self, off: u32, len: u32) -> &str {
        &self.arena[off as usize..(off + len) as usize]
    }

    /// Record an event whose payload is copied into the arena.
    #[inline]
    pub(crate) fn push_arena(&mut self, kind: TapeKind, id: NameId, payload: &str) {
        let off = self.arena.len();
        self.arena.push_str(payload);
        assert!(self.arena.len() <= u32::MAX as usize, "tape arena exceeds 4 GiB");
        self.items.push(TapeItem {
            kind,
            id,
            off: off as u32,
            len: payload.len() as u32,
            window: false,
        });
    }

    /// Record an event whose payload stays in the reader's window: `len`
    /// bytes at absolute buffer offset `off` — a scanner-verified ASCII
    /// text run, or the in-window name bytes of a lean tag.
    #[inline]
    pub(crate) fn push_window(&mut self, kind: TapeKind, id: NameId, off: usize, len: usize) {
        assert!(off + len <= u32::MAX as usize, "source window exceeds 4 GiB");
        self.items.push(TapeItem { kind, id, off: off as u32, len: len as u32, window: true });
    }

    /// Scan forward from `from` for the close event that brings an active
    /// skip of `depth` levels back to its parent frame. Text and start
    /// events inside the subtree only bump counters; the caller
    /// fast-forwards the consumer by `skipped` events in one call.
    pub fn skip_scan(&self, from: usize, depth: u32) -> SkipScan {
        let mut d = depth;
        for (k, it) in self.items[from..].iter().enumerate() {
            match it.kind {
                TapeKind::Start => d += 1,
                TapeKind::Text => {}
                TapeKind::End => {
                    if d == 1 {
                        return SkipScan::Close { at: from + k, skipped: k as u64 };
                    }
                    d -= 1;
                }
            }
        }
        SkipScan::Tail { depth: d, skipped: (self.items.len() - from) as u64 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tape_of(kinds: &[TapeKind]) -> EventTape {
        let mut t = EventTape::new();
        for &k in kinds {
            match k {
                TapeKind::Text => t.push_window(TapeKind::Text, NameId::UNKNOWN, 0, 0),
                k => t.push_arena(k, NameId::UNKNOWN, "x"),
            }
        }
        t
    }

    #[test]
    fn skip_scan_finds_the_matching_close() {
        use TapeKind::{End, Start, Text};
        // <a> <b> t </b> </a>  — skip armed right after <a> at depth 1.
        let t = tape_of(&[Start, Text, End, End]);
        assert_eq!(t.skip_scan(0, 1), SkipScan::Close { at: 3, skipped: 3 });
        // Already at the close.
        assert_eq!(t.skip_scan(3, 1), SkipScan::Close { at: 3, skipped: 0 });
    }

    #[test]
    fn skip_scan_reports_batch_tail_depth() {
        use TapeKind::{Start, Text};
        let t = tape_of(&[Start, Start, Text]);
        // Still two levels deeper than the armed frame, three events in.
        assert_eq!(t.skip_scan(0, 1), SkipScan::Tail { depth: 3, skipped: 3 });
        assert_eq!(t.skip_scan(3, 7), SkipScan::Tail { depth: 7, skipped: 0 });
    }

    #[test]
    fn arena_and_window_payloads_round_trip() {
        let mut t = EventTape::new();
        t.push_arena(TapeKind::Start, NameId(3), "person");
        t.push_window(TapeKind::Text, NameId::UNKNOWN, 17, 4);
        t.push_arena(TapeKind::End, NameId(3), "person");
        assert_eq!(t.len(), 3);
        let it = t.item(0);
        assert_eq!(t.arena_str(it.off, it.len), "person");
        assert!(!it.window);
        let tx = t.item(1);
        assert!(tx.window);
        assert_eq!((tx.off, tx.len), (17, 4));
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn forced_pull_resolution_is_stable() {
        // Whatever the environment says, resolved() is deterministic and
        // idempotent within a process.
        let a = DeliveryMode::Tape.resolved();
        assert_eq!(a, DeliveryMode::Tape.resolved());
        assert_eq!(DeliveryMode::PerEvent.resolved(), DeliveryMode::PerEvent);
    }
}
