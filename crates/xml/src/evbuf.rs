//! Arena-backed event buffers: the compact owned form of an event slice.
//!
//! The paper's runtime buffers hold well-formed event sequences; the naive
//! owned form (`Vec<OwnedEvent>`, one `Box<str>` per event) pays one heap
//! allocation per buffered event. [`EventBuf`] stores the same sequence as
//! a flat record array plus one byte arena: tags carry their [`NameId`] and
//! an `(offset, len)` span of the name bytes, text events a span of the
//! text bytes. Pushing an event is two `Vec` appends (amortized, no
//! per-event allocation); replaying yields [`ResolvedEvent`]s that are
//! indistinguishable from live reader output — exactly the paper's "data
//! read from a buffer is indistinguishable from data read from the input
//! stream" (Section 5).
//!
//! `payload_bytes` of each event (name length for tags, text length for
//! character data) is the span length, so buffer accounting is identical to
//! the boxed representation.

use crate::events::ResolvedEvent;
use crate::symbols::NameId;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Start,
    End,
    Text,
}

#[derive(Debug, Clone, Copy)]
struct Item {
    kind: Kind,
    id: NameId,
    off: u32,
    len: u32,
}

/// A growable, arena-backed buffer of events. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct EventBuf {
    items: Vec<Item>,
    arena: String,
}

impl EventBuf {
    /// An empty buffer.
    pub fn new() -> EventBuf {
        EventBuf::default()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Drop all events (retains capacity).
    pub fn clear(&mut self) {
        self.items.clear();
        self.arena.clear();
    }

    /// Drop every event after the first `len` (retains capacity). Used by
    /// the incremental reader to roll back a partially parsed construct.
    pub fn truncate(&mut self, len: usize) {
        if len < self.items.len() {
            self.arena.truncate(self.items[len].off as usize);
            self.items.truncate(len);
        }
    }

    fn push(&mut self, kind: Kind, id: NameId, payload: &str) -> usize {
        // Spans are u32 to keep records compact; a single buffer holding
        // ≥ 4 GiB of payload must fail loudly rather than wrap offsets and
        // replay corrupted events. (Engine buffer limits normally abort
        // far earlier; this guards the unlimited configuration.)
        let end = self.arena.len() + payload.len();
        assert!(end <= u32::MAX as usize, "event buffer arena exceeds the 4 GiB span limit");
        let off = self.arena.len() as u32;
        self.arena.push_str(payload);
        self.items.push(Item { kind, id, off, len: payload.len() as u32 });
        payload.len()
    }

    /// Append `<name>`; returns the payload bytes charged (the name length).
    pub fn push_start(&mut self, id: NameId, name: &str) -> usize {
        self.push(Kind::Start, id, name)
    }

    /// Append `</name>`; returns the payload bytes charged.
    pub fn push_end(&mut self, id: NameId, name: &str) -> usize {
        self.push(Kind::End, id, name)
    }

    /// Append character data; returns the payload bytes charged.
    pub fn push_text(&mut self, text: &str) -> usize {
        self.push(Kind::Text, NameId::UNKNOWN, text)
    }

    /// The `i`-th event, if present.
    pub fn get(&self, i: usize) -> Option<ResolvedEvent<'_>> {
        self.items.get(i).map(|it| self.view(it))
    }

    /// The most recently pushed event.
    pub fn last(&self) -> Option<ResolvedEvent<'_>> {
        self.items.last().map(|it| self.view(it))
    }

    /// Iterate the buffered events in order.
    pub fn iter(&self) -> impl Iterator<Item = ResolvedEvent<'_>> {
        self.items.iter().map(|it| self.view(it))
    }

    /// Total payload bytes held (the buffer-accounting metric: tag names
    /// once per event, text once).
    pub fn payload_bytes(&self) -> usize {
        self.arena.len()
    }

    fn view(&self, it: &Item) -> ResolvedEvent<'_> {
        let s = &self.arena[it.off as usize..(it.off + it.len) as usize];
        match it.kind {
            Kind::Start => ResolvedEvent::Start(it.id, s),
            Kind::End => ResolvedEvent::End(it.id, s),
            Kind::Text => ResolvedEvent::Text(s),
        }
    }

    /// Serialize the buffered events (see `flux_state` for the session
    /// snapshot this feeds). The arena layout is not encoded — only the
    /// logical event sequence — so the format is independent of pooling and
    /// capacity history.
    pub fn state_save(&self, enc: &mut flux_state::Enc) {
        enc.put_usize(self.items.len());
        for it in &self.items {
            enc.put_u8(match it.kind {
                Kind::Start => 0,
                Kind::End => 1,
                Kind::Text => 2,
            });
            enc.put_uint(u64::from(it.id.0));
            enc.put_str(&self.arena[it.off as usize..(it.off + it.len) as usize]);
        }
    }

    /// Rebuild a buffer saved by [`EventBuf::state_save`].
    pub fn state_load(dec: &mut flux_state::Dec<'_>) -> Result<EventBuf, flux_state::StateError> {
        let n = dec.get_count()?;
        let mut buf = EventBuf::new();
        for _ in 0..n {
            let kind = dec.get_u8()?;
            let id = NameId(
                u32::try_from(dec.get_uint()?)
                    .map_err(|_| flux_state::StateError::Corrupt("NameId exceeds u32"))?,
            );
            let payload = dec.get_str()?;
            match kind {
                0 => buf.push_start(id, payload),
                1 => buf.push_end(id, payload),
                2 => buf.push_text(payload),
                _ => return Err(flux_state::StateError::Corrupt("unknown event kind")),
            };
        }
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::Event;

    #[test]
    fn push_and_replay() {
        let mut b = EventBuf::new();
        assert!(b.is_empty());
        assert_eq!(b.push_start(NameId(3), "book"), 4);
        assert_eq!(b.push_text("hi"), 2);
        assert_eq!(b.push_end(NameId(3), "book"), 4);
        assert_eq!(b.len(), 3);
        let evs: Vec<Event<'_>> = b.iter().map(ResolvedEvent::to_event).collect();
        assert_eq!(evs, vec![Event::Start("book"), Event::Text("hi"), Event::End("book")]);
        assert_eq!(b.get(1), Some(ResolvedEvent::Text("hi")));
        assert_eq!(b.last(), Some(ResolvedEvent::End(NameId(3), "book")));
        assert_eq!(b.payload_bytes(), 10);
    }

    #[test]
    fn clear_retains_nothing_visible() {
        let mut b = EventBuf::new();
        b.push_start(NameId(1), "a");
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.payload_bytes(), 0);
        assert_eq!(b.get(0), None);
    }

    #[test]
    fn ids_survive_buffering() {
        let mut b = EventBuf::new();
        b.push_start(NameId(7), "x");
        b.push_end(NameId::UNKNOWN, "zzz");
        assert_eq!(b.get(0), Some(ResolvedEvent::Start(NameId(7), "x")));
        assert_eq!(b.get(1), Some(ResolvedEvent::End(NameId::UNKNOWN, "zzz")));
    }
}
