//! Interned element names: the compile-time symbol table of the pipeline.
//!
//! # Architecture
//!
//! The FluX engine's cost model is *per event*: whatever work the pipeline
//! does for one SAX event is multiplied by every start tag of every
//! document. The element vocabulary, however, is static — it is fixed by
//! the DTD and the query at *prepare* time. This module exploits that split:
//!
//! * [`Symbols`] interns every element name of the static vocabulary once
//!   (DTD productions when the schema is parsed, query labels and path
//!   steps when a query is prepared) and assigns each a dense [`NameId`].
//! * The [`Reader`](crate::reader::Reader) carries an optional shared
//!   `Arc<Symbols>`; with it, each tag name is hashed **once at
//!   tokenization** and every downstream consumer — Glushkov automaton
//!   steps, handler dispatch, condition flags, buffer trees — works with
//!   integer comparisons and array indexing instead of string hashing.
//! * Names outside the static vocabulary resolve to the reserved
//!   [`NameId::UNKNOWN`]. Interned ids start at 1, so an unknown name can
//!   never collide with a vocabulary name: dispatch and validation treat
//!   UNKNOWN as "matches nothing", while the event itself still carries the
//!   name text for copying, buffering and error messages.
//!
//! The table is append-only and frozen behind an `Arc` once a schema or
//! prepared query is built, so any number of concurrent runs share it
//! without synchronization.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A dense id for an interned element name. `UNKNOWN` (0) is reserved for
/// names outside the static vocabulary; real names get ids from 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NameId(pub u32);

impl NameId {
    /// The reserved id for names absent from the symbol table.
    pub const UNKNOWN: NameId = NameId(0);

    /// Is this the reserved unknown id?
    #[inline]
    pub fn is_unknown(self) -> bool {
        self.0 == 0
    }

    /// The id as a dense array index (UNKNOWN is index 0).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// FNV-1a: tag names are short ASCII strings; a multiply-xor byte loop
/// beats SipHash on the per-event resolve path by a wide margin.
#[derive(Default)]
pub struct FnvHasher(u64);

impl Hasher for FnvHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 { 0xcbf2_9ce4_8422_2325 } else { self.0 };
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        self.0 = h;
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

type FnvMap<K, V> = HashMap<K, V, BuildHasherDefault<FnvHasher>>;

/// One slot of the quick-resolve table: a direct-mapped cache in front of
/// the FNV map, keyed by the first eight name bytes plus the length. A
/// vocabulary name whose slot was taken first by another name simply stays
/// on the fallback path — the cache is an accelerator, never an authority.
#[derive(Debug, Clone, Copy)]
struct QuickSlot {
    /// First eight bytes of the name, little-endian, zero-padded.
    key: u64,
    /// Name length in bytes (`u32::MAX` marks an empty slot).
    len: u32,
    id: u32,
}

const QUICK_EMPTY: QuickSlot = QuickSlot { key: 0, len: u32::MAX, id: 0 };
const QUICK_SLOTS: usize = 512;

/// One multiply over the packed prefix — the whole point of the quick
/// table: the per-event FNV byte loop becomes a single word operation.
#[inline]
fn quick_hash(key: u64, len: usize) -> usize {
    ((key ^ len as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 52) as usize & (QUICK_SLOTS - 1)
}

/// The first eight bytes of a name as a little-endian word, zero-padded.
#[inline]
fn quick_key(name: &[u8]) -> u64 {
    if let Some(head) = name.get(..8) {
        u64::from_le_bytes(head.try_into().expect("eight bytes"))
    } else {
        let mut b = [0u8; 8];
        b[..name.len()].copy_from_slice(name);
        u64::from_le_bytes(b)
    }
}

/// An append-only interning table mapping element names to [`NameId`]s.
/// See the [module docs](self) for where it sits in the pipeline.
#[derive(Debug, Clone)]
pub struct Symbols {
    /// `names[id.index()]`; slot 0 is the UNKNOWN placeholder.
    names: Vec<Box<str>>,
    index: FnvMap<Box<str>, u32>,
    /// Direct-mapped quick-resolve cache (see [`QuickSlot`]).
    quick: Vec<QuickSlot>,
}

impl Default for Symbols {
    fn default() -> Symbols {
        Symbols::new()
    }
}

impl Symbols {
    /// An empty table (only the reserved UNKNOWN slot).
    pub fn new() -> Symbols {
        Symbols {
            names: vec!["".into()],
            index: FnvMap::default(),
            quick: vec![QUICK_EMPTY; QUICK_SLOTS],
        }
    }

    /// Intern a name, returning its (possibly pre-existing) id.
    pub fn intern(&mut self, name: &str) -> NameId {
        if self.names.is_empty() {
            self.names.push("".into());
        }
        match self.index.get(name) {
            Some(&id) => NameId(id),
            None => {
                let id = self.names.len() as u32;
                self.names.push(name.into());
                self.index.insert(name.into(), id);
                if self.quick.len() == QUICK_SLOTS && !name.is_empty() {
                    let key = quick_key(name.as_bytes());
                    let slot = &mut self.quick[quick_hash(key, name.len())];
                    if slot.len == u32::MAX {
                        *slot = QuickSlot { key, len: name.len() as u32, id };
                    }
                }
                NameId(id)
            }
        }
    }

    /// Resolve a name: its id if interned, [`NameId::UNKNOWN`] otherwise.
    /// This is the per-event call: one multiply against the quick table in
    /// the common case, one FNV hash + probe on a quick miss.
    #[inline]
    pub fn resolve(&self, name: &str) -> NameId {
        self.resolve_traced(name).0
    }

    /// [`resolve`](Symbols::resolve) plus whether the quick table answered
    /// (`true` = quick hit, `false` = FNV-map fallback). The reader counts
    /// these into the tape telemetry so the cache hit rate is observable.
    #[inline]
    pub fn resolve_traced(&self, name: &str) -> (NameId, bool) {
        let bytes = name.as_bytes();
        let key = quick_key(bytes);
        if let Some(s) = self.quick.get(quick_hash(key, bytes.len())) {
            if s.key == key
                && s.len as usize == bytes.len()
                // A prefix+length match only proves identity for short
                // names; longer ones confirm the tail against the interned
                // spelling.
                && (bytes.len() <= 8
                    || self.names[s.id as usize].as_bytes()[8..] == bytes[8..])
            {
                return (NameId(s.id), true);
            }
        }
        match self.index.get(name) {
            Some(&id) => (NameId(id), false),
            None => (NameId::UNKNOWN, false),
        }
    }

    /// The name of an id (the empty string for UNKNOWN).
    pub fn name(&self, id: NameId) -> &str {
        self.names.get(id.index()).map_or("", |n| n)
    }

    /// Table width: interned names + the UNKNOWN slot. Dense per-name
    /// arrays (automaton columns, production maps) use this as their width.
    pub fn len(&self) -> usize {
        self.names.len().max(1)
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.len() <= 1
    }

    /// All interned names with their ids (UNKNOWN excluded).
    pub fn iter(&self) -> impl Iterator<Item = (NameId, &str)> {
        self.names.iter().enumerate().skip(1).map(|(i, n)| (NameId(i as u32), &**n))
    }

    /// A deterministic digest of the table contents (names in id order).
    ///
    /// The table is append-only and frozen behind an `Arc` at prepare time,
    /// so a session snapshot has no symbol *delta* to carry — every
    /// `NameId` in the saved state is an index into the plan's table. The
    /// fingerprint is what makes that sound: a snapshot records it, and a
    /// restore against a plan whose table hashes differently is refused
    /// instead of silently misinterpreting every id.
    pub fn fingerprint(&self) -> u64 {
        let mut h = flux_state::Fnv64::new();
        h.write_u64(self.names.len() as u64);
        for n in &self.names {
            h.write(n.as_bytes());
            h.write(&[0xff]); // unambiguous name separator
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut s = Symbols::new();
        let a = s.intern("book");
        let b = s.intern("title");
        assert_eq!(s.intern("book"), a);
        assert_ne!(a, b);
        assert_eq!(a, NameId(1));
        assert_eq!(b, NameId(2));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn resolve_unknown_is_reserved() {
        let mut s = Symbols::new();
        s.intern("book");
        assert_eq!(s.resolve("book"), NameId(1));
        assert_eq!(s.resolve("nope"), NameId::UNKNOWN);
        assert!(s.resolve("nope").is_unknown());
        assert!(!s.resolve("book").is_unknown());
    }

    #[test]
    fn names_round_trip() {
        let mut s = Symbols::new();
        let id = s.intern("person_id");
        assert_eq!(s.name(id), "person_id");
        assert_eq!(s.name(NameId::UNKNOWN), "");
        let all: Vec<_> = s.iter().collect();
        assert_eq!(all, vec![(id, "person_id")]);
    }

    #[test]
    fn resolve_traced_reports_quick_hits() {
        let mut s = Symbols::new();
        s.intern("person");
        let (id, quick) = s.resolve_traced("person");
        assert_eq!(id, NameId(1));
        assert!(quick, "first-claimed slot answers from the quick table");
        let (id, quick) = s.resolve_traced("absent");
        assert_eq!(id, NameId::UNKNOWN);
        assert!(!quick);
    }

    #[test]
    fn default_table_resolves_everything_to_unknown() {
        let s = Symbols::default();
        assert_eq!(s.resolve("x"), NameId::UNKNOWN);
        assert_eq!(s.len(), 1);
    }
}
