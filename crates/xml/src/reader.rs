//! Pull-based streaming XML parser.
//!
//! [`Reader`] reads from any [`BufRead`] source and yields one
//! [`Event`] at a time without ever materializing the document — the property
//! the whole FluX approach depends on. It performs well-formedness checking
//! (matching tags, a single root element) and resolves entity references.
//!
//! # Name resolution
//!
//! A reader may carry a shared [`Symbols`] table
//! ([`Reader::with_symbols`]); [`Reader::next_resolved`] then yields
//! [`ResolvedEvent`]s whose tag names were hashed **once at tokenization**
//! into dense [`NameId`]s. Names outside the table resolve to
//! [`NameId::UNKNOWN`] but still carry their text. End tags never re-hash:
//! the id is remembered on the open-element stack, which itself is a flat
//! byte arena — the streaming path performs no per-event heap allocation.
//!
//! Attribute handling follows the paper's experimental setup (Appendix A):
//! the prototype's "XSAX parser converted attributes into subelements
//! on-the-fly". [`AttributeMode::ConvertToSubelements`] reproduces this:
//! `<person id="person0">` is reported as
//! `<person><person_id>person0</person_id>` with the synthesized element name
//! `{element}_{attribute}` (so `person`+`id` → `person_id`, `buyer`+`person`
//! → `buyer_person`, exactly the names the adapted XMark queries use).

use std::fmt;
use std::io::{self, BufRead};
use std::sync::Arc;

use crate::evbuf::EventBuf;
use crate::events::{Event, OwnedEvent, ResolvedEvent};
use crate::scan::{ScanTelemetry, Scanner, ScannerChoice, StructuralIndex, BLOCK};
use crate::symbols::{NameId, Symbols};
use crate::tape::{DeliveryMode, EventTape, TapeKind, TAPE_BATCH_EVENTS};
use crate::xsax::converted_name_into;

/// How the reader treats attributes in start tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AttributeMode {
    /// Error out when an attribute is encountered (the paper's core data
    /// model is attribute-free).
    Reject,
    /// Parse and discard attributes.
    Drop,
    /// Convert each attribute into a subelement named
    /// `{element}_{attribute}`, placed before the element's other children
    /// (the paper's XSAX behaviour).
    #[default]
    ConvertToSubelements,
}

/// Reader configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReaderOptions {
    /// Attribute handling; defaults to XSAX-style conversion.
    pub attributes: AttributeMode,
    /// Report whitespace-only text nodes. Off by default: element-content
    /// documents (like XMark) routinely contain indentation that carries no
    /// data and would only inflate buffers.
    pub keep_whitespace: bool,
    /// Structural-scanner backend selection (see [`crate::scan`]); defaults
    /// to the best kernel the CPU supports.
    pub scanner: ScannerChoice,
    /// Event delivery strategy (see [`crate::tape`]); defaults to batched
    /// tape delivery. Like the scanner backend, this is a performance
    /// knob, not a semantic one: the event stream, all errors, and all
    /// snapshot bytes are identical across modes.
    pub delivery: DeliveryMode,
}

/// Classification of parse failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlErrorKind {
    /// Byte stream is not valid UTF-8.
    Utf8,
    /// Underlying I/O failure.
    Io(String),
    /// `</b>` closing `<a>`, or close with nothing open.
    MismatchedTag { expected: Option<String>, found: String },
    /// Document ended with open elements.
    UnexpectedEof,
    /// Content after the root element was closed.
    TrailingContent,
    /// Character data outside the root element.
    TextOutsideRoot,
    /// Malformed tag, bad name, bad attribute syntax, bad entity, …
    Syntax(String),
    /// An attribute was seen under [`AttributeMode::Reject`].
    AttributeRejected { element: String, attribute: String },
}

/// A parse error with the byte offset at which it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// What went wrong.
    pub kind: XmlErrorKind,
    /// Byte offset into the input stream.
    pub offset: u64,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            XmlErrorKind::Utf8 => write!(f, "invalid UTF-8 at byte {}", self.offset),
            XmlErrorKind::Io(e) => write!(f, "I/O error at byte {}: {e}", self.offset),
            XmlErrorKind::MismatchedTag { expected, found } => match expected {
                Some(e) => write!(
                    f,
                    "mismatched end tag </{found}> at byte {}, expected </{e}>",
                    self.offset
                ),
                None => {
                    write!(f, "end tag </{found}> with no open element at byte {}", self.offset)
                }
            },
            XmlErrorKind::UnexpectedEof => {
                write!(f, "unexpected end of input at byte {}", self.offset)
            }
            XmlErrorKind::TrailingContent => {
                write!(f, "content after document root at byte {}", self.offset)
            }
            XmlErrorKind::TextOutsideRoot => {
                write!(f, "character data outside the root element at byte {}", self.offset)
            }
            XmlErrorKind::Syntax(m) => write!(f, "XML syntax error at byte {}: {m}", self.offset),
            XmlErrorKind::AttributeRejected { element, attribute } => {
                write!(
                    f,
                    "attribute `{attribute}` on `<{element}>` at byte {} (attribute-free mode)",
                    self.offset
                )
            }
        }
    }
}

impl std::error::Error for XmlError {}

enum Slot {
    None,
    /// Borrow target for a text event (decoded into `text_buf`).
    Text,
    /// Text served directly from the source's buffer (zero-copy fast
    /// path): the first `len` bytes of the *unconsumed* window, verified
    /// ASCII and entity-free. `defer_consume` keeps the window in place
    /// until the next pull.
    SrcText {
        len: usize,
    },
    /// Borrow target for an end tag name (`name_buf` + `cur_id`).
    EndName,
    /// Borrow target for a start tag name (attribute-free fast path).
    StartName,
    /// Start tag served straight from the stack arena: the name is the
    /// topmost `stack` entry, which the fast path just pushed — no copy
    /// into `name_buf`.
    StackTop,
    /// End tag served straight from the stack arena: the name is the
    /// topmost `stack` entry; the pop (and arena truncate) is deferred to
    /// the next pull so the borrow needs no copy, mirroring
    /// `defer_consume`.
    StackPop,
    /// Index into the `pending` event buffer.
    Pending(usize),
}

/// Outcome of a fast-path attempt. `Fallback` guarantees no state was
/// consumed or mutated: the general path re-reads the same bytes.
enum Fast {
    /// Event produced (slot set).
    Emitted,
    /// Handled without an event (whitespace dropped, tag opened).
    Skipped,
    /// Not a fast-path shape; use the general path.
    Fallback,
}

/// Per-event name resolution with quick-table hit accounting. A free
/// function over the reader's disjoint fields so call sites may keep the
/// name borrowed from the input buffers while the counters are bumped.
#[inline]
fn resolve_counted(
    symbols: &Option<Arc<Symbols>>,
    quick_hits: &mut u64,
    quick_misses: &mut u64,
    name: &str,
) -> NameId {
    match symbols {
        Some(s) => {
            let (id, quick) = s.resolve_traced(name);
            if quick {
                *quick_hits += 1;
            } else {
                *quick_misses += 1;
            }
            id
        }
        None => NameId::UNKNOWN,
    }
}

/// Record an element opening: a self-closing tag queues its end event in
/// the pending buffer (reclaiming it first if fully drained); an open tag
/// appends its name bytes to the flat stack arena. A free function over the
/// reader's disjoint fields, so callers may keep `name` borrowed from the
/// input buffers.
fn open_element(
    pending: &mut EventBuf,
    pending_pos: &mut usize,
    stack: &mut Vec<(u32, NameId)>,
    stack_buf: &mut String,
    id: NameId,
    name: &str,
    self_closing: bool,
) {
    if self_closing {
        if *pending_pos == pending.len() {
            pending.clear();
            *pending_pos = 0;
        }
        pending.push_end(id, name);
    } else {
        let off = stack_buf.len() as u32;
        stack_buf.push_str(name);
        stack.push((off, id));
    }
}

/// Ensure the structural index covers the current parse position
/// (`offset` = stream offset of `buf[0]`), re-anchoring when the parse has
/// moved past — or, after an incremental rollback, before — the covered
/// range. Returns the index-relative position of `buf[0]`.
///
/// One anchor batch serves the next few hundred events; classification is
/// amortized to ~one pass per input byte. Free function (not a method) so
/// it can run while `buf` still borrows the source field.
#[inline]
fn ensure_index(scanner: Scanner, idx: &mut StructuralIndex, offset: u64, buf: &[u8]) -> usize {
    if let Some(d) = offset.checked_sub(idx.origin()) {
        if d < idx.covered() as u64 {
            let d = d as usize;
            // A batch ending mid-block (the anchor ran out of window) can't
            // be extended in place; if the window has since grown past it —
            // an incremental feed landed — re-anchor so `extend` always
            // continues from a block-aligned boundary.
            if idx.covered().is_multiple_of(BLOCK) || idx.covered() - d >= buf.len() {
                return d;
            }
        }
    }
    scanner.anchor(idx, offset, buf);
    0
}

/// First `<` (`gt == false`) or `>` (`gt == true`) in the window, searching
/// the index from position `*delta` (= the window start) and classifying
/// more of the window while uncovered bytes remain. Returns a
/// window-relative position; `None` means the construct crosses the window
/// (the caller falls back to the accumulating path, exactly as the raw
/// byte-search did).
///
/// On a miss past the covered range the index is *re-anchored* at the
/// window start (updating `*delta` for the caller's later mask queries)
/// rather than extended in place: extension would let the index span the
/// whole stream on a one-shot source, growing mask storage with document
/// size. Re-anchoring bounds it at one anchor batch plus one construct;
/// only the partial tail beyond the old coverage is classified twice.
/// In-place extension still handles a single construct outgrowing a fresh
/// anchor (`*delta == 0`).
#[inline]
fn find_structural(
    scanner: Scanner,
    idx: &mut StructuralIndex,
    offset: u64,
    delta: &mut usize,
    buf: &[u8],
    gt: bool,
) -> Option<usize> {
    let mut from = *delta;
    loop {
        let hit = if gt { idx.first_gt(from) } else { idx.first_lt(from) };
        if let Some(p) = hit {
            return Some(p - *delta);
        }
        let covered_rel = idx.covered() - *delta;
        if covered_rel >= buf.len() {
            return None;
        }
        if *delta > 0 {
            scanner.anchor(idx, offset, buf);
            *delta = 0;
            from = 0;
        } else {
            from = idx.covered();
            scanner.extend(idx, &buf[covered_rel..]);
        }
    }
}

/// [`find_structural`] for the burst walk of [`Reader::skip_events`]: the
/// window is anchored at the *burst start* (which never moves — the walk
/// does not consume), so the search position `start` is an arbitrary
/// window-relative offset rather than always `0`. `shift` maps
/// window-relative positions to index positions (`idx_pos = pos + shift`);
/// it goes negative once the walk re-anchors mid-window. The re-anchor
/// policy is the same as [`find_structural`]'s: anchor at the current
/// search position when the walk has moved past the batch start (bounding
/// mask storage at one anchor batch regardless of burst length), extend in
/// place only while sitting on a fresh anchor.
#[inline]
fn skip_find(
    scanner: Scanner,
    idx: &mut StructuralIndex,
    off0: u64,
    shift: &mut isize,
    buf: &[u8],
    start: usize,
    gt: bool,
) -> Option<usize> {
    loop {
        let from = start.wrapping_add_signed(*shift);
        let hit = if gt { idx.first_gt(from) } else { idx.first_lt(from) };
        if let Some(p) = hit {
            return Some(p.wrapping_add_signed(-*shift));
        }
        let covered_rel = idx.covered().wrapping_add_signed(-*shift);
        if covered_rel >= buf.len() {
            return None;
        }
        if from > 0 {
            scanner.anchor(idx, off0 + start as u64, &buf[start..]);
            *shift = -(start as isize);
        } else {
            scanner.extend(idx, &buf[covered_rel..]);
        }
    }
}

/// Streaming pull parser. See the [module documentation](self).
pub struct Reader<R> {
    src: R,
    opts: ReaderOptions,
    /// Stage-1 structural classifier, resolved once from
    /// `opts.scanner` (see [`crate::scan`]).
    scanner: Scanner,
    /// Reusable stage-1 output the fast paths parse from.
    sidx: StructuralIndex,
    /// Bytes consumed via the structural fast paths (telemetry).
    fast_bytes: u64,
    /// Bytes consumed via the accumulating general path (telemetry).
    general_bytes: u64,
    /// Name resolutions answered by the `Symbols` quick table (telemetry).
    quick_hits: u64,
    /// Name resolutions that fell through to the FNV map (telemetry).
    quick_misses: u64,
    /// Static vocabulary for [`Reader::next_resolved`]; without it every
    /// name resolves to [`NameId::UNKNOWN`].
    symbols: Option<Arc<Symbols>>,
    /// Open elements: `(offset into stack_buf, resolved id)`. The name
    /// bytes live in `stack_buf`, so opening an element allocates nothing.
    stack: Vec<(u32, NameId)>,
    stack_buf: String,
    /// Queued events (attribute conversion, self-closing end tags), arena
    /// backed — no per-event allocation.
    pending: EventBuf,
    pending_pos: usize,
    slot: Slot,
    /// Resolved id of the tag in `name_buf` (slots `StartName`/`EndName`).
    cur_id: NameId,
    text_buf: String,
    name_buf: String,
    /// Scratch for synthesized `{element}_{attribute}` names.
    synth_buf: String,
    /// Scratch spans for the attribute fast path: `(name, value)` byte
    /// ranges of the tag body, validated before anything is mutated.
    attr_spans: Vec<(u32, u32, u32, u32)>,
    raw: Vec<u8>,
    /// Bytes of the source's buffered window that belong to the event
    /// currently held in `slot` (zero-copy text): consumed on the next
    /// pull, after the borrow ends.
    defer_consume: usize,
    offset: u64,
    seen_root: bool,
    /// True when the next bytes to parse are the inside of a `<…>` tag (the
    /// `<` has already been consumed while scanning text).
    in_tag: bool,
    finished: bool,
}

impl<'s> Reader<&'s [u8]> {
    /// Parse from an in-memory string.
    #[allow(clippy::should_implement_trait)] // fallible trait shape does not fit
    pub fn from_str(s: &'s str) -> Self {
        Self::new(s.as_bytes(), ReaderOptions::default())
    }
}

impl<R: BufRead> Reader<R> {
    /// Create a reader over any buffered byte source.
    pub fn new(src: R, opts: ReaderOptions) -> Self {
        Reader {
            src,
            opts,
            scanner: Scanner::with_choice(opts.scanner),
            sidx: StructuralIndex::new(),
            fast_bytes: 0,
            general_bytes: 0,
            quick_hits: 0,
            quick_misses: 0,
            symbols: None,
            stack: Vec::new(),
            stack_buf: String::new(),
            pending: EventBuf::new(),
            pending_pos: 0,
            slot: Slot::None,
            cur_id: NameId::UNKNOWN,
            text_buf: String::new(),
            name_buf: String::new(),
            synth_buf: String::new(),
            attr_spans: Vec::new(),
            raw: Vec::new(),
            defer_consume: 0,
            offset: 0,
            seen_root: false,
            in_tag: false,
            finished: false,
        }
    }

    /// Create a reader that resolves tag names against a shared symbol
    /// table (see the [module docs](self)).
    pub fn with_symbols(src: R, opts: ReaderOptions, symbols: Arc<Symbols>) -> Self {
        let mut r = Self::new(src, opts);
        r.symbols = Some(symbols);
        r
    }

    /// Number of bytes consumed from the source so far.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Depth of currently open elements.
    pub fn depth(&self) -> usize {
        // An End event just delivered from the fast path leaves its pop
        // pending until the next pull; it is closed as far as callers are
        // concerned.
        self.stack.len() - usize::from(matches!(self.slot, Slot::StackPop))
    }

    /// Scan-path observability: selected backend and bytes consumed per
    /// path. See [`ScanTelemetry`] for why this never affects equality.
    pub fn scan_telemetry(&self) -> ScanTelemetry {
        ScanTelemetry {
            backend: self.scanner.backend(),
            fast_path_bytes: self.fast_bytes,
            general_path_bytes: self.general_bytes,
        }
    }

    fn err<T>(&self, kind: XmlErrorKind) -> Result<T, XmlError> {
        Err(XmlError { kind, offset: self.offset })
    }

    /// Quick-resolve cache counters `(hits, misses)` — see
    /// [`Symbols::resolve_traced`]. Telemetry only; never serialized.
    pub fn quick_counters(&self) -> (u64, u64) {
        (self.quick_hits, self.quick_misses)
    }

    /// Pull the next event. Returns `Ok(None)` at a well-formed end of
    /// document. The returned event borrows from the reader and must be
    /// released (dropped) before the next call.
    pub fn next_event(&mut self) -> Result<Option<Event<'_>>, XmlError> {
        Ok(self.next_resolved()?.map(ResolvedEvent::to_event))
    }

    /// Pull the next event with its tag name resolved to a [`NameId`]
    /// (see the [module docs](self)). Identical stream to
    /// [`Reader::next_event`], plus ids.
    ///
    /// Dispatches to a zero-copy fast path whenever the next construct sits
    /// entirely inside the source's buffered window and has the common
    /// shape (entity-free ASCII text, attribute-free ASCII tags); anything
    /// else — buffer boundaries, entities, attributes, comments, CDATA,
    /// DOCTYPE, non-ASCII names — takes the general accumulating path,
    /// which the fast path leaves completely untouched on fallback.
    pub fn next_resolved(&mut self) -> Result<Option<ResolvedEvent<'_>>, XmlError> {
        if self.advance()? {
            Ok(Some(self.current()?))
        } else {
            Ok(None)
        }
    }

    /// Parse up to the next event, leaving it described in `self.slot`.
    /// Returns `false` at a well-formed end of document. Split from the
    /// event materialization ([`Reader::current`]) so the incremental mode
    /// can inspect reader state between parsing and borrowing the event.
    fn advance(&mut self) -> Result<bool, XmlError> {
        if self.defer_consume > 0 {
            // The previous event borrowed the source window; release it now
            // that the borrow is over.
            self.src.consume(self.defer_consume);
            self.defer_consume = 0;
        }
        if let Slot::StackPop = self.slot {
            // The previous End event borrowed the topmost stack entry;
            // commit the deferred pop now that the borrow is over.
            let (off, _) = self.stack.pop().expect("deferred pop has an open element");
            self.stack_buf.truncate(off as usize);
            self.slot = Slot::None;
        }
        loop {
            // Deliver queued events first (attribute conversion etc.).
            if self.pending_pos < self.pending.len() {
                self.slot = Slot::Pending(self.pending_pos);
                self.pending_pos += 1;
                break;
            }
            if self.finished {
                return Ok(false);
            }
            if self.in_tag {
                self.in_tag = false;
                match self.fast_tag()? {
                    Fast::Emitted => break,
                    Fast::Skipped => continue,
                    Fast::Fallback => {
                        if self.parse_tag()? {
                            break;
                        }
                        continue; // comment / PI / doctype: nothing to report
                    }
                }
            }
            match self.fast_text()? {
                Fast::Emitted => break,
                Fast::Skipped => continue,
                Fast::Fallback => {}
            }
            // General path: scan character data until the next '<',
            // accumulating across buffer refills.
            self.raw.clear();
            let n = self.src.read_until(b'<', &mut self.raw).map_err(|e| XmlError {
                kind: XmlErrorKind::Io(e.to_string()),
                offset: self.offset,
            })?;
            self.offset += n as u64;
            self.general_bytes += n as u64;
            let saw_lt = self.raw.last() == Some(&b'<');
            let text_len = if saw_lt { self.raw.len() - 1 } else { self.raw.len() };
            let had_text = self.take_text(text_len)?;
            if saw_lt {
                self.in_tag = true;
            } else {
                // EOF.
                if !self.stack.is_empty() {
                    return self.err(XmlErrorKind::UnexpectedEof);
                }
                if !self.seen_root {
                    return self.err(XmlErrorKind::UnexpectedEof);
                }
                self.finished = true;
            }
            if had_text {
                self.slot = Slot::Text;
                break;
            }
        }
        Ok(true)
    }

    /// Materialize the event described by `self.slot` (set by
    /// [`Reader::advance`]).
    fn current(&mut self) -> Result<ResolvedEvent<'_>, XmlError> {
        Ok(match &self.slot {
            Slot::Text => ResolvedEvent::Text(&self.text_buf),
            Slot::SrcText { len } => {
                let buf = self.src.fill_buf().map_err(|e| XmlError {
                    kind: XmlErrorKind::Io(e.to_string()),
                    offset: self.offset,
                })?;
                let run = &buf[..*len];
                debug_assert!(run.is_ascii(), "SrcText runs are scanner-verified ASCII");
                // SAFETY: `fast_text` emits `SrcText` only when the
                // structural scan's high-bit class over this exact run was
                // empty — the bytes are pure ASCII, hence valid UTF-8, and
                // the window cannot have moved (consume is deferred until
                // the next pull).
                let s = unsafe { std::str::from_utf8_unchecked(run) };
                ResolvedEvent::Text(s)
            }
            Slot::EndName => ResolvedEvent::End(self.cur_id, &self.name_buf),
            Slot::StartName => ResolvedEvent::Start(self.cur_id, &self.name_buf),
            Slot::StackTop => {
                let &(off, id) = self.stack.last().expect("open element for start slot");
                ResolvedEvent::Start(id, &self.stack_buf[off as usize..])
            }
            Slot::StackPop => {
                let &(off, id) = self.stack.last().expect("open element for end slot");
                ResolvedEvent::End(id, &self.stack_buf[off as usize..])
            }
            Slot::Pending(i) => self.pending.get(*i).expect("pending index in range"),
            Slot::None => unreachable!("slot set before break"),
        })
    }

    /// Zero-copy text scan: when the run up to the next `<` sits inside the
    /// buffered window and is entity-free ASCII, the text event borrows the
    /// window directly — no copy into `raw` or `text_buf`, and dropped
    /// whitespace runs are never even UTF-8 validated.
    fn fast_text(&mut self) -> Result<Fast, XmlError> {
        let buf = self
            .src
            .fill_buf()
            .map_err(|e| XmlError { kind: XmlErrorKind::Io(e.to_string()), offset: self.offset })?;
        if buf.is_empty() {
            // EOF, with nothing pending: same checks as the general path.
            if !self.stack.is_empty() || !self.seen_root {
                return self.err(XmlErrorKind::UnexpectedEof);
            }
            self.finished = true;
            return Ok(Fast::Skipped);
        }
        if buf[0] == b'<' {
            self.src.consume(1);
            self.offset += 1;
            self.fast_bytes += 1;
            self.in_tag = true;
            return Ok(Fast::Skipped);
        }
        // Stage 2 against the shared amortized index: find the `<`, then
        // read the run's properties straight from the masks.
        let mut delta = ensure_index(self.scanner, &mut self.sidx, self.offset, buf);
        let found =
            find_structural(self.scanner, &mut self.sidx, self.offset, &mut delta, buf, false);
        let Some(pos) = found else {
            return Ok(Fast::Fallback); // run crosses the window: accumulate
        };
        let (any_hi, any_amp, any_nonws) = self.sidx.text_props(delta, delta + pos);
        if any_hi || any_amp {
            return Ok(Fast::Fallback); // entities / non-ASCII: decode path
        }
        let emit = if !any_nonws {
            // Whitespace-only: reported only on request, inside the root.
            self.opts.keep_whitespace && !self.stack.is_empty()
        } else {
            if self.stack.is_empty() {
                // Report the error at the end of the run without moving
                // `self.offset`: nothing is consumed here, and the index
                // anchors on `offset` matching the window start.
                return Err(XmlError {
                    kind: XmlErrorKind::TextOutsideRoot,
                    offset: self.offset + pos as u64 + 1,
                });
            }
            true
        };
        self.offset += pos as u64 + 1;
        self.fast_bytes += pos as u64 + 1;
        self.in_tag = true;
        if emit {
            self.defer_consume = pos + 1;
            self.slot = Slot::SrcText { len: pos };
            Ok(Fast::Emitted)
        } else {
            self.src.consume(pos + 1);
            Ok(Fast::Skipped)
        }
    }

    /// Zero-copy tag parse: attribute-free ASCII start and end tags whose
    /// `>` sits inside the buffered window. Everything else (comments,
    /// CDATA, DOCTYPE, PIs, attributes, unicode names, mismatch errors)
    /// falls back to the general path, which re-reads the same bytes.
    fn fast_tag(&mut self) -> Result<Fast, XmlError> {
        let buf = self
            .src
            .fill_buf()
            .map_err(|e| XmlError { kind: XmlErrorKind::Io(e.to_string()), offset: self.offset })?;
        let mut delta = ensure_index(self.scanner, &mut self.sidx, self.offset, buf);
        let found =
            find_structural(self.scanner, &mut self.sidx, self.offset, &mut delta, buf, true);
        let Some(pos) = found else {
            return Ok(Fast::Fallback);
        };
        let body = &buf[..pos];
        match body.first() {
            None => Ok(Fast::Fallback), // `<>`: let the general path error
            Some(b'!' | b'?') => Ok(Fast::Fallback),
            Some(b'/') => {
                // End tag: the byte-compare against the open element *is*
                // the validity check; any mismatch (including trailing
                // whitespace or bad names) goes to the general path.
                let name = &body[1..];
                match self.stack.last() {
                    Some(&(off, _)) if self.stack_buf.as_bytes()[off as usize..] == *name => {
                        // Emit straight from the stack arena; the pop is
                        // deferred until the borrow ends (next pull).
                        self.src.consume(pos + 1);
                        self.offset += pos as u64 + 1;
                        self.fast_bytes += pos as u64 + 1;
                        self.slot = Slot::StackPop;
                        Ok(Fast::Emitted)
                    }
                    _ => Ok(Fast::Fallback),
                }
            }
            Some(&first) => {
                // Start tag. Name must be ASCII; after it either nothing, a
                // bare `/`, or an ASCII attribute list (handled by
                // `fast_attr_tag`); anything else falls back.
                if !(first.is_ascii_alphabetic() || first == b'_' || first == b':') {
                    return Ok(Fast::Fallback);
                }
                if self.seen_root && self.stack.is_empty() {
                    return Ok(Fast::Fallback); // TrailingContent error path
                }
                // The index found the `>`, so it covers the whole tag body;
                // the name/attribute runs below parse from the same masks.
                let i = (self.sidx.name_run(delta + 1) - delta).min(body.len());
                let self_closing = match body.len() - i {
                    0 => false,
                    1 if body[i] == b'/' => true,
                    _ => return self.fast_attr_tag(delta, pos, i),
                };
                let name = std::str::from_utf8(&body[..i]).expect("ASCII-checked name");
                let id = resolve_counted(
                    &self.symbols,
                    &mut self.quick_hits,
                    &mut self.quick_misses,
                    name,
                );
                self.seen_root = true;
                if self_closing {
                    // The end event goes to `pending`; the start borrows
                    // `name_buf` since nothing stays on the stack.
                    self.cur_id = id;
                    self.name_buf.clear();
                    self.name_buf.push_str(name);
                }
                open_element(
                    &mut self.pending,
                    &mut self.pending_pos,
                    &mut self.stack,
                    &mut self.stack_buf,
                    id,
                    name,
                    self_closing,
                );
                self.src.consume(pos + 1);
                self.offset += pos as u64 + 1;
                self.fast_bytes += pos as u64 + 1;
                self.slot = if self_closing { Slot::StartName } else { Slot::StackTop };
                Ok(Fast::Emitted)
            }
        }
    }

    /// Fast path for attribute-bearing ASCII start tags (the previously
    /// missing piece of the zero-copy path — XSAX conversion used to take
    /// the allocating fallback for every attributed tag). The attribute
    /// list is validated and sliced directly from the buffered window, then
    /// the conversion is synthesized straight into the pending arena: no
    /// raw-buffer accumulation, no UTF-8 revalidation, no per-attribute
    /// `String`s. Any deviation from the clean shape — non-ASCII bytes,
    /// entities in values, malformed syntax, reject mode — falls back with
    /// nothing consumed or mutated, and the general path re-reads the same
    /// bytes (so error offsets stay identical to the accumulating path).
    ///
    /// `delta` is the window start's position in the structural index,
    /// `pos` the index of the closing `>` in the buffered window, and
    /// `name_len` the length of the already-validated element name.
    fn fast_attr_tag(
        &mut self,
        delta: usize,
        pos: usize,
        name_len: usize,
    ) -> Result<Fast, XmlError> {
        if matches!(self.opts.attributes, AttributeMode::Reject) {
            return Ok(Fast::Fallback); // pure error path; let the slow path report it
        }
        // Split borrows: the window borrows `src` while the pending arena,
        // scratch buffers and element stack are written.
        let Reader {
            src,
            opts,
            symbols,
            sidx,
            stack,
            stack_buf,
            pending,
            pending_pos,
            slot,
            cur_id,
            name_buf,
            synth_buf,
            attr_spans,
            offset,
            seen_root,
            quick_hits,
            quick_misses,
            ..
        } = self;
        let buf = src
            .fill_buf()
            .map_err(|e| XmlError { kind: XmlErrorKind::Io(e.to_string()), offset: *offset })?;
        let body = &buf[..pos];
        // `fast_tag` just found the `>` through this same (unconsumed)
        // window, so the index covers at least `delta + pos + 1` bytes and
        // is queried here at `delta`-shifted positions.
        debug_assert!(sidx.covered() > delta + pos);
        if sidx.any_hi(delta, delta + pos) {
            return Ok(Fast::Fallback);
        }
        // Phase 1: validate the whole attribute list before mutating
        // anything (`Fast::Fallback` must leave no trace).
        attr_spans.clear();
        let mut self_closing = false;
        let mut i = name_len;
        loop {
            // The `>` at `pos` is in no whitespace/name class, so the
            // mask-run queries below never pass `body.len()`.
            i = sidx.skip_ws(delta + i) - delta;
            if i == body.len() {
                break;
            }
            if body[i] == b'/' {
                if i + 1 == body.len() {
                    self_closing = true;
                    break;
                }
                return Ok(Fast::Fallback);
            }
            let ns = i;
            if !(body[i].is_ascii_alphabetic() || body[i] == b'_' || body[i] == b':') {
                return Ok(Fast::Fallback);
            }
            let ne = sidx.name_run(delta + i + 1) - delta;
            i = sidx.skip_ws(delta + ne) - delta;
            if i == body.len() || body[i] != b'=' {
                return Ok(Fast::Fallback);
            }
            i = sidx.skip_ws(delta + i + 1) - delta;
            if i == body.len() || (body[i] != b'"' && body[i] != b'\'') {
                return Ok(Fast::Fallback);
            }
            let quote = body[i];
            let vs = i + 1;
            // `&` needs entity decoding — the general path owns that; a
            // close quote at or past the `>` means the value runs off the
            // tag body, which the general path rejects too.
            i = match sidx.value_end(delta + vs, quote).map(|end| end - delta) {
                Some(end) if end < body.len() && body[end] == quote => end,
                _ => return Ok(Fast::Fallback),
            };
            attr_spans.push((ns as u32, ne as u32, vs as u32, i as u32));
            i += 1;
        }
        // Phase 2: commit. All slices are ASCII-checked above.
        let name = std::str::from_utf8(&body[..name_len]).expect("ASCII-checked name");
        let symbols: &Option<Arc<Symbols>> = symbols;
        let mut resolve = |n: &str| resolve_counted(symbols, quick_hits, quick_misses, n);
        let id = resolve(name);
        *seen_root = true;
        let emitted = if attr_spans.is_empty() || matches!(opts.attributes, AttributeMode::Drop) {
            // `<a  >` / drop mode: a plain start tag.
            open_element(pending, pending_pos, stack, stack_buf, id, name, self_closing);
            *slot = if self_closing {
                *cur_id = id;
                name_buf.clear();
                name_buf.push_str(name);
                Slot::StartName
            } else {
                Slot::StackTop
            };
            true
        } else {
            // XSAX conversion into the pending arena, exactly as the
            // general path does it (which guarantees the batch invariant:
            // the previous batch was fully delivered before a new tag).
            if *pending_pos == pending.len() {
                pending.clear();
                *pending_pos = 0;
            }
            pending.push_start(id, name);
            for &(ns, ne, vs, ve) in attr_spans.iter() {
                let attr = std::str::from_utf8(&body[ns as usize..ne as usize])
                    .expect("ASCII-checked attribute name");
                converted_name_into(name, attr, synth_buf);
                let sub_id = resolve(synth_buf);
                pending.push_start(sub_id, synth_buf);
                if ve > vs {
                    let value = std::str::from_utf8(&body[vs as usize..ve as usize])
                        .expect("ASCII-checked attribute value");
                    pending.push_text(value);
                }
                pending.push_end(sub_id, synth_buf);
            }
            open_element(pending, pending_pos, stack, stack_buf, id, name, self_closing);
            false // caller loop pops from `pending`
        };
        self.src.consume(pos + 1);
        self.offset += pos as u64 + 1;
        self.fast_bytes += pos as u64 + 1;
        Ok(if emitted { Fast::Emitted } else { Fast::Skipped })
    }

    /// Decode and stash the first `len` bytes of `self.raw` as character
    /// data; returns whether a text event should be emitted.
    fn take_text(&mut self, len: usize) -> Result<bool, XmlError> {
        if len == 0 {
            return Ok(false);
        }
        let s = std::str::from_utf8(&self.raw[..len])
            .map_err(|_| XmlError { kind: XmlErrorKind::Utf8, offset: self.offset })?;
        let is_ws = s.chars().all(char::is_whitespace);
        if is_ws && (!self.opts.keep_whitespace || self.stack.is_empty()) {
            return Ok(false);
        }
        if self.stack.is_empty() {
            if is_ws {
                return Ok(false);
            }
            return self.err(XmlErrorKind::TextOutsideRoot);
        }
        self.text_buf.clear();
        crate::escape::unescape_into(s, &mut self.text_buf)
            .map_err(|m| XmlError { kind: XmlErrorKind::Syntax(m), offset: self.offset })?;
        Ok(true)
    }

    /// Parse one `<…>` construct (the leading `<` is already consumed).
    /// Returns true when an event was produced (in `slot` or `pending`).
    fn parse_tag(&mut self) -> Result<bool, XmlError> {
        self.raw.clear();
        let n = self
            .src
            .read_until(b'>', &mut self.raw)
            .map_err(|e| XmlError { kind: XmlErrorKind::Io(e.to_string()), offset: self.offset })?;
        self.offset += n as u64;
        self.general_bytes += n as u64;
        if self.raw.last() != Some(&b'>') {
            return self.err(XmlErrorKind::UnexpectedEof);
        }
        self.raw.pop();

        // Comments, CDATA and DOCTYPE may legitimately contain '>'.
        if self.raw.starts_with(b"!--") {
            while !self.raw.ends_with(b"--") || self.raw.len() < 5 {
                let m = self.src.read_until(b'>', &mut self.raw).map_err(|e| XmlError {
                    kind: XmlErrorKind::Io(e.to_string()),
                    offset: self.offset,
                })?;
                if m == 0 {
                    return self.err(XmlErrorKind::UnexpectedEof);
                }
                self.offset += m as u64;
                self.general_bytes += m as u64;
                if self.raw.last() == Some(&b'>') {
                    self.raw.pop();
                } else {
                    return self.err(XmlErrorKind::UnexpectedEof);
                }
            }
            return Ok(false);
        }
        if self.raw.starts_with(b"![CDATA[") {
            while !self.raw.ends_with(b"]]") {
                // The '>' we consumed was CDATA content, not the terminator.
                self.raw.push(b'>');
                let m = self.src.read_until(b'>', &mut self.raw).map_err(|e| XmlError {
                    kind: XmlErrorKind::Io(e.to_string()),
                    offset: self.offset,
                })?;
                if m == 0 {
                    return self.err(XmlErrorKind::UnexpectedEof);
                }
                self.offset += m as u64;
                self.general_bytes += m as u64;
                if self.raw.last() == Some(&b'>') {
                    self.raw.pop();
                } else {
                    return self.err(XmlErrorKind::UnexpectedEof);
                }
            }
            if self.stack.is_empty() {
                return self.err(XmlErrorKind::TextOutsideRoot);
            }
            let inner = &self.raw[8..self.raw.len() - 2];
            let s = std::str::from_utf8(inner)
                .map_err(|_| XmlError { kind: XmlErrorKind::Utf8, offset: self.offset })?;
            self.text_buf.clear();
            self.text_buf.push_str(s);
            self.slot = Slot::Text;
            return Ok(true);
        }
        if self.raw.starts_with(b"!") {
            // DOCTYPE (possibly with an internal subset containing '>').
            let mut depth = self.raw.iter().filter(|&&b| b == b'[').count() as i64
                - self.raw.iter().filter(|&&b| b == b']').count() as i64;
            while depth > 0 {
                let m = self.src.read_until(b'>', &mut self.raw).map_err(|e| XmlError {
                    kind: XmlErrorKind::Io(e.to_string()),
                    offset: self.offset,
                })?;
                if m == 0 {
                    return self.err(XmlErrorKind::UnexpectedEof);
                }
                self.offset += m as u64;
                self.general_bytes += m as u64;
                let added = &self.raw[self.raw.len() - m..];
                depth += added.iter().filter(|&&b| b == b'[').count() as i64
                    - added.iter().filter(|&&b| b == b']').count() as i64;
                if self.raw.last() == Some(&b'>') {
                    self.raw.pop();
                } else {
                    return self.err(XmlErrorKind::UnexpectedEof);
                }
            }
            return Ok(false);
        }
        if self.raw.starts_with(b"?") {
            // Processing instruction / XML declaration; ignored.
            return Ok(false);
        }

        let body = std::str::from_utf8(&self.raw)
            .map_err(|_| XmlError { kind: XmlErrorKind::Utf8, offset: self.offset })?;
        if let Some(name_part) = body.strip_prefix('/') {
            // End tag. The match against the open element is the validity
            // check (the name was checked when it was opened); only the
            // mismatch path re-examines it.
            let name = name_part.trim();
            match self.stack.last().copied() {
                Some((off, id)) if self.stack_buf[off as usize..] == *name => {
                    self.stack.pop();
                    self.stack_buf.truncate(off as usize);
                    self.cur_id = id;
                    self.name_buf.clear();
                    self.name_buf.push_str(name);
                    self.slot = Slot::EndName;
                    return Ok(true);
                }
                top => {
                    check_name(name).map_err(|m| XmlError {
                        kind: XmlErrorKind::Syntax(m),
                        offset: self.offset,
                    })?;
                    let expected = top.map(|(off, _)| self.stack_buf[off as usize..].to_string());
                    return self
                        .err(XmlErrorKind::MismatchedTag { expected, found: name.to_string() });
                }
            }
        }

        // Start tag.
        if self.seen_root && self.stack.is_empty() {
            return self.err(XmlErrorKind::TrailingContent);
        }
        let (body, self_closing) = match body.strip_suffix('/') {
            Some(b) => (b, true),
            None => (body, false),
        };
        let body = body.trim_end();
        let name_end = body.find(|c: char| c.is_whitespace()).unwrap_or(body.len());
        let name = &body[..name_end];
        check_name(name)
            .map_err(|m| XmlError { kind: XmlErrorKind::Syntax(m), offset: self.offset })?;
        let attr_src = body[name_end..].trim();

        self.seen_root = true;
        if attr_src.is_empty() {
            // Fast path: no attributes. One hash, no allocation — the open
            // element's name bytes go to the flat stack arena.
            let id =
                resolve_counted(&self.symbols, &mut self.quick_hits, &mut self.quick_misses, name);
            self.cur_id = id;
            self.name_buf.clear();
            self.name_buf.push_str(name);
            open_element(
                &mut self.pending,
                &mut self.pending_pos,
                &mut self.stack,
                &mut self.stack_buf,
                id,
                name,
                self_closing,
            );
            self.slot = Slot::StartName;
            return Ok(true);
        }

        let attrs = parse_attributes(attr_src)
            .map_err(|m| XmlError { kind: XmlErrorKind::Syntax(m), offset: self.offset })?;
        match self.opts.attributes {
            AttributeMode::Reject => self.err(XmlErrorKind::AttributeRejected {
                element: name.to_string(),
                attribute: attrs[0].0.clone(),
            }),
            AttributeMode::Drop => {
                let id = resolve_counted(
                    &self.symbols,
                    &mut self.quick_hits,
                    &mut self.quick_misses,
                    name,
                );
                self.cur_id = id;
                self.name_buf.clear();
                self.name_buf.push_str(name);
                open_element(
                    &mut self.pending,
                    &mut self.pending_pos,
                    &mut self.stack,
                    &mut self.stack_buf,
                    id,
                    name,
                    self_closing,
                );
                self.slot = Slot::StartName;
                Ok(true)
            }
            AttributeMode::ConvertToSubelements => {
                // XSAX conversion straight into the pending arena: the
                // element's start, one Start/Text/End triple per attribute
                // and (for self-closing tags) the end. The loop invariant
                // guarantees the previous pending batch was delivered.
                if self.pending_pos == self.pending.len() {
                    self.pending.clear();
                    self.pending_pos = 0;
                }
                let id = resolve_counted(
                    &self.symbols,
                    &mut self.quick_hits,
                    &mut self.quick_misses,
                    name,
                );
                self.pending.push_start(id, name);
                for (attr, value) in &attrs {
                    converted_name_into(name, attr, &mut self.synth_buf);
                    let sub_id = resolve_counted(
                        &self.symbols,
                        &mut self.quick_hits,
                        &mut self.quick_misses,
                        &self.synth_buf,
                    );
                    self.pending.push_start(sub_id, &self.synth_buf);
                    if !value.is_empty() {
                        self.pending.push_text(value);
                    }
                    self.pending.push_end(sub_id, &self.synth_buf);
                }
                // The pending buffer is non-empty (start pushed above), so
                // `open_element` will not reclaim it mid-batch.
                open_element(
                    &mut self.pending,
                    &mut self.pending_pos,
                    &mut self.stack,
                    &mut self.stack_buf,
                    id,
                    name,
                    self_closing,
                );
                // Caller loop pops from `pending`.
                Ok(false)
            }
        }
    }

    /// Drain the whole document into owned events (testing convenience).
    pub fn read_to_end(&mut self) -> Result<Vec<OwnedEvent>, XmlError> {
        let mut out = Vec::new();
        while let Some(ev) = self.next_event()? {
            out.push(ev.to_owned());
        }
        Ok(out)
    }
}

/// The byte source of the incremental (sans-IO) reader: bytes arrive via
/// [`Reader::feed`] and are parsed in place — no worker thread, no blocking
/// reads. `fill_buf` exposes the whole unconsumed window, so the zero-copy
/// fast paths see maximal runs; running out of fed bytes is recorded in
/// `hit_end`, which [`Reader::poll_resolved`] uses to distinguish "no more
/// bytes *yet*" from true end of input and to roll back parse attempts that
/// ran off the end.
#[derive(Debug, Default)]
pub struct FeedSource {
    buf: Vec<u8>,
    pos: usize,
    closed: bool,
    /// A read touched the end of the fed bytes while the source was open.
    hit_end: bool,
    /// Text-scan position hint: `buf[pos..lt_scanned]` is known to contain
    /// no `<`. A text run fed in many tiny chunks is scanned once per
    /// *byte*, not once per *poll* — without the hint every poll re-scans
    /// the run from its start, worst-case O(n²) on pathological
    /// fragmentation. Maintained by [`Reader::poll_resolved`]; may lag
    /// behind `pos` (then it is simply ignored).
    lt_scanned: usize,
    /// Window generation counter, bumped on every [`FeedSource::feed`].
    /// Tape window spans record the epoch they were taken against, so
    /// materializing a stale span (after the compaction in `feed` shifted
    /// the buffer) is caught in debug builds.
    epoch: u64,
}

impl FeedSource {
    fn feed(&mut self, bytes: &[u8]) {
        // Reclaim the committed prefix before growing: a long-lived session
        // retains only the unparsed tail, not the whole document so far.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.lt_scanned = self.lt_scanned.saturating_sub(self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
        self.epoch += 1;
    }
}

impl io::Read for FeedSource {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        let avail = self.fill_buf()?;
        let n = avail.len().min(out.len());
        out[..n].copy_from_slice(&avail[..n]);
        self.consume(n);
        Ok(n)
    }
}

impl BufRead for FeedSource {
    fn fill_buf(&mut self) -> io::Result<&[u8]> {
        if self.pos >= self.buf.len() && !self.closed {
            self.hit_end = true;
        }
        Ok(&self.buf[self.pos..])
    }

    fn consume(&mut self, amt: usize) {
        self.pos = (self.pos + amt).min(self.buf.len());
    }
}

/// One step of the incremental parse ([`Reader::poll_resolved`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Polled<'a> {
    /// The next event of the stream.
    Event(ResolvedEvent<'a>),
    /// The fed bytes end mid-construct: [`Reader::feed`] more (or
    /// [`Reader::close`]) and poll again.
    NeedMoreData,
    /// The source is closed and the document fully parsed.
    End,
}

/// Outcome of one [`Reader::fill_tape`] batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapeFill {
    /// The batch reached capacity: drain the tape and fill again.
    Full,
    /// The fed bytes ended mid-construct: drain the tape, then
    /// [`Reader::feed`] more (or [`Reader::close`]) and fill again.
    NeedMoreData,
    /// The source is closed and the document fully parsed.
    End,
}

/// Outcome of one [`Reader::skip_events`] structural fast-forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipPoll {
    /// The subtree is fully scanned past: `events` interior events were
    /// skipped, and the end tag closing it is next — still unconsumed (the
    /// next [`Reader::fill_tape`] batch opens with it), unless the general
    /// machinery had already committed it, in which case it is the single
    /// event on the tape passed in (drain it before the next fill).
    Closed { events: u64 },
    /// The fed bytes ran out `depth` levels inside the subtree after
    /// skipping `events` events: [`Reader::feed`] more (or
    /// [`Reader::close`]) and re-enter.
    More { events: u64, depth: u32 },
}

/// Rollback point for the incremental mode: everything an event-parse
/// attempt may mutate *before* the construct is known to fit in the fed
/// bytes. State the parser only touches once a construct is complete
/// (pending-arena reclaim, element-stack pops) needs no undo — completion
/// is immediately followed by event delivery, never by another source read.
#[derive(Clone, Copy)]
struct Checkpoint {
    src_pos: usize,
    offset: u64,
    seen_root: bool,
    in_tag: bool,
    finished: bool,
    stack_len: usize,
    stack_buf_len: usize,
    pending_len: usize,
    pending_pos: usize,
}

impl Reader<FeedSource> {
    /// An incremental reader: push bytes with [`Reader::feed`], pull events
    /// with [`Reader::poll_resolved`]. See the [module docs](self).
    pub fn incremental(opts: ReaderOptions) -> Reader<FeedSource> {
        Reader::new(FeedSource::default(), opts)
    }

    /// [`Reader::incremental`] resolving names against a shared symbol
    /// table, like [`Reader::with_symbols`].
    pub fn incremental_with_symbols(
        opts: ReaderOptions,
        symbols: Arc<Symbols>,
    ) -> Reader<FeedSource> {
        Reader::with_symbols(FeedSource::default(), opts, symbols)
    }

    /// Append the next chunk of the document. Chunks may split the XML at
    /// any byte boundary, including inside tags and multi-byte characters.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.src.feed(bytes);
    }

    /// Signal end of input: subsequent polls parse to completion instead of
    /// asking for more data.
    pub fn close(&mut self) {
        self.src.closed = true;
    }

    /// Has [`Reader::close`] been called?
    pub fn is_closed(&self) -> bool {
        self.src.closed
    }

    /// Bytes fed but not yet consumed by the parser (at a quiescent point:
    /// the tail of an incomplete construct).
    pub fn unconsumed_bytes(&self) -> usize {
        self.src.buf.len() - self.src.pos
    }

    /// Parse the next event from the fed bytes. Returns
    /// [`Polled::NeedMoreData`] — with the reader state fully rolled back —
    /// when the bytes end mid-construct and the source is not closed, so
    /// the event stream (and every error, with its offset) is byte-for-byte
    /// identical to a blocking [`Reader::next_resolved`] run over the
    /// concatenation of the chunks.
    pub fn poll_resolved(&mut self) -> Result<Polled<'_>, XmlError> {
        if self.defer_consume > 0 {
            // Commit the previous event's deferred window before taking the
            // checkpoint: its bytes are delivered and must never re-parse.
            self.src.consume(self.defer_consume);
            self.defer_consume = 0;
        }
        if let Slot::StackPop = self.slot {
            // Likewise for a delivered End event's deferred pop: rollback
            // can only truncate, so the pop must precede the checkpoint.
            let (off, _) = self.stack.pop().expect("deferred pop has an open element");
            self.stack_buf.truncate(off as usize);
            self.slot = Slot::None;
        }
        // Text-scan fast exit: at a quiescent point outside a tag, no event
        // can complete before the next `<` arrives (a text run only ends at
        // `<` or at close). Scan just the bytes the hint has not covered —
        // the parse attempt below would otherwise re-scan (and the general
        // path re-copy) the whole pending run on every poll, O(n²) when a
        // long run is fed in tiny chunks.
        if !self.in_tag
            && !self.finished
            && !self.src.closed
            && self.pending_pos >= self.pending.len()
        {
            let from = self.src.pos.max(self.src.lt_scanned);
            match self.scanner.find_byte(b'<', &self.src.buf[from..]) {
                Some(i) => self.src.lt_scanned = from + i,
                None => {
                    self.src.lt_scanned = self.src.buf.len();
                    return Ok(Polled::NeedMoreData);
                }
            }
        }
        let cp = self.checkpoint();
        self.src.hit_end = false;
        match self.advance() {
            Ok(true) => {
                debug_assert!(
                    !self.src.hit_end || self.src.closed,
                    "an emitted event must not depend on bytes past the fed window"
                );
                Ok(Polled::Event(self.current()?))
            }
            Ok(false) if self.src.hit_end && !self.src.closed => {
                self.restore(cp);
                Ok(Polled::NeedMoreData)
            }
            Ok(false) => Ok(Polled::End),
            Err(_) if self.src.hit_end && !self.src.closed => {
                self.restore(cp);
                Ok(Polled::NeedMoreData)
            }
            Err(e) => Err(e),
        }
    }

    /// Parse as many events as fit into one tape batch. See
    /// [`crate::tape`] for the lifecycle; this is the batched sibling of
    /// [`Reader::poll_resolved`] — same state machine, same rollback
    /// discipline, same event stream — minus the per-event slot handshake:
    /// each event is recorded onto the tape as it is parsed, with deferred
    /// window/stack borrows committed immediately.
    ///
    /// On [`TapeFill::NeedMoreData`] only the trailing *partial* construct
    /// is rolled back; everything recorded stands and must be drained
    /// (via [`Reader::tape_event`]) before the next [`Reader::feed`],
    /// which compacts the window the tape's text spans point into.
    pub fn fill_tape(&mut self, tape: &mut EventTape) -> Result<TapeFill, XmlError> {
        debug_assert!(tape.is_empty(), "previous batch must be drained before a refill");
        tape.clear();
        tape.epoch = self.src.epoch;
        // Commit borrows a preceding per-event pull may have left open
        // (the two modes may be mixed freely on one reader).
        if self.defer_consume > 0 {
            self.src.consume(self.defer_consume);
            self.defer_consume = 0;
        }
        if let Slot::StackPop = self.slot {
            let (off, _) = self.stack.pop().expect("deferred pop has an open element");
            self.stack_buf.truncate(off as usize);
            self.slot = Slot::None;
        }
        loop {
            if tape.is_full() {
                return Ok(TapeFill::Full);
            }
            // Inside the root with no queued events, a lean burst records
            // straight off the window; the document edges, pending drains
            // and everything non-lean take the per-event machinery below.
            if !self.finished && self.pending_pos >= self.pending.len() && !self.stack.is_empty() {
                if let Some(fill) = self.fill_burst(tape)? {
                    return Ok(fill);
                }
                continue;
            }
            // Text-scan fast exit, exactly as in `poll_resolved`: outside a
            // tag no event can complete before the next `<` arrives.
            if !self.in_tag
                && !self.finished
                && !self.src.closed
                && self.pending_pos >= self.pending.len()
            {
                let from = self.src.pos.max(self.src.lt_scanned);
                match self.scanner.find_byte(b'<', &self.src.buf[from..]) {
                    Some(i) => self.src.lt_scanned = from + i,
                    None => {
                        self.src.lt_scanned = self.src.buf.len();
                        return Ok(TapeFill::NeedMoreData);
                    }
                }
            }
            let cp = self.checkpoint();
            self.src.hit_end = false;
            match self.advance() {
                Ok(true) => {
                    debug_assert!(
                        !self.src.hit_end || self.src.closed,
                        "an emitted event must not depend on bytes past the fed window"
                    );
                    self.record(tape);
                }
                Ok(false) if self.src.hit_end && !self.src.closed => {
                    self.restore(cp);
                    return Ok(TapeFill::NeedMoreData);
                }
                Ok(false) => return Ok(TapeFill::End),
                Err(_) if self.src.hit_end && !self.src.closed => {
                    self.restore(cp);
                    return Ok(TapeFill::NeedMoreData);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One lean recording burst inside [`Reader::fill_tape`]: walk the fed
    /// window *without consuming*, recording entity-free clean text runs
    /// and attribute-free ASCII tags straight onto the tape as window
    /// spans — no advance/slot handshake, no per-event checkpoint, no
    /// arena copies. Position, stream offset and byte counters are
    /// committed in bulk at burst exits; `(b_lpos, b_in_tag)` track the
    /// last event boundary so a window-exhausted exit rolls back to
    /// exactly the state a per-event fill would report `NeedMoreData`
    /// from (see [`Reader::skip_events`], which uses the same discipline
    /// without the recording).
    ///
    /// Lean end tags are gated to `stack.len() >= 2` so closing the root
    /// (and the `finished` transition) always rides the general path.
    /// Returns `Some` when the fill is over, `None` after one general
    /// fallback step to let the caller re-enter.
    fn fill_burst(&mut self, tape: &mut EventTape) -> Result<Option<TapeFill>, XmlError> {
        /// How the burst ended.
        enum BurstExit {
            /// A construct the burst does not handle: one general step.
            Fallback,
            /// The tape reached its event cap at a boundary.
            Full,
            /// No `<` before the end of a still-open window.
            NoLt,
        }
        let start = self.src.pos;
        let off0 = self.offset;
        let closed = self.src.closed;
        let keep_ws = self.opts.keep_whitespace;
        let buf = &self.src.buf[start..];
        let mut shift = ensure_index(self.scanner, &mut self.sidx, off0, buf) as isize;
        let mut lpos = 0usize;
        let mut in_tag = self.in_tag;
        let mut b_lpos = 0usize;
        let mut b_in_tag = in_tag;
        let exit = 'burst: loop {
            if tape.items.len() >= TAPE_BATCH_EVENTS {
                break 'burst BurstExit::Full;
            }
            if !in_tag {
                // ---- text step: mirrors `fast_text` ----
                if lpos >= buf.len() {
                    break 'burst if closed { BurstExit::Fallback } else { BurstExit::NoLt };
                }
                if buf[lpos] == b'<' {
                    lpos += 1;
                    in_tag = true;
                    continue 'burst;
                }
                let found =
                    skip_find(self.scanner, &mut self.sidx, off0, &mut shift, buf, lpos, false);
                let Some(p) = found else {
                    break 'burst if closed { BurstExit::Fallback } else { BurstExit::NoLt };
                };
                let (any_hi, any_amp, any_nonws) = self
                    .sidx
                    .text_props(lpos.wrapping_add_signed(shift), p.wrapping_add_signed(shift));
                if any_hi || any_amp {
                    break 'burst BurstExit::Fallback; // entities / non-ASCII: decode path
                }
                if any_nonws || keep_ws {
                    tape.push_window(TapeKind::Text, NameId::UNKNOWN, start + lpos, p - lpos);
                    lpos = p + 1;
                    in_tag = true;
                    b_lpos = lpos;
                    b_in_tag = true;
                } else {
                    lpos = p + 1;
                    in_tag = true;
                }
                continue 'burst;
            }
            // ---- tag step: mirrors `fast_tag` ----
            let found = skip_find(self.scanner, &mut self.sidx, off0, &mut shift, buf, lpos, true);
            let Some(p) = found else {
                break 'burst BurstExit::Fallback; // crossing tag or EOF
            };
            let body = &buf[lpos..p];
            let Some(&first) = body.first() else {
                break 'burst BurstExit::Fallback; // `<>`: the general path errors
            };
            if first == b'/' {
                if self.stack.len() < 2 {
                    break 'burst BurstExit::Fallback; // root close: general path
                }
                match self.stack.last() {
                    Some(&(off, _)) if self.stack_buf.as_bytes()[off as usize..] == body[1..] => {}
                    // Trailing whitespace or a genuine mismatch: the
                    // general path re-examines it.
                    _ => break 'burst BurstExit::Fallback,
                }
                let (off, id) = self.stack.pop().expect("open element inside the root");
                self.stack_buf.truncate(off as usize);
                tape.push_window(TapeKind::End, id, start + lpos + 1, body.len() - 1);
                lpos = p + 1;
                in_tag = false;
                b_lpos = lpos;
                b_in_tag = false;
                continue 'burst;
            }
            if !(first.is_ascii_alphabetic() || first == b'_' || first == b':') {
                break 'burst BurstExit::Fallback; // comments, PIs, DOCTYPE
            }
            let bpos = lpos.wrapping_add_signed(shift);
            let i = (self.sidx.name_run(bpos + 1) - bpos).min(body.len());
            let self_closing = match body.len() - i {
                0 => false,
                1 if body[i] == b'/' => true,
                _ => break 'burst BurstExit::Fallback, // attribute list: conversion path
            };
            if self_closing && tape.items.len() + 2 > TAPE_BATCH_EVENTS {
                // The pair would overshoot the batch cap: the general path
                // records the start and queues the end for the next batch,
                // exactly as per-event delivery splits it.
                break 'burst BurstExit::Fallback;
            }
            // SAFETY: `first` was checked ASCII above and `body[1..i]` lies
            // inside the scanner's name-class run, an ASCII subset.
            let name = unsafe { std::str::from_utf8_unchecked(&body[..i]) };
            let id =
                resolve_counted(&self.symbols, &mut self.quick_hits, &mut self.quick_misses, name);
            if self_closing {
                tape.push_window(TapeKind::Start, id, start + lpos, i);
                tape.push_window(TapeKind::End, id, start + lpos, i);
            } else {
                let off = self.stack_buf.len() as u32;
                self.stack_buf.push_str(name);
                self.stack.push((off, id));
                tape.push_window(TapeKind::Start, id, start + lpos, i);
            }
            lpos = p + 1;
            in_tag = false;
            b_lpos = lpos;
            b_in_tag = false;
        };
        match exit {
            BurstExit::NoLt => {
                // The text step always sits on an event boundary, so the
                // walk position *is* the rollback point.
                debug_assert_eq!(b_lpos, lpos, "text step is a boundary");
                self.src.pos = start + b_lpos;
                self.offset = off0 + b_lpos as u64;
                self.fast_bytes += b_lpos as u64;
                self.in_tag = b_in_tag;
                // The poll fast-exit's scan hint: no `<` between the
                // committed position and the window end.
                self.src.lt_scanned = self.src.buf.len();
                Ok(Some(TapeFill::NeedMoreData))
            }
            BurstExit::Full => {
                debug_assert_eq!(b_lpos, lpos, "the cap is checked at boundaries");
                self.src.pos = start + b_lpos;
                self.offset = off0 + b_lpos as u64;
                self.fast_bytes += b_lpos as u64;
                self.in_tag = b_in_tag;
                Ok(Some(TapeFill::Full))
            }
            BurstExit::Fallback => {
                // One full per-event step from the committed position.
                // Progress past the last boundary (a whitespace run and its
                // `<`) is committed as fast-path bytes and the rollback
                // point stays *behind* it — byte-for-byte what per-event
                // delivery does when `fast_text` skips the run and the
                // following construct then fails to fit the window
                // (counters are never rolled back).
                let cp = Checkpoint {
                    src_pos: start + b_lpos,
                    offset: off0 + b_lpos as u64,
                    seen_root: self.seen_root,
                    in_tag: b_in_tag,
                    finished: false,
                    stack_len: self.stack.len(),
                    stack_buf_len: self.stack_buf.len(),
                    pending_len: self.pending.len(),
                    pending_pos: self.pending_pos,
                };
                self.src.pos = start + lpos;
                self.offset = off0 + lpos as u64;
                self.fast_bytes += lpos as u64;
                self.in_tag = in_tag;
                self.src.hit_end = false;
                match self.advance() {
                    Ok(true) => {
                        debug_assert!(
                            !self.src.hit_end || self.src.closed,
                            "an emitted event must not depend on bytes past the fed window"
                        );
                        self.record(tape);
                        Ok(None)
                    }
                    Ok(false) if self.src.hit_end && !self.src.closed => {
                        self.restore(cp);
                        Ok(Some(TapeFill::NeedMoreData))
                    }
                    Ok(false) => Ok(Some(TapeFill::End)),
                    Err(_) if self.src.hit_end && !self.src.closed => {
                        self.restore(cp);
                        Ok(Some(TapeFill::NeedMoreData))
                    }
                    Err(e) => Err(e),
                }
            }
        }
    }

    /// Record the event described by `self.slot` onto the tape, committing
    /// any deferred borrow on the spot (the tape holds its own copy — or,
    /// for zero-copy text, a window span that outlives the consume, since
    /// the buffer is only compacted by the next `feed`).
    fn record(&mut self, tape: &mut EventTape) {
        match self.slot {
            Slot::Text => tape.push_arena(TapeKind::Text, NameId::UNKNOWN, &self.text_buf),
            Slot::SrcText { len } => {
                debug_assert!(self.src.buf[self.src.pos..self.src.pos + len].is_ascii());
                tape.push_window(TapeKind::Text, NameId::UNKNOWN, self.src.pos, len);
                // Release the window hold immediately: the recorded span
                // stays addressable until the next feed.
                self.src.consume(self.defer_consume);
                self.defer_consume = 0;
            }
            Slot::EndName => tape.push_arena(TapeKind::End, self.cur_id, &self.name_buf),
            Slot::StartName => tape.push_arena(TapeKind::Start, self.cur_id, &self.name_buf),
            Slot::StackTop => {
                let &(off, id) = self.stack.last().expect("open element for start slot");
                tape.push_arena(TapeKind::Start, id, &self.stack_buf[off as usize..]);
            }
            Slot::StackPop => {
                // Record, then commit the pop on the spot (per-event mode
                // defers it across the borrow; the tape copy needs no
                // borrow).
                let (off, id) = self.stack.pop().expect("open element for end slot");
                tape.push_arena(TapeKind::End, id, &self.stack_buf[off as usize..]);
                self.stack_buf.truncate(off as usize);
            }
            Slot::Pending(i) => match self.pending.get(i).expect("pending index in range") {
                ResolvedEvent::Start(id, name) => tape.push_arena(TapeKind::Start, id, name),
                ResolvedEvent::End(id, name) => tape.push_arena(TapeKind::End, id, name),
                ResolvedEvent::Text(t) => tape.push_arena(TapeKind::Text, NameId::UNKNOWN, t),
            },
            Slot::None => unreachable!("slot set before record"),
        }
        self.slot = Slot::None;
    }

    /// Materialize one recorded tape event. Window spans borrow the
    /// reader's unconsumed buffer (hence `&self` on the reader); arena
    /// spans borrow the tape.
    #[inline]
    pub fn tape_event<'a>(&'a self, tape: &'a EventTape, i: usize) -> ResolvedEvent<'a> {
        let it = tape.item(i);
        let payload: &str = if it.window {
            debug_assert_eq!(tape.epoch, self.src.epoch, "tape drained after a feed compaction");
            let run = &self.src.buf[it.off as usize..(it.off + it.len) as usize];
            debug_assert!(run.is_ascii(), "window spans are scanner-verified ASCII");
            // SAFETY: window spans are recorded only for scanner-verified
            // ASCII bytes — clean `SrcText` runs and the name bytes of lean
            // burst tags (first byte ASCII-checked, rest a `name_run`); the
            // buffer is not compacted between record and drain
            // (epoch-checked above).
            unsafe { std::str::from_utf8_unchecked(run) }
        } else {
            tape.arena_str(it.off, it.len)
        };
        match it.kind {
            TapeKind::Start => ResolvedEvent::Start(it.id, payload),
            TapeKind::End => ResolvedEvent::End(it.id, payload),
            TapeKind::Text => ResolvedEvent::Text(payload),
        }
    }

    /// Structurally fast-forward over a subtree the consumer declared dead
    /// (a pump reporting `SkipSubtree`): parse past events until the end
    /// tag closing the subtree — `depth` unclosed levels deep at entry —
    /// is next, *counting* them but never recording, materializing or
    /// copying them. The common shape — entity-free text runs and
    /// attribute-free ASCII tags — costs one structural-index probe and a
    /// counter update per event; everything else (attributes, entities,
    /// comments, CDATA, window-crossing constructs) takes exactly one step
    /// of the identical general machinery per event.
    ///
    /// Transparency: byte accounting, name interning, stack discipline and
    /// error surfacing mirror [`Reader::fill_tape`] pulling the same
    /// events, and a window-exhausted return rolls back to the same event
    /// boundary a per-event poll would report `NeedMoreData` from — so a
    /// snapshot taken at any quiescent point is byte-identical to a run
    /// that delivered every event.
    ///
    /// `tape` must be drained; it is written only when the general
    /// machinery has already committed the closing end tag, which then
    /// rides back as the tape's single event (see [`SkipPoll::Closed`]).
    pub fn skip_events(&mut self, depth: u32, tape: &mut EventTape) -> Result<SkipPoll, XmlError> {
        debug_assert!(tape.is_empty(), "previous batch must be drained before a skip");
        debug_assert!(depth >= 1, "a skip is only active inside its subtree");
        debug_assert!(!self.finished, "a document cannot finish inside a subtree");
        tape.clear();
        tape.epoch = self.src.epoch;
        // Commit borrows a preceding per-event pull may have left open.
        if self.defer_consume > 0 {
            self.src.consume(self.defer_consume);
            self.defer_consume = 0;
        }
        if let Slot::StackPop = self.slot {
            let (off, _) = self.stack.pop().expect("deferred pop has an open element");
            self.stack_buf.truncate(off as usize);
            self.slot = Slot::None;
        }
        let mut depth = depth;
        let mut events = 0u64;
        /// How a lean burst over the buffered window ended.
        enum BurstExit {
            /// A construct the burst does not handle (attributes, entities,
            /// comments, CDATA, window-crossing constructs, EOF errors):
            /// one step of the general machinery takes over.
            Fallback,
            /// `</` at depth 1: the subtree is closed, the end tag itself
            /// left for the next ordinary batch to deliver.
            Closed,
            /// No `<` between the walk position and the end of a still-open
            /// window: nothing can complete before more bytes arrive.
            NoLt,
        }
        loop {
            // Queued conversion events (attribute children, self-closing
            // ends) are counted straight off the pending buffer — no slot
            // handshake, no materialization.
            if self.pending_pos < self.pending.len() {
                while self.pending_pos < self.pending.len() {
                    match self.pending.get(self.pending_pos).expect("pending index in range") {
                        ResolvedEvent::Start(..) => depth += 1,
                        ResolvedEvent::End(..) if depth > 1 => depth -= 1,
                        ResolvedEvent::End(..) => {
                            // A self-closing subtree root: its queued End
                            // closes the skip. Hand it back on the tape.
                            self.slot = Slot::Pending(self.pending_pos);
                            self.pending_pos += 1;
                            self.record(tape);
                            return Ok(SkipPoll::Closed { events });
                        }
                        ResolvedEvent::Text(_) => {}
                    }
                    self.pending_pos += 1;
                    events += 1;
                }
                continue;
            }
            // ---- lean burst: walk the fed window without consuming ----
            //
            // The hot loop touches no reader state it might have to undo:
            // `lpos` cursors through a window snapshot, and position /
            // offset / byte counters are committed in bulk only when the
            // burst exits. `(b_lpos, b_in_tag)` track the last *event*
            // boundary — non-event progress (dropped whitespace runs, the
            // consumed `<` opening a tag) advances `lpos` past it, so a
            // window-exhausted exit rolls back to exactly the state a
            // per-event poll would report `NeedMoreData` from. Stack pushes
            // and pops happen only *at* boundaries and need no undo.
            let start = self.src.pos;
            let off0 = self.offset;
            let closed = self.src.closed;
            let keep_ws = self.opts.keep_whitespace;
            let buf = &self.src.buf[start..];
            let mut shift = ensure_index(self.scanner, &mut self.sidx, off0, buf) as isize;
            let mut lpos = 0usize;
            let mut in_tag = self.in_tag;
            let mut b_lpos = 0usize;
            let mut b_in_tag = in_tag;
            let exit = 'burst: loop {
                if !in_tag {
                    // ---- text step: mirrors `fast_text` ----
                    if lpos >= buf.len() {
                        // Out of bytes at a boundary: EOF error (general
                        // path) or feed more.
                        break 'burst if closed { BurstExit::Fallback } else { BurstExit::NoLt };
                    }
                    if buf[lpos] == b'<' {
                        lpos += 1;
                        in_tag = true;
                        continue 'burst;
                    }
                    let found =
                        skip_find(self.scanner, &mut self.sidx, off0, &mut shift, buf, lpos, false);
                    let Some(p) = found else {
                        // Text runs to the window end: EOF errors on the
                        // general path; otherwise no event can complete
                        // before more bytes arrive.
                        break 'burst if closed { BurstExit::Fallback } else { BurstExit::NoLt };
                    };
                    let (any_hi, any_amp, any_nonws) = self
                        .sidx
                        .text_props(lpos.wrapping_add_signed(shift), p.wrapping_add_signed(shift));
                    if any_hi || any_amp {
                        break 'burst BurstExit::Fallback; // entities / non-ASCII: decode path
                    }
                    debug_assert!(!self.stack.is_empty(), "skip runs inside the root");
                    lpos = p + 1;
                    in_tag = true;
                    if any_nonws || keep_ws {
                        events += 1;
                        b_lpos = lpos;
                        b_in_tag = true;
                    }
                    continue 'burst;
                }
                // ---- tag step: mirrors `fast_tag`, minus materialization ----
                let found =
                    skip_find(self.scanner, &mut self.sidx, off0, &mut shift, buf, lpos, true);
                let Some(p) = found else {
                    break 'burst BurstExit::Fallback; // crossing tag or EOF
                };
                let body = &buf[lpos..p];
                let Some(&first) = body.first() else {
                    break 'burst BurstExit::Fallback; // `<>`: the general path errors
                };
                if first == b'/' {
                    if depth == 1 {
                        break 'burst BurstExit::Closed;
                    }
                    match self.stack.last() {
                        Some(&(off, _))
                            if self.stack_buf.as_bytes()[off as usize..] == body[1..] => {}
                        // Trailing whitespace or a genuine mismatch: the
                        // general path re-examines it.
                        _ => break 'burst BurstExit::Fallback,
                    }
                    let (off, _) = self.stack.pop().expect("open element inside the subtree");
                    self.stack_buf.truncate(off as usize);
                    depth -= 1;
                    events += 1;
                    lpos = p + 1;
                    in_tag = false;
                    b_lpos = lpos;
                    b_in_tag = false;
                    continue 'burst;
                }
                if !(first.is_ascii_alphabetic() || first == b'_' || first == b':') {
                    break 'burst BurstExit::Fallback; // comments, PIs, DOCTYPE
                }
                let bpos = lpos.wrapping_add_signed(shift);
                let i = (self.sidx.name_run(bpos + 1) - bpos).min(body.len());
                let self_closing = match body.len() - i {
                    0 => false,
                    1 if body[i] == b'/' => true,
                    _ => break 'burst BurstExit::Fallback, // attribute list: conversion path
                };
                // SAFETY: `first` was checked ASCII above and `body[1..i]`
                // lies inside the scanner's name-class run, an ASCII subset.
                let name = unsafe { std::str::from_utf8_unchecked(&body[..i]) };
                let id = resolve_counted(
                    &self.symbols,
                    &mut self.quick_hits,
                    &mut self.quick_misses,
                    name,
                );
                if self_closing {
                    // Start + queued End cancel out: two events, no stack
                    // or pending traffic (the queue's contents are never
                    // observable at a quiescent point).
                    events += 2;
                } else {
                    let off = self.stack_buf.len() as u32;
                    self.stack_buf.push_str(name);
                    self.stack.push((off, id));
                    depth += 1;
                    events += 1;
                }
                lpos = p + 1;
                in_tag = false;
                b_lpos = lpos;
                b_in_tag = false;
            };
            match exit {
                BurstExit::NoLt => {
                    // The text step always sits on an event boundary
                    // (non-event progress ends inside a tag), so the walk
                    // position *is* the rollback point.
                    debug_assert_eq!(b_lpos, lpos, "text step is a boundary");
                    self.src.pos = start + b_lpos;
                    self.offset = off0 + b_lpos as u64;
                    self.fast_bytes += b_lpos as u64;
                    self.in_tag = b_in_tag;
                    // The poll fast-exit's scan hint: no `<` between the
                    // committed position and the window end.
                    self.src.lt_scanned = self.src.buf.len();
                    return Ok(SkipPoll::More { events, depth });
                }
                BurstExit::Closed => {
                    // Commit through the consumed `<`; the complete closing
                    // end tag (`>` was found in-window) is delivered by the
                    // next ordinary batch — or, on a tag mismatch, surfaces
                    // its error there.
                    self.src.pos = start + lpos;
                    self.offset = off0 + lpos as u64;
                    self.fast_bytes += lpos as u64;
                    self.in_tag = true;
                    return Ok(SkipPoll::Closed { events });
                }
                BurstExit::Fallback => {
                    // One full per-event step from the committed position.
                    // Progress past the last boundary (a whitespace run and
                    // its `<`) is committed as fast-path bytes and the
                    // rollback point stays *behind* it — byte-for-byte what
                    // per-event delivery does when `fast_text` skips the
                    // run and the following construct then fails to fit the
                    // window (counters are never rolled back).
                    let cp = Checkpoint {
                        src_pos: start + b_lpos,
                        offset: off0 + b_lpos as u64,
                        seen_root: self.seen_root,
                        in_tag: b_in_tag,
                        finished: false,
                        stack_len: self.stack.len(),
                        stack_buf_len: self.stack_buf.len(),
                        pending_len: self.pending.len(),
                        pending_pos: self.pending_pos,
                    };
                    self.src.pos = start + lpos;
                    self.offset = off0 + lpos as u64;
                    self.fast_bytes += lpos as u64;
                    self.in_tag = in_tag;
                    if let Some(poll) =
                        self.skip_fallback_step(tape, &mut depth, &mut events, cp)?
                    {
                        return Ok(poll);
                    }
                }
            }
        }
    }

    /// One general-machinery step inside [`Reader::skip_events`]: run
    /// [`Reader::advance`] exactly as a tape fill would — `cp` is the last
    /// event boundary, the rollback point a window-exhausted attempt
    /// restores — then interpret the completed slot as depth/count
    /// bookkeeping instead of recording it. An End event at depth 1 *is* the tag closing the
    /// skipped subtree — its stack pop may already be committed, so it is
    /// recorded onto `tape` for the caller to deliver rather than rolled
    /// back. Returns `Some` when the skip is over (closed, or out of fed
    /// bytes), `None` to continue scanning.
    fn skip_fallback_step(
        &mut self,
        tape: &mut EventTape,
        depth: &mut u32,
        events: &mut u64,
        cp: Checkpoint,
    ) -> Result<Option<SkipPoll>, XmlError> {
        self.src.hit_end = false;
        match self.advance() {
            Ok(true) => {
                debug_assert!(
                    !self.src.hit_end || self.src.closed,
                    "an emitted event must not depend on bytes past the fed window"
                );
                let closing = match self.slot {
                    Slot::Text => false,
                    Slot::SrcText { .. } => {
                        // Commit the window borrow on the spot, as a
                        // recording fill would.
                        self.src.consume(self.defer_consume);
                        self.defer_consume = 0;
                        false
                    }
                    Slot::StackTop => {
                        *depth += 1;
                        false
                    }
                    Slot::StartName => {
                        // Self-closing start: its End is queued in pending
                        // and brings the depth back down when counted.
                        *depth += 1;
                        false
                    }
                    Slot::EndName => {
                        // General-path end tag: parse_tag already popped.
                        if *depth == 1 {
                            true
                        } else {
                            *depth -= 1;
                            false
                        }
                    }
                    Slot::StackPop => {
                        if *depth == 1 {
                            true
                        } else {
                            // Commit the deferred pop, as a recording fill
                            // would.
                            let (off, _) = self.stack.pop().expect("open element for end slot");
                            self.stack_buf.truncate(off as usize);
                            *depth -= 1;
                            false
                        }
                    }
                    Slot::Pending(i) => {
                        match self.pending.get(i).expect("pending index in range") {
                            ResolvedEvent::Start(..) => {
                                *depth += 1;
                                false
                            }
                            ResolvedEvent::End(..) => {
                                if *depth == 1 {
                                    true
                                } else {
                                    *depth -= 1;
                                    false
                                }
                            }
                            ResolvedEvent::Text(_) => false,
                        }
                    }
                    Slot::None => unreachable!("slot set before interpret"),
                };
                if closing {
                    // The event closing the subtree is already parsed (and
                    // any stack pop committed): hand it back on the tape
                    // for normal delivery instead of rolling back.
                    self.record(tape);
                    return Ok(Some(SkipPoll::Closed { events: *events }));
                }
                self.slot = Slot::None;
                *events += 1;
                Ok(None)
            }
            Ok(false) if self.src.hit_end && !self.src.closed => {
                self.restore(cp);
                Ok(Some(SkipPoll::More { events: *events, depth: *depth }))
            }
            Ok(false) => unreachable!("a document cannot end inside a skipped subtree"),
            Err(_) if self.src.hit_end && !self.src.closed => {
                self.restore(cp);
                Ok(Some(SkipPoll::More { events: *events, depth: *depth }))
            }
            Err(e) => Err(e),
        }
    }

    fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            src_pos: self.src.pos,
            offset: self.offset,
            seen_root: self.seen_root,
            in_tag: self.in_tag,
            finished: self.finished,
            stack_len: self.stack.len(),
            stack_buf_len: self.stack_buf.len(),
            pending_len: self.pending.len(),
            pending_pos: self.pending_pos,
        }
    }

    fn restore(&mut self, cp: Checkpoint) {
        debug_assert!(
            self.stack.len() >= cp.stack_len && self.pending.len() >= cp.pending_len,
            "rollback cannot restore popped state (see Checkpoint docs)"
        );
        self.src.pos = cp.src_pos;
        self.offset = cp.offset;
        self.seen_root = cp.seen_root;
        self.in_tag = cp.in_tag;
        self.finished = cp.finished;
        self.stack.truncate(cp.stack_len);
        self.stack_buf.truncate(cp.stack_buf_len);
        self.pending.truncate(cp.pending_len);
        self.pending_pos = cp.pending_pos;
        self.slot = Slot::None;
        self.defer_consume = 0;
    }

    /// Serialize the complete resumable parse state at a quiescent point
    /// (the last poll returned [`Polled::NeedMoreData`] or [`Polled::End`]).
    ///
    /// What is written: the unconsumed byte window (the tail of an
    /// incomplete construct), the stream offset of that window's start —
    /// which is exactly where a restored reader re-anchors its
    /// [`StructuralIndex`] — the open-element stack with resolved ids, the
    /// parser phase flags, and the per-path telemetry counters. The
    /// structural index itself, the scan hints and all scratch buffers are
    /// *re-derivable caches* and are deliberately not part of the format.
    pub fn state_save(&self, enc: &mut flux_state::Enc) -> Result<(), flux_state::StateError> {
        if self.defer_consume > 0 || matches!(self.slot, Slot::StackPop) {
            return Err(flux_state::StateError::NotQuiescent(
                "reader holds a deferred event borrow",
            ));
        }
        if self.pending_pos < self.pending.len() {
            return Err(flux_state::StateError::NotQuiescent(
                "reader has undelivered pending events",
            ));
        }
        enc.put_bytes(&self.src.buf[self.src.pos..]);
        enc.put_bool(self.src.closed);
        enc.put_uint(self.offset);
        enc.put_bool(self.seen_root);
        enc.put_bool(self.in_tag);
        enc.put_bool(self.finished);
        enc.put_usize(self.stack.len());
        for (i, &(off, id)) in self.stack.iter().enumerate() {
            let end =
                self.stack.get(i + 1).map_or(self.stack_buf.len(), |&(next, _)| next as usize);
            enc.put_uint(u64::from(id.0));
            enc.put_str(&self.stack_buf[off as usize..end]);
        }
        enc.put_uint(self.fast_bytes);
        enc.put_uint(self.general_bytes);
        Ok(())
    }

    /// Rebuild an incremental reader saved by [`Reader::state_save`].
    /// `opts` and `symbols` come from the compiled plan the snapshot was
    /// taken against (the caller has already verified the plan
    /// fingerprint); the structural index re-anchors lazily at the restored
    /// offset on the first poll.
    pub fn state_restore(
        opts: ReaderOptions,
        symbols: Arc<Symbols>,
        dec: &mut flux_state::Dec<'_>,
    ) -> Result<Reader<FeedSource>, flux_state::StateError> {
        let mut r = Reader::incremental_with_symbols(opts, symbols);
        r.src.buf = dec.get_bytes()?.to_vec();
        r.src.closed = dec.get_bool()?;
        r.offset = dec.get_uint()?;
        r.seen_root = dec.get_bool()?;
        r.in_tag = dec.get_bool()?;
        r.finished = dec.get_bool()?;
        let depth = dec.get_count()?;
        for _ in 0..depth {
            let id = u32::try_from(dec.get_uint()?)
                .map_err(|_| flux_state::StateError::Corrupt("NameId exceeds u32"))?;
            let name = dec.get_str()?;
            let off = r.stack_buf.len() as u32;
            r.stack_buf.push_str(name);
            r.stack.push((off, NameId(id)));
        }
        r.fast_bytes = dec.get_uint()?;
        r.general_bytes = dec.get_uint()?;
        Ok(r)
    }
}

/// Validate an XML name (loose check: letters/`_`/`:` then name characters).
/// ASCII names — the overwhelmingly common case — take a byte-wise path.
fn check_name(name: &str) -> Result<(), String> {
    let bytes = name.as_bytes();
    match bytes.first() {
        Some(&b) if b.is_ascii_alphabetic() || b == b'_' || b == b':' => {}
        Some(&b) if !b.is_ascii() => return check_name_unicode(name),
        Some(&b) => {
            return Err(format!("invalid name start character `{}` in `{name}`", b as char))
        }
        None => return Err("empty element name".into()),
    }
    for &b in &bytes[1..] {
        if !(b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':')) {
            if !b.is_ascii() {
                return check_name_unicode(name);
            }
            return Err(format!("invalid name character `{}` in `{name}`", b as char));
        }
    }
    Ok(())
}

/// The general (non-ASCII) name check.
fn check_name_unicode(name: &str) -> Result<(), String> {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_alphabetic() || c == '_' || c == ':' => {}
        Some(c) => return Err(format!("invalid name start character `{c}` in `{name}`")),
        None => return Err("empty element name".into()),
    }
    for c in chars {
        if !(c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':')) {
            return Err(format!("invalid name character `{c}` in `{name}`"));
        }
    }
    Ok(())
}

/// Parse `a="v" b='w'` attribute syntax. Values are entity-decoded.
fn parse_attributes(src: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut rest = src.trim_start();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("expected `=` in attribute list near `{rest}`"))?;
        let name = rest[..eq].trim();
        check_name(name)?;
        let after = rest[eq + 1..].trim_start();
        let quote = after
            .chars()
            .next()
            .filter(|&c| c == '"' || c == '\'')
            .ok_or_else(|| format!("attribute `{name}` value must be quoted"))?;
        let val_rest = &after[1..];
        let end = val_rest
            .find(quote)
            .ok_or_else(|| format!("unterminated value for attribute `{name}`"))?;
        let value = crate::escape::unescape(&val_rest[..end])?;
        out.push((name.to_string(), value.into_owned()));
        rest = val_rest[end + 1..].trim_start();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(xml: &str) -> Vec<OwnedEvent> {
        Reader::from_str(xml).read_to_end().unwrap()
    }

    fn flat(xml: &str) -> String {
        events(xml).iter().map(|e| e.to_string()).collect()
    }

    #[test]
    fn simple_document() {
        assert_eq!(flat("<a><b>hi</b></a>"), "<a><b>hi</b></a>");
    }

    #[test]
    fn whitespace_dropped_by_default() {
        assert_eq!(flat("<a>\n  <b>x</b>\n</a>"), "<a><b>x</b></a>");
    }

    #[test]
    fn whitespace_kept_on_request() {
        let mut r = Reader::new(
            "<a> <b>x</b> </a>".as_bytes(),
            ReaderOptions { keep_whitespace: true, ..Default::default() },
        );
        let evs = r.read_to_end().unwrap();
        assert_eq!(evs.iter().map(|e| e.to_string()).collect::<String>(), "<a> <b>x</b> </a>");
    }

    #[test]
    fn entities_resolved() {
        let evs = events("<a>x &lt; y &amp; z</a>");
        assert_eq!(evs[1], OwnedEvent::Text("x < y & z".into()));
    }

    #[test]
    fn self_closing() {
        assert_eq!(flat("<a><b/></a>"), "<a><b></b></a>");
    }

    #[test]
    fn attributes_converted_to_subelements() {
        assert_eq!(
            flat(r#"<person id="person0"><name>Jo</name></person>"#),
            "<person><person_id>person0</person_id><name>Jo</name></person>"
        );
    }

    #[test]
    fn multiple_attributes_in_order() {
        assert_eq!(
            flat(r#"<item featured="yes" id="item3"/>"#),
            "<item><item_featured>yes</item_featured><item_id>item3</item_id></item>"
        );
    }

    #[test]
    fn attributes_dropped_mode() {
        let mut r = Reader::new(
            r#"<a x="1">t</a>"#.as_bytes(),
            ReaderOptions { attributes: AttributeMode::Drop, ..Default::default() },
        );
        let evs = r.read_to_end().unwrap();
        assert_eq!(evs.iter().map(|e| e.to_string()).collect::<String>(), "<a>t</a>");
    }

    #[test]
    fn attributes_rejected_mode() {
        let mut r = Reader::new(
            r#"<a x="1">t</a>"#.as_bytes(),
            ReaderOptions { attributes: AttributeMode::Reject, ..Default::default() },
        );
        let err = r.read_to_end().unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::AttributeRejected { .. }));
    }

    #[test]
    fn prolog_comments_pi_doctype_skipped() {
        let xml = r#"<?xml version="1.0"?><!DOCTYPE a [<!ELEMENT a (#PCDATA)>]><!-- note --><a>x<?pi data?><!-- more --></a>"#;
        assert_eq!(flat(xml), "<a>x</a>");
    }

    #[test]
    fn comment_containing_gt() {
        assert_eq!(flat("<a><!-- x > y --->ok</a>"), "<a>ok</a>");
    }

    #[test]
    fn cdata_is_verbatim_text() {
        let evs = events("<a><![CDATA[1 < 2 & so]]></a>");
        assert_eq!(evs[1], OwnedEvent::Text("1 < 2 & so".into()));
    }

    #[test]
    fn cdata_containing_gt() {
        let evs = events("<a><![CDATA[x > y]]></a>");
        assert_eq!(evs[1], OwnedEvent::Text("x > y".into()));
    }

    #[test]
    fn mismatched_tag_rejected() {
        let err = Reader::from_str("<a><b></a></b>").read_to_end().unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::MismatchedTag { .. }));
    }

    #[test]
    fn mismatch_reports_expected_open_tag() {
        let err = Reader::from_str("<a><b></c>").read_to_end().unwrap_err();
        match err.kind {
            XmlErrorKind::MismatchedTag { expected, found } => {
                assert_eq!(expected.as_deref(), Some("b"));
                assert_eq!(found, "c");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn truncated_document_rejected() {
        let err = Reader::from_str("<a><b>").read_to_end().unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::UnexpectedEof);
        let err = Reader::from_str("<a").read_to_end().unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::UnexpectedEof);
    }

    #[test]
    fn trailing_content_rejected() {
        let err = Reader::from_str("<a/><b/>").read_to_end().unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::TrailingContent);
        let err = Reader::from_str("<a/>junk").read_to_end().unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::TextOutsideRoot);
    }

    #[test]
    fn text_outside_root_rejected() {
        let err = Reader::from_str("junk<a/>").read_to_end().unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::TextOutsideRoot);
    }

    #[test]
    fn empty_input_rejected() {
        let err = Reader::from_str("   ").read_to_end().unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::UnexpectedEof);
    }

    #[test]
    fn bad_entity_reported() {
        let err = Reader::from_str("<a>&bogus;</a>").read_to_end().unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::Syntax(_)));
    }

    #[test]
    fn bad_names_reported() {
        assert!(Reader::from_str("<1a/>").read_to_end().is_err());
        assert!(Reader::from_str("<a b c/>").read_to_end().is_err());
        assert!(Reader::from_str("<a></1a>").read_to_end().is_err());
    }

    #[test]
    fn unicode_names_accepted() {
        assert_eq!(flat("<多><é>x</é></多>"), "<多><é>x</é></多>");
    }

    #[test]
    fn depth_and_offset_track() {
        let mut r = Reader::from_str("<a><b>x</b></a>");
        assert_eq!(r.depth(), 0);
        r.next_event().unwrap(); // <a>
        assert_eq!(r.depth(), 1);
        r.next_event().unwrap(); // <b>
        assert_eq!(r.depth(), 2);
        assert!(r.offset() > 0);
    }

    #[test]
    fn deeply_nested() {
        let mut xml = String::new();
        for i in 0..200 {
            xml.push_str(&format!("<e{i}>"));
        }
        for i in (0..200).rev() {
            xml.push_str(&format!("</e{i}>"));
        }
        let evs = events(&xml);
        assert_eq!(evs.len(), 400);
    }

    #[test]
    fn single_quoted_attributes() {
        assert_eq!(flat("<a k='v'/>"), "<a><a_k>v</a_k></a>");
    }

    #[test]
    fn attribute_value_entities() {
        assert_eq!(flat(r#"<a k="x &amp; y"/>"#), "<a><a_k>x &amp; y</a_k></a>");
    }

    fn bib_symbols() -> Arc<Symbols> {
        let mut s = Symbols::new();
        for n in ["bib", "book", "title", "book_id"] {
            s.intern(n);
        }
        Arc::new(s)
    }

    #[test]
    fn resolved_ids_match_the_table() {
        let syms = bib_symbols();
        let doc = "<bib><book><title>T</title><zzz>u</zzz></book></bib>";
        let mut r = Reader::with_symbols(doc.as_bytes(), ReaderOptions::default(), syms.clone());
        let mut seen = Vec::new();
        while let Some(ev) = r.next_resolved().unwrap() {
            if let ResolvedEvent::Start(id, name) | ResolvedEvent::End(id, name) = ev {
                seen.push((id, name.to_string()));
            }
        }
        assert_eq!(seen[0], (syms.resolve("bib"), "bib".to_string()));
        assert_eq!(seen[1], (syms.resolve("book"), "book".to_string()));
        assert_eq!(seen[2], (syms.resolve("title"), "title".to_string()));
        // End ids come from the stack, not a re-hash; they must agree.
        assert_eq!(seen[3], (syms.resolve("title"), "title".to_string()));
        // Out-of-vocabulary names resolve to UNKNOWN but keep their text.
        assert_eq!(seen[4], (NameId::UNKNOWN, "zzz".to_string()));
        assert_eq!(seen[5], (NameId::UNKNOWN, "zzz".to_string()));
        assert!(seen[4].0.is_unknown());
    }

    #[test]
    fn resolved_ids_flow_through_attribute_conversion() {
        let syms = bib_symbols();
        let doc = r#"<bib><book id="b1"/></bib>"#;
        let mut r = Reader::with_symbols(doc.as_bytes(), ReaderOptions::default(), syms.clone());
        let mut starts = Vec::new();
        while let Some(ev) = r.next_resolved().unwrap() {
            if let ResolvedEvent::Start(id, name) = ev {
                starts.push((id, name.to_string()));
            }
        }
        assert_eq!(starts[1], (syms.resolve("book"), "book".to_string()));
        assert_eq!(starts[2], (syms.resolve("book_id"), "book_id".to_string()));
    }

    #[test]
    fn reader_without_symbols_resolves_unknown() {
        let mut r = Reader::from_str("<a>x</a>");
        match r.next_resolved().unwrap().unwrap() {
            ResolvedEvent::Start(id, "a") => assert!(id.is_unknown()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn attributed_tags_fast_and_slow_paths_agree() {
        // The attribute fast path must produce the identical event stream
        // to the accumulating path (exercised via 1-byte read windows).
        let docs = [
            r#"<a k="v">t</a>"#,
            r#"<a k="v"/>"#,
            r#"<a k = 'v' l="w"  />"#,
            r#"<a  >x</a>"#,
            r#"<item featured="yes" id="item3"><x y=""/></item>"#,
            r#"<a k="x &amp; y">t</a>"#,
            r#"<a k="köln">t</a>"#,
        ];
        for doc in docs {
            let fast = Reader::from_str(doc).read_to_end().unwrap();
            let slow = Reader::new(
                std::io::BufReader::with_capacity(1, doc.as_bytes()),
                ReaderOptions::default(),
            )
            .read_to_end()
            .unwrap();
            assert_eq!(fast, slow, "doc: {doc}");
        }
    }

    #[test]
    fn attributed_tag_errors_agree_between_paths() {
        // `<a k="a>b">` is here deliberately: both paths truncate the tag at
        // the first `>` (pre-existing contract) and report it unterminated.
        for doc in [
            r#"<a k=v>t</a>"#,
            r#"<a k>t</a>"#,
            r#"<a 1k="v"/>"#,
            r#"<a k="v>more text"#,
            r#"<a k="a>b">t</a>"#,
        ] {
            let fast = Reader::from_str(doc).read_to_end().unwrap_err();
            let slow = Reader::new(
                std::io::BufReader::with_capacity(1, doc.as_bytes()),
                ReaderOptions::default(),
            )
            .read_to_end()
            .unwrap_err();
            assert_eq!(fast, slow, "doc: {doc}");
        }
    }

    /// Drive an incremental reader over `doc` split into `chunks`, closing
    /// after the last one.
    fn poll_all(doc: &str, chunks: &[&[u8]]) -> Result<Vec<OwnedEvent>, XmlError> {
        let mut r = Reader::incremental(ReaderOptions::default());
        let mut out = Vec::new();
        let mut next = 0usize;
        loop {
            match r.poll_resolved()? {
                Polled::Event(ev) => out.push(ev.to_event().to_owned()),
                Polled::NeedMoreData => {
                    if next < chunks.len() {
                        r.feed(chunks[next]);
                        next += 1;
                    } else {
                        assert!(!r.is_closed(), "closed reader must not ask for more data");
                        r.close();
                    }
                }
                Polled::End => break,
            }
        }
        assert_eq!(r.offset(), doc.len() as u64);
        Ok(out)
    }

    #[test]
    fn incremental_matches_one_shot_at_every_split() {
        // Constructs that stress rollback: tags, attributes, entities,
        // comments (with `>`), CDATA, DOCTYPE, PIs, unicode names and
        // multi-byte text, self-closing tags, whitespace runs.
        let docs = [
            "<a><b>hi</b></a>",
            r#"<?xml version="1.0"?><!DOCTYPE a [<!ELEMENT a (#PCDATA)>]><a>x<?pi d?><!-- c > d --->y</a>"#,
            r#"<person id="person0"><name>Jo &amp; Bo</name><多>é</多></person>"#,
            "<a><![CDATA[1 < 2 & x > y]]></a>",
            "<a>\n  <b k='v' l=\"w\"/>tail</a>",
            "  <a>täxt</a>  ",
        ];
        for doc in docs {
            let reference = Reader::from_str(doc).read_to_end().unwrap();
            for at in 0..=doc.len() {
                let (head, tail) = doc.as_bytes().split_at(at);
                let got = poll_all(doc, &[head, tail])
                    .unwrap_or_else(|e| panic!("split {at} of {doc}: {e}"));
                assert_eq!(got, reference, "split {at} of {doc}");
            }
            // And fully byte-at-a-time.
            let bytes: Vec<&[u8]> = doc.as_bytes().chunks(1).collect();
            assert_eq!(poll_all(doc, &bytes).unwrap(), reference, "byte-at-a-time {doc}");
        }
    }

    #[test]
    fn incremental_errors_match_one_shot_at_every_split() {
        let docs =
            ["<a><b></a></b>", "<a>&bogus;</a>", "<a/>junk", "junk<a/>", "<a/><b/>", "<a k=v/>"];
        for doc in docs {
            let reference = Reader::from_str(doc).read_to_end().unwrap_err();
            for at in 0..=doc.len() {
                let (head, tail) = doc.as_bytes().split_at(at);
                let err = poll_all(doc, &[head, tail]).expect_err("must fail");
                assert_eq!(err, reference, "split {at} of {doc}");
            }
        }
    }

    #[test]
    fn incremental_truncation_errors_only_after_close() {
        let mut r = Reader::incremental(ReaderOptions::default());
        r.feed(b"<a><b>");
        assert_eq!(
            r.poll_resolved().unwrap(),
            Polled::Event(ResolvedEvent::Start(NameId::UNKNOWN, "a"))
        );
        assert_eq!(
            r.poll_resolved().unwrap(),
            Polled::Event(ResolvedEvent::Start(NameId::UNKNOWN, "b"))
        );
        // Mid-document: not an error yet, just hungry.
        assert_eq!(r.poll_resolved().unwrap(), Polled::NeedMoreData);
        assert_eq!(r.poll_resolved().unwrap(), Polled::NeedMoreData);
        r.close();
        let err = r.poll_resolved().unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::UnexpectedEof);
    }

    #[test]
    fn fragmented_text_is_not_rescanned_quadratically() {
        // A long text run fed in many tiny chunks: the scan-position hint
        // must cover the whole fed window after every poll, so the next
        // poll scans only the bytes it has not seen — without the hint each
        // poll re-scans (and re-copies) the run from its start, O(n²).
        let mut r = Reader::incremental(ReaderOptions::default());
        r.feed(b"<a>");
        assert!(matches!(r.poll_resolved().unwrap(), Polled::Event(ResolvedEvent::Start(..))));
        assert_eq!(r.poll_resolved().unwrap(), Polled::NeedMoreData);
        let chunk = [b'x'; 64];
        let chunks = 512usize;
        for _ in 0..chunks {
            r.feed(&chunk);
            assert_eq!(r.poll_resolved().unwrap(), Polled::NeedMoreData);
            assert_eq!(r.src.lt_scanned, r.src.buf.len(), "hint covers the fed window");
        }
        r.feed(b"</a>");
        match r.poll_resolved().unwrap() {
            Polled::Event(ResolvedEvent::Text(t)) => {
                assert_eq!(t.len(), chunks * chunk.len());
                assert!(t.bytes().all(|b| b == b'x'));
            }
            other => panic!("expected the completed text run, got {other:?}"),
        }
        assert!(matches!(r.poll_resolved().unwrap(), Polled::Event(ResolvedEvent::End(..))));
        r.close();
        assert_eq!(r.poll_resolved().unwrap(), Polled::End);
    }

    #[test]
    fn scan_hint_survives_interleaved_tags_and_rollbacks() {
        // The hint is a pure memo over buffer content: tags completing,
        // checkpoint rollbacks and buffer reclaims in between must never
        // make it skip a `<` or corrupt an event. Byte-at-a-time feeding of
        // a tag-and-text mix exercises every interleaving.
        let doc = "<a>alpha<b>beta</b>gamma &amp; delta<c/>  tail</a>";
        let reference = Reader::from_str(doc).read_to_end().unwrap();
        let bytes: Vec<&[u8]> = doc.as_bytes().chunks(1).collect();
        assert_eq!(poll_all(doc, &bytes).unwrap(), reference);
    }

    #[test]
    fn incremental_reclaims_consumed_bytes() {
        let mut r = Reader::incremental(ReaderOptions::default());
        r.feed(b"<a>");
        while let Polled::Event(_) = r.poll_resolved().unwrap() {}
        for _ in 0..1000 {
            r.feed(b"<b>x</b>");
            while let Polled::Event(_) = r.poll_resolved().unwrap() {}
        }
        // Only the unparsed tail is retained, not the whole stream.
        assert!(r.unconsumed_bytes() < 16, "retained {}", r.unconsumed_bytes());
    }
}
