//! Pull-based streaming XML parser.
//!
//! [`Reader`] reads from any [`BufRead`] source and yields one
//! [`Event`] at a time without ever materializing the document — the property
//! the whole FluX approach depends on. It performs well-formedness checking
//! (matching tags, a single root element) and resolves entity references.
//!
//! Attribute handling follows the paper's experimental setup (Appendix A):
//! the prototype's "XSAX parser converted attributes into subelements
//! on-the-fly". [`AttributeMode::ConvertToSubelements`] reproduces this:
//! `<person id="person0">` is reported as
//! `<person><person_id>person0</person_id>` with the synthesized element name
//! `{element}_{attribute}` (so `person`+`id` → `person_id`, `buyer`+`person`
//! → `buyer_person`, exactly the names the adapted XMark queries use).

use std::collections::VecDeque;
use std::fmt;
use std::io::BufRead;

use crate::events::{Event, OwnedEvent};
use crate::xsax::convert_attributes;

/// How the reader treats attributes in start tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AttributeMode {
    /// Error out when an attribute is encountered (the paper's core data
    /// model is attribute-free).
    Reject,
    /// Parse and discard attributes.
    Drop,
    /// Convert each attribute into a subelement named
    /// `{element}_{attribute}`, placed before the element's other children
    /// (the paper's XSAX behaviour).
    #[default]
    ConvertToSubelements,
}

/// Reader configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReaderOptions {
    /// Attribute handling; defaults to XSAX-style conversion.
    pub attributes: AttributeMode,
    /// Report whitespace-only text nodes. Off by default: element-content
    /// documents (like XMark) routinely contain indentation that carries no
    /// data and would only inflate buffers.
    pub keep_whitespace: bool,
}

/// Classification of parse failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlErrorKind {
    /// Byte stream is not valid UTF-8.
    Utf8,
    /// Underlying I/O failure.
    Io(String),
    /// `</b>` closing `<a>`, or close with nothing open.
    MismatchedTag { expected: Option<String>, found: String },
    /// Document ended with open elements.
    UnexpectedEof,
    /// Content after the root element was closed.
    TrailingContent,
    /// Character data outside the root element.
    TextOutsideRoot,
    /// Malformed tag, bad name, bad attribute syntax, bad entity, …
    Syntax(String),
    /// An attribute was seen under [`AttributeMode::Reject`].
    AttributeRejected { element: String, attribute: String },
}

/// A parse error with the byte offset at which it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// What went wrong.
    pub kind: XmlErrorKind,
    /// Byte offset into the input stream.
    pub offset: u64,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            XmlErrorKind::Utf8 => write!(f, "invalid UTF-8 at byte {}", self.offset),
            XmlErrorKind::Io(e) => write!(f, "I/O error at byte {}: {e}", self.offset),
            XmlErrorKind::MismatchedTag { expected, found } => match expected {
                Some(e) => write!(
                    f,
                    "mismatched end tag </{found}> at byte {}, expected </{e}>",
                    self.offset
                ),
                None => {
                    write!(f, "end tag </{found}> with no open element at byte {}", self.offset)
                }
            },
            XmlErrorKind::UnexpectedEof => {
                write!(f, "unexpected end of input at byte {}", self.offset)
            }
            XmlErrorKind::TrailingContent => {
                write!(f, "content after document root at byte {}", self.offset)
            }
            XmlErrorKind::TextOutsideRoot => {
                write!(f, "character data outside the root element at byte {}", self.offset)
            }
            XmlErrorKind::Syntax(m) => write!(f, "XML syntax error at byte {}: {m}", self.offset),
            XmlErrorKind::AttributeRejected { element, attribute } => {
                write!(
                    f,
                    "attribute `{attribute}` on `<{element}>` at byte {} (attribute-free mode)",
                    self.offset
                )
            }
        }
    }
}

impl std::error::Error for XmlError {}

enum Slot {
    None,
    /// Borrow target for a text event.
    Text,
    /// Borrow target for an end tag name.
    EndName,
    /// Borrow target for a start tag name (attribute-free fast path).
    StartName,
    /// An owned event dequeued from `pending`.
    Owned(OwnedEvent),
}

/// Streaming pull parser. See the [module documentation](self).
pub struct Reader<R> {
    src: R,
    opts: ReaderOptions,
    stack: Vec<String>,
    pending: VecDeque<OwnedEvent>,
    slot: Slot,
    text_buf: String,
    name_buf: String,
    raw: Vec<u8>,
    offset: u64,
    seen_root: bool,
    /// True when the next bytes to parse are the inside of a `<…>` tag (the
    /// `<` has already been consumed while scanning text).
    in_tag: bool,
    finished: bool,
}

impl<'s> Reader<&'s [u8]> {
    /// Parse from an in-memory string.
    #[allow(clippy::should_implement_trait)] // fallible trait shape does not fit
    pub fn from_str(s: &'s str) -> Self {
        Self::new(s.as_bytes(), ReaderOptions::default())
    }
}

impl<R: BufRead> Reader<R> {
    /// Create a reader over any buffered byte source.
    pub fn new(src: R, opts: ReaderOptions) -> Self {
        Reader {
            src,
            opts,
            stack: Vec::new(),
            pending: VecDeque::new(),
            slot: Slot::None,
            text_buf: String::new(),
            name_buf: String::new(),
            raw: Vec::new(),
            offset: 0,
            seen_root: false,
            in_tag: false,
            finished: false,
        }
    }

    /// Number of bytes consumed from the source so far.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Depth of currently open elements.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    fn err<T>(&self, kind: XmlErrorKind) -> Result<T, XmlError> {
        Err(XmlError { kind, offset: self.offset })
    }

    /// Pull the next event. Returns `Ok(None)` at a well-formed end of
    /// document. The returned event borrows from the reader and must be
    /// released (dropped) before the next call.
    pub fn next_event(&mut self) -> Result<Option<Event<'_>>, XmlError> {
        loop {
            // Deliver queued events first (attribute conversion etc.).
            if let Some(ev) = self.pending.pop_front() {
                if let OwnedEvent::End(_) = &ev {
                    // End events synthesized for self-closing tags already
                    // had their stack entry popped at queue time.
                }
                self.slot = Slot::Owned(ev);
                break;
            }
            if self.finished {
                return Ok(None);
            }
            if self.in_tag {
                self.in_tag = false;
                if self.parse_tag()? {
                    break;
                }
                continue; // comment / PI / doctype: nothing to report
            }
            // Scan character data until the next '<'.
            self.raw.clear();
            let n = self.src.read_until(b'<', &mut self.raw).map_err(|e| XmlError {
                kind: XmlErrorKind::Io(e.to_string()),
                offset: self.offset,
            })?;
            self.offset += n as u64;
            let saw_lt = self.raw.last() == Some(&b'<');
            let text_len = if saw_lt { self.raw.len() - 1 } else { self.raw.len() };
            let had_text = self.take_text(text_len)?;
            if saw_lt {
                self.in_tag = true;
            } else {
                // EOF.
                if !self.stack.is_empty() {
                    return self.err(XmlErrorKind::UnexpectedEof);
                }
                if !self.seen_root {
                    return self.err(XmlErrorKind::UnexpectedEof);
                }
                self.finished = true;
            }
            if had_text {
                self.slot = Slot::Text;
                break;
            }
        }
        Ok(Some(match &self.slot {
            Slot::Text => Event::Text(&self.text_buf),
            Slot::EndName => Event::End(&self.name_buf),
            Slot::StartName => Event::Start(&self.name_buf),
            Slot::Owned(ev) => ev.as_event(),
            Slot::None => unreachable!("slot set before break"),
        }))
    }

    /// Decode and stash the first `len` bytes of `self.raw` as character
    /// data; returns whether a text event should be emitted.
    fn take_text(&mut self, len: usize) -> Result<bool, XmlError> {
        if len == 0 {
            return Ok(false);
        }
        let s = std::str::from_utf8(&self.raw[..len])
            .map_err(|_| XmlError { kind: XmlErrorKind::Utf8, offset: self.offset })?;
        let is_ws = s.chars().all(char::is_whitespace);
        if is_ws && (!self.opts.keep_whitespace || self.stack.is_empty()) {
            return Ok(false);
        }
        if self.stack.is_empty() {
            if is_ws {
                return Ok(false);
            }
            return self.err(XmlErrorKind::TextOutsideRoot);
        }
        let decoded = crate::escape::unescape(s)
            .map_err(|m| XmlError { kind: XmlErrorKind::Syntax(m), offset: self.offset })?;
        self.text_buf.clear();
        self.text_buf.push_str(&decoded);
        Ok(true)
    }

    /// Parse one `<…>` construct (the leading `<` is already consumed).
    /// Returns true when an event was produced (in `slot` or `pending`).
    fn parse_tag(&mut self) -> Result<bool, XmlError> {
        self.raw.clear();
        let n = self
            .src
            .read_until(b'>', &mut self.raw)
            .map_err(|e| XmlError { kind: XmlErrorKind::Io(e.to_string()), offset: self.offset })?;
        self.offset += n as u64;
        if self.raw.last() != Some(&b'>') {
            return self.err(XmlErrorKind::UnexpectedEof);
        }
        self.raw.pop();

        // Comments, CDATA and DOCTYPE may legitimately contain '>'.
        if self.raw.starts_with(b"!--") {
            while !self.raw.ends_with(b"--") || self.raw.len() < 5 {
                let m = self.src.read_until(b'>', &mut self.raw).map_err(|e| XmlError {
                    kind: XmlErrorKind::Io(e.to_string()),
                    offset: self.offset,
                })?;
                if m == 0 {
                    return self.err(XmlErrorKind::UnexpectedEof);
                }
                self.offset += m as u64;
                if self.raw.last() == Some(&b'>') {
                    self.raw.pop();
                } else {
                    return self.err(XmlErrorKind::UnexpectedEof);
                }
            }
            return Ok(false);
        }
        if self.raw.starts_with(b"![CDATA[") {
            while !self.raw.ends_with(b"]]") {
                // The '>' we consumed was CDATA content, not the terminator.
                self.raw.push(b'>');
                let m = self.src.read_until(b'>', &mut self.raw).map_err(|e| XmlError {
                    kind: XmlErrorKind::Io(e.to_string()),
                    offset: self.offset,
                })?;
                if m == 0 {
                    return self.err(XmlErrorKind::UnexpectedEof);
                }
                self.offset += m as u64;
                if self.raw.last() == Some(&b'>') {
                    self.raw.pop();
                } else {
                    return self.err(XmlErrorKind::UnexpectedEof);
                }
            }
            if self.stack.is_empty() {
                return self.err(XmlErrorKind::TextOutsideRoot);
            }
            let inner = &self.raw[8..self.raw.len() - 2];
            let s = std::str::from_utf8(inner)
                .map_err(|_| XmlError { kind: XmlErrorKind::Utf8, offset: self.offset })?;
            self.text_buf.clear();
            self.text_buf.push_str(s);
            self.slot = Slot::Text;
            return Ok(true);
        }
        if self.raw.starts_with(b"!") {
            // DOCTYPE (possibly with an internal subset containing '>').
            let mut depth = self.raw.iter().filter(|&&b| b == b'[').count() as i64
                - self.raw.iter().filter(|&&b| b == b']').count() as i64;
            while depth > 0 {
                let m = self.src.read_until(b'>', &mut self.raw).map_err(|e| XmlError {
                    kind: XmlErrorKind::Io(e.to_string()),
                    offset: self.offset,
                })?;
                if m == 0 {
                    return self.err(XmlErrorKind::UnexpectedEof);
                }
                self.offset += m as u64;
                let added = &self.raw[self.raw.len() - m..];
                depth += added.iter().filter(|&&b| b == b'[').count() as i64
                    - added.iter().filter(|&&b| b == b']').count() as i64;
                if self.raw.last() == Some(&b'>') {
                    self.raw.pop();
                } else {
                    return self.err(XmlErrorKind::UnexpectedEof);
                }
            }
            return Ok(false);
        }
        if self.raw.starts_with(b"?") {
            // Processing instruction / XML declaration; ignored.
            return Ok(false);
        }

        let body = std::str::from_utf8(&self.raw)
            .map_err(|_| XmlError { kind: XmlErrorKind::Utf8, offset: self.offset })?;
        if let Some(name_part) = body.strip_prefix('/') {
            // End tag.
            let name = name_part.trim();
            check_name(name)
                .map_err(|m| XmlError { kind: XmlErrorKind::Syntax(m), offset: self.offset })?;
            match self.stack.pop() {
                Some(open) if open == name => {}
                Some(open) => {
                    return self.err(XmlErrorKind::MismatchedTag {
                        expected: Some(open),
                        found: name.to_string(),
                    })
                }
                None => {
                    return self.err(XmlErrorKind::MismatchedTag {
                        expected: None,
                        found: name.to_string(),
                    })
                }
            }
            self.name_buf.clear();
            self.name_buf.push_str(name);
            self.slot = Slot::EndName;
            return Ok(true);
        }

        // Start tag.
        if self.seen_root && self.stack.is_empty() {
            return self.err(XmlErrorKind::TrailingContent);
        }
        let (body, self_closing) = match body.strip_suffix('/') {
            Some(b) => (b, true),
            None => (body, false),
        };
        let body = body.trim_end();
        let name_end = body.find(|c: char| c.is_whitespace()).unwrap_or(body.len());
        let name = &body[..name_end];
        check_name(name)
            .map_err(|m| XmlError { kind: XmlErrorKind::Syntax(m), offset: self.offset })?;
        let attr_src = body[name_end..].trim();

        self.seen_root = true;
        if attr_src.is_empty() {
            // Fast path: no attributes.
            self.name_buf.clear();
            self.name_buf.push_str(name);
            if self_closing {
                self.pending.push_back(OwnedEvent::End(name.into()));
            } else {
                self.stack.push(name.to_string());
            }
            self.slot = Slot::StartName;
            return Ok(true);
        }

        let attrs = parse_attributes(attr_src)
            .map_err(|m| XmlError { kind: XmlErrorKind::Syntax(m), offset: self.offset })?;
        match self.opts.attributes {
            AttributeMode::Reject => self.err(XmlErrorKind::AttributeRejected {
                element: name.to_string(),
                attribute: attrs[0].0.clone(),
            }),
            AttributeMode::Drop => {
                self.name_buf.clear();
                self.name_buf.push_str(name);
                if self_closing {
                    self.pending.push_back(OwnedEvent::End(name.into()));
                } else {
                    self.stack.push(name.to_string());
                }
                self.slot = Slot::StartName;
                Ok(true)
            }
            AttributeMode::ConvertToSubelements => {
                for ev in convert_attributes(name, &attrs) {
                    self.pending.push_back(ev);
                }
                if self_closing {
                    self.pending.push_back(OwnedEvent::End(name.into()));
                } else {
                    self.stack.push(name.to_string());
                }
                // Caller loop pops from `pending`.
                Ok(false)
            }
        }
    }

    /// Drain the whole document into owned events (testing convenience).
    pub fn read_to_end(&mut self) -> Result<Vec<OwnedEvent>, XmlError> {
        let mut out = Vec::new();
        while let Some(ev) = self.next_event()? {
            out.push(ev.to_owned());
        }
        Ok(out)
    }
}

/// Validate an XML name (loose check: letters/`_`/`:` then name characters).
fn check_name(name: &str) -> Result<(), String> {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_alphabetic() || c == '_' || c == ':' => {}
        Some(c) => return Err(format!("invalid name start character `{c}` in `{name}`")),
        None => return Err("empty element name".into()),
    }
    for c in chars {
        if !(c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':')) {
            return Err(format!("invalid name character `{c}` in `{name}`"));
        }
    }
    Ok(())
}

/// Parse `a="v" b='w'` attribute syntax. Values are entity-decoded.
fn parse_attributes(src: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut rest = src.trim_start();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("expected `=` in attribute list near `{rest}`"))?;
        let name = rest[..eq].trim();
        check_name(name)?;
        let after = rest[eq + 1..].trim_start();
        let quote = after
            .chars()
            .next()
            .filter(|&c| c == '"' || c == '\'')
            .ok_or_else(|| format!("attribute `{name}` value must be quoted"))?;
        let val_rest = &after[1..];
        let end = val_rest
            .find(quote)
            .ok_or_else(|| format!("unterminated value for attribute `{name}`"))?;
        let value = crate::escape::unescape(&val_rest[..end])?;
        out.push((name.to_string(), value.into_owned()));
        rest = val_rest[end + 1..].trim_start();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(xml: &str) -> Vec<OwnedEvent> {
        Reader::from_str(xml).read_to_end().unwrap()
    }

    fn flat(xml: &str) -> String {
        events(xml).iter().map(|e| e.to_string()).collect()
    }

    #[test]
    fn simple_document() {
        assert_eq!(flat("<a><b>hi</b></a>"), "<a><b>hi</b></a>");
    }

    #[test]
    fn whitespace_dropped_by_default() {
        assert_eq!(flat("<a>\n  <b>x</b>\n</a>"), "<a><b>x</b></a>");
    }

    #[test]
    fn whitespace_kept_on_request() {
        let mut r = Reader::new(
            "<a> <b>x</b> </a>".as_bytes(),
            ReaderOptions { keep_whitespace: true, ..Default::default() },
        );
        let evs = r.read_to_end().unwrap();
        assert_eq!(evs.iter().map(|e| e.to_string()).collect::<String>(), "<a> <b>x</b> </a>");
    }

    #[test]
    fn entities_resolved() {
        let evs = events("<a>x &lt; y &amp; z</a>");
        assert_eq!(evs[1], OwnedEvent::Text("x < y & z".into()));
    }

    #[test]
    fn self_closing() {
        assert_eq!(flat("<a><b/></a>"), "<a><b></b></a>");
    }

    #[test]
    fn attributes_converted_to_subelements() {
        assert_eq!(
            flat(r#"<person id="person0"><name>Jo</name></person>"#),
            "<person><person_id>person0</person_id><name>Jo</name></person>"
        );
    }

    #[test]
    fn multiple_attributes_in_order() {
        assert_eq!(
            flat(r#"<item featured="yes" id="item3"/>"#),
            "<item><item_featured>yes</item_featured><item_id>item3</item_id></item>"
        );
    }

    #[test]
    fn attributes_dropped_mode() {
        let mut r = Reader::new(
            r#"<a x="1">t</a>"#.as_bytes(),
            ReaderOptions { attributes: AttributeMode::Drop, ..Default::default() },
        );
        let evs = r.read_to_end().unwrap();
        assert_eq!(evs.iter().map(|e| e.to_string()).collect::<String>(), "<a>t</a>");
    }

    #[test]
    fn attributes_rejected_mode() {
        let mut r = Reader::new(
            r#"<a x="1">t</a>"#.as_bytes(),
            ReaderOptions { attributes: AttributeMode::Reject, ..Default::default() },
        );
        let err = r.read_to_end().unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::AttributeRejected { .. }));
    }

    #[test]
    fn prolog_comments_pi_doctype_skipped() {
        let xml = r#"<?xml version="1.0"?><!DOCTYPE a [<!ELEMENT a (#PCDATA)>]><!-- note --><a>x<?pi data?><!-- more --></a>"#;
        assert_eq!(flat(xml), "<a>x</a>");
    }

    #[test]
    fn comment_containing_gt() {
        assert_eq!(flat("<a><!-- x > y --->ok</a>"), "<a>ok</a>");
    }

    #[test]
    fn cdata_is_verbatim_text() {
        let evs = events("<a><![CDATA[1 < 2 & so]]></a>");
        assert_eq!(evs[1], OwnedEvent::Text("1 < 2 & so".into()));
    }

    #[test]
    fn cdata_containing_gt() {
        let evs = events("<a><![CDATA[x > y]]></a>");
        assert_eq!(evs[1], OwnedEvent::Text("x > y".into()));
    }

    #[test]
    fn mismatched_tag_rejected() {
        let err = Reader::from_str("<a><b></a></b>").read_to_end().unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::MismatchedTag { .. }));
    }

    #[test]
    fn truncated_document_rejected() {
        let err = Reader::from_str("<a><b>").read_to_end().unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::UnexpectedEof);
        let err = Reader::from_str("<a").read_to_end().unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::UnexpectedEof);
    }

    #[test]
    fn trailing_content_rejected() {
        let err = Reader::from_str("<a/><b/>").read_to_end().unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::TrailingContent);
        let err = Reader::from_str("<a/>junk").read_to_end().unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::TextOutsideRoot);
    }

    #[test]
    fn text_outside_root_rejected() {
        let err = Reader::from_str("junk<a/>").read_to_end().unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::TextOutsideRoot);
    }

    #[test]
    fn empty_input_rejected() {
        let err = Reader::from_str("   ").read_to_end().unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::UnexpectedEof);
    }

    #[test]
    fn bad_entity_reported() {
        let err = Reader::from_str("<a>&bogus;</a>").read_to_end().unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::Syntax(_)));
    }

    #[test]
    fn bad_names_reported() {
        assert!(Reader::from_str("<1a/>").read_to_end().is_err());
        assert!(Reader::from_str("<a b c/>").read_to_end().is_err());
    }

    #[test]
    fn depth_and_offset_track() {
        let mut r = Reader::from_str("<a><b>x</b></a>");
        assert_eq!(r.depth(), 0);
        r.next_event().unwrap(); // <a>
        assert_eq!(r.depth(), 1);
        r.next_event().unwrap(); // <b>
        assert_eq!(r.depth(), 2);
        assert!(r.offset() > 0);
    }

    #[test]
    fn deeply_nested() {
        let mut xml = String::new();
        for i in 0..200 {
            xml.push_str(&format!("<e{i}>"));
        }
        for i in (0..200).rev() {
            xml.push_str(&format!("</e{i}>"));
        }
        let evs = events(&xml);
        assert_eq!(evs.len(), 400);
    }

    #[test]
    fn single_quoted_attributes() {
        assert_eq!(flat("<a k='v'/>"), "<a><a_k>v</a_k></a>");
    }

    #[test]
    fn attribute_value_entities() {
        assert_eq!(flat(r#"<a k="x &amp; y"/>"#), "<a><a_k>x &amp; y</a_k></a>");
    }
}
