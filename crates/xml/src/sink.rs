//! Output sinks: where serialized query results go.
//!
//! The engines are generic over [`Sink`] so results can stream to a socket,
//! a file, a byte counter, or an in-memory capture without the hot path ever
//! being forced through an owned `String`. Every [`std::io::Write`]
//! implementor is a `Sink` via the blanket impl; [`StringSink`] is the
//! capturing sink used when the caller does want the result as text.

use std::io;

/// A destination for serialized output bytes.
///
/// Blanket-implemented for every [`io::Write`], so `Vec<u8>`, files, sockets,
/// `io::sink()` and friends all work directly.
pub trait Sink {
    /// Append a chunk of output.
    fn write_bytes(&mut self, bytes: &[u8]) -> io::Result<()>;

    /// Flush any buffered output to the final destination.
    fn flush_sink(&mut self) -> io::Result<()>;
}

impl<W: io::Write> Sink for W {
    fn write_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.write_all(bytes)
    }

    fn flush_sink(&mut self) -> io::Result<()> {
        self.flush()
    }
}

/// A sink that captures the output in memory as UTF-8 text.
///
/// The writer layer only emits valid UTF-8 (element names and escaped text),
/// so [`StringSink::into_string`] never fails.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct StringSink {
    buf: Vec<u8>,
}

impl StringSink {
    /// An empty capture buffer.
    pub fn new() -> StringSink {
        StringSink::default()
    }

    /// The captured output so far.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.buf).expect("writer emits UTF-8")
    }

    /// Bytes captured so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether anything has been captured.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the sink, yielding the captured output.
    pub fn into_string(self) -> String {
        String::from_utf8(self.buf).expect("writer emits UTF-8")
    }
}

impl io::Write for StringSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_sink_captures() {
        let mut s = StringSink::new();
        s.write_bytes(b"<a>").unwrap();
        s.write_bytes(b"x</a>").unwrap();
        assert_eq!(s.as_str(), "<a>x</a>");
        assert_eq!(s.len(), 8);
        assert!(!s.is_empty());
        assert_eq!(s.into_string(), "<a>x</a>");
    }

    #[test]
    fn io_write_types_are_sinks() {
        fn take(_: &mut impl Sink) {}
        take(&mut Vec::new());
        take(&mut io::sink());
        take(&mut StringSink::new());
    }
}
