//! A compiled name trie: the shared runtime form of path-keyed plans.
//!
//! Both the FluX engine's buffer trees (which descendants of a scope to
//! record) and the DOM baseline's projection tries (which paths of the
//! document to keep) compile their planning structures down to the same
//! shape — a trie over interned [`NameId`]s with a per-node "take the whole
//! subtree" mark. Sharing the runtime type keeps the two engines' lookup
//! semantics identical: children lists are short (bounded by DTD content
//! models), so lookup is a linear scan over an id array, and
//! [`NameId::UNKNOWN`] never matches a compiled child — names outside the
//! static vocabulary are exactly the ones these plans discard.

use crate::symbols::NameId;

/// A compiled id-keyed trie. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct IdTrie {
    /// Take this node's entire subtree.
    pub marked: bool,
    /// Children to descend into, by interned name.
    pub children: Vec<(NameId, IdTrie)>,
}

impl IdTrie {
    /// The child for an interned name, if the trie descends into it.
    #[inline]
    pub fn child(&self, id: NameId) -> Option<&IdTrie> {
        self.children.iter().find(|(i, _)| *i == id).map(|(_, c)| c)
    }

    /// True when nothing at all would be taken.
    pub fn is_empty(&self) -> bool {
        !self.marked && self.children.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn child_lookup_by_id() {
        let t = IdTrie {
            marked: false,
            children: vec![
                (NameId(1), IdTrie { marked: true, children: vec![] }),
                (NameId(2), IdTrie::default()),
            ],
        };
        assert!(t.child(NameId(1)).unwrap().marked);
        assert!(!t.child(NameId(2)).unwrap().marked);
        assert!(t.child(NameId(3)).is_none());
        assert!(t.child(NameId::UNKNOWN).is_none());
        assert!(!t.is_empty());
        assert!(IdTrie::default().is_empty());
    }
}
