//! Streaming XML serialization.
//!
//! The FluX engine emits its result as a stream of events; [`Writer`] turns
//! that stream back into XML text with proper escaping. It also counts the
//! bytes written, which the benchmark harness uses to sanity-check that
//! different engines produce identically sized results.

use std::io;

use crate::escape::escape_text_chunks;
use crate::events::Event;
use crate::sink::Sink;
use crate::tree::Node;

/// A streaming event serializer over any [`Sink`] (every [`io::Write`] is
/// one via the blanket impl).
pub struct Writer<S> {
    out: S,
    bytes: u64,
}

impl<S: Sink> Writer<S> {
    /// Wrap a sink.
    pub fn new(out: S) -> Self {
        Writer { out, bytes: 0 }
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Wrap a fresh sink while restoring the byte counter of a previous
    /// writer — the output side of a session restore: the old sink's
    /// contents stay wherever the snapshotting side put them, the new sink
    /// receives only the bytes produced after the restore point, and the
    /// counter keeps `output_bytes` statistics identical to an
    /// uninterrupted run.
    pub fn resume(out: S, bytes: u64) -> Self {
        Writer { out, bytes }
    }

    /// Write one event.
    pub fn write_event(&mut self, ev: Event<'_>) -> io::Result<()> {
        match ev {
            Event::Start(n) => {
                self.raw(b"<")?;
                self.raw(n.as_bytes())?;
                self.raw(b">")
            }
            Event::End(n) => {
                self.raw(b"</")?;
                self.raw(n.as_bytes())?;
                self.raw(b">")
            }
            Event::Text(t) => self.write_text(t),
        }
    }

    /// Write character data with escaping applied, streaming clean runs and
    /// entities straight to the sink — no intermediate allocation even when
    /// the text needs escaping.
    pub fn write_text(&mut self, t: &str) -> io::Result<()> {
        escape_text_chunks(t, |chunk| self.raw(chunk.as_bytes()))
    }

    /// Write a raw, pre-formed string (used for the paper's "output of a
    /// fixed string" query construct, where `<result>` is already literal
    /// markup and must not be re-escaped).
    pub fn write_raw(&mut self, s: &str) -> io::Result<()> {
        self.raw(s.as_bytes())
    }

    /// Serialize a whole subtree.
    pub fn write_node(&mut self, node: &Node) -> io::Result<()> {
        let mut res = Ok(());
        node.visit_events(&mut |ev| {
            if res.is_ok() {
                res = self.write_event(ev);
            }
        });
        res
    }

    /// Flush and return the inner sink.
    pub fn into_inner(mut self) -> io::Result<S> {
        self.out.flush_sink()?;
        Ok(self.out)
    }

    /// Return the inner sink without flushing (used to recover the sink on
    /// error paths, where a flush could mask the original failure).
    pub fn into_sink(self) -> S {
        self.out
    }

    fn raw(&mut self, b: &[u8]) -> io::Result<()> {
        self.out.write_bytes(b)?;
        self.bytes += b.len() as u64;
        Ok(())
    }
}

/// A sink that discards everything but counts bytes — used to measure result
/// sizes (and benchmark pure engine throughput) without I/O cost.
#[derive(Debug, Default)]
pub struct NullSink {
    /// Bytes "written".
    pub bytes: u64,
}

impl io::Write for NullSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.bytes += buf.len() as u64;
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_serialize_with_escaping() {
        let mut w = Writer::new(Vec::new());
        w.write_event(Event::Start("a")).unwrap();
        w.write_event(Event::Text("1 < 2")).unwrap();
        w.write_event(Event::End("a")).unwrap();
        let out = w.into_inner().unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "<a>1 &lt; 2</a>");
    }

    #[test]
    fn byte_counter_matches_output() {
        let mut w = Writer::new(Vec::new());
        w.write_event(Event::Start("abc")).unwrap();
        w.write_event(Event::End("abc")).unwrap();
        assert_eq!(w.bytes_written(), "<abc></abc>".len() as u64);
    }

    #[test]
    fn raw_bypasses_escaping() {
        let mut w = Writer::new(Vec::new());
        w.write_raw("<result>").unwrap();
        let out = w.into_inner().unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "<result>");
    }

    #[test]
    fn node_roundtrip_through_writer() {
        let n = Node::parse_str("<a><b>x &amp; y</b></a>").unwrap();
        let mut w = Writer::new(Vec::new());
        w.write_node(&n).unwrap();
        let out = String::from_utf8(w.into_inner().unwrap()).unwrap();
        assert_eq!(Node::parse_str(&out).unwrap(), n);
    }

    #[test]
    fn null_sink_counts() {
        let mut w = Writer::new(NullSink::default());
        w.write_event(Event::Start("x")).unwrap();
        let sink = w.into_inner().unwrap();
        assert_eq!(sink.bytes, 3);
    }
}
