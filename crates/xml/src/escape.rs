//! Escaping and entity resolution for XML character data.
//!
//! Only the five predefined XML entities plus numeric character references
//! are supported, which is all the paper's data model (and XMark data)
//! requires.

use std::borrow::Cow;

/// Escape `<`, `>`, `&` in character data for serialization.
///
/// Returns a borrowed string when no escaping is needed (the common case on
/// XMark-style data), avoiding allocation on the output hot path.
pub fn escape_text(s: &str) -> Cow<'_, str> {
    if !s.bytes().any(|b| matches!(b, b'<' | b'>' | b'&')) {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
    Cow::Owned(out)
}

/// Escape character data for use inside a double-quoted attribute value.
pub fn escape_attr(s: &str) -> Cow<'_, str> {
    if !s.bytes().any(|b| matches!(b, b'<' | b'>' | b'&' | b'"')) {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    Cow::Owned(out)
}

/// Stream `s` through `emit` with text escaping applied, as a sequence of
/// maximal chunks: clean runs of the input are emitted as borrowed slices
/// and each `<`/`>`/`&` as its entity. A single scan and **zero
/// intermediate allocation** — the writer's output hot path; chunk counts
/// stay proportional to the number of escaped characters, not the text
/// length.
pub fn escape_text_chunks<E>(
    s: &str,
    mut emit: impl FnMut(&str) -> Result<(), E>,
) -> Result<(), E> {
    let bytes = s.as_bytes();
    let mut start = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        let ent = match b {
            b'<' => "&lt;",
            b'>' => "&gt;",
            b'&' => "&amp;",
            _ => continue,
        };
        if start < i {
            emit(&s[start..i])?;
        }
        emit(ent)?;
        start = i + 1;
    }
    if start < bytes.len() {
        emit(&s[start..])?;
    }
    Ok(())
}

/// Resolve the predefined entities and numeric character references in `s`.
///
/// Unknown entity names are an error (reported by name) so that malformed
/// input is caught rather than silently passed through.
pub fn unescape(s: &str) -> Result<Cow<'_, str>, String> {
    if !s.as_bytes().contains(&b'&') {
        return Ok(Cow::Borrowed(s));
    }
    let mut out = String::with_capacity(s.len());
    unescape_entities(s, &mut out)?;
    Ok(Cow::Owned(out))
}

/// [`unescape`] appending into a caller-provided buffer — the reader's text
/// path, which decodes every character-data run without an intermediate
/// allocation (entity-free runs are a single `push_str`).
pub fn unescape_into(s: &str, out: &mut String) -> Result<(), String> {
    if !s.as_bytes().contains(&b'&') {
        out.push_str(s);
        return Ok(());
    }
    unescape_entities(s, out)
}

/// The slow path: `s` is known to contain at least one `&`.
fn unescape_entities(s: &str, out: &mut String) -> Result<(), String> {
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let after = &rest[amp + 1..];
        let semi = after.find(';').ok_or_else(|| {
            format!("unterminated entity reference near `{}`", &rest[amp..rest.len().min(amp + 12)])
        })?;
        let name = &after[..semi];
        match name {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "apos" => out.push('\''),
            "quot" => out.push('"'),
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                let cp = u32::from_str_radix(&name[2..], 16)
                    .map_err(|_| format!("bad hex character reference `&{name};`"))?;
                out.push(
                    char::from_u32(cp)
                        .ok_or_else(|| format!("invalid code point in `&{name};`"))?,
                );
            }
            _ if name.starts_with('#') => {
                let cp: u32 = name[1..]
                    .parse()
                    .map_err(|_| format!("bad decimal character reference `&{name};`"))?;
                out.push(
                    char::from_u32(cp)
                        .ok_or_else(|| format!("invalid code point in `&{name};`"))?,
                );
            }
            _ => return Err(format!("unknown entity `&{name};`")),
        }
        rest = &after[semi + 1..];
    }
    out.push_str(rest);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_borrows_when_clean() {
        assert!(matches!(escape_text("hello world"), Cow::Borrowed(_)));
        assert!(matches!(escape_attr("hello"), Cow::Borrowed(_)));
    }

    #[test]
    fn escape_special_chars() {
        assert_eq!(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
        assert_eq!(escape_attr(r#"say "hi" & <go>"#), "say &quot;hi&quot; &amp; &lt;go&gt;");
    }

    #[test]
    fn unescape_predefined() {
        assert_eq!(
            unescape("&lt;a&gt; &amp; &apos;b&apos; &quot;c&quot;").unwrap(),
            "<a> & 'b' \"c\""
        );
    }

    #[test]
    fn unescape_numeric() {
        assert_eq!(unescape("&#65;&#x42;&#x63;").unwrap(), "ABc");
    }

    #[test]
    fn unescape_borrows_when_clean() {
        assert!(matches!(unescape("plain text").unwrap(), Cow::Borrowed(_)));
    }

    #[test]
    fn unescape_errors() {
        assert!(unescape("&nosuch;").is_err());
        assert!(unescape("&#xZZ;").is_err());
        assert!(unescape("& alone").is_err());
        assert!(unescape("&#1114112;").is_err()); // beyond char::MAX
    }

    #[test]
    fn chunked_escape_matches_escape_text() {
        let samples = ["", "plain", "a<b&c>d", "<<&>>", "x&", "&y", "多<é"];
        for s in samples {
            let mut chunks: Vec<String> = Vec::new();
            escape_text_chunks::<()>(s, |c| {
                chunks.push(c.to_string());
                Ok(())
            })
            .unwrap();
            assert_eq!(chunks.concat(), escape_text(s), "chunked escape of {s:?}");
            // Clean input must be exactly one borrowed chunk (or none).
            if !s.contains(['<', '>', '&']) {
                assert!(chunks.len() <= 1, "{s:?} produced {chunks:?}");
            }
        }
    }

    #[test]
    fn chunked_escape_propagates_errors() {
        let res = escape_text_chunks("a<b", |_| Err("stop"));
        assert_eq!(res, Err("stop"));
    }

    #[test]
    fn unescape_into_appends() {
        let mut buf = String::from("pre|");
        unescape_into("x &lt; y", &mut buf).unwrap();
        assert_eq!(buf, "pre|x < y");
        buf.clear();
        unescape_into("clean", &mut buf).unwrap();
        assert_eq!(buf, "clean");
        assert!(unescape_into("&bad;", &mut buf).is_err());
    }

    #[test]
    fn roundtrip() {
        let samples = ["", "x", "<>&'\"", "a&b<c>d\"e'f", "&amp;lt;"];
        for s in samples {
            assert_eq!(unescape(&escape_text(s)).unwrap(), s, "text roundtrip of {s:?}");
            assert_eq!(unescape(&escape_attr(s)).unwrap(), s, "attr roundtrip of {s:?}");
        }
    }
}
