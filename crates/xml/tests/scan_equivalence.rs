//! SIMD-vs-SWAR scanner equivalence: the structural index is an
//! implementation detail, never an observable one.
//!
//! Every test here parses the same documents once per classification
//! kernel the host can run (SWAR always; SSE2/AVX2 where the CPU has
//! them) and asserts the event streams are identical — including when a
//! structural byte lands at *every* offset inside a 64-byte window
//! (crossing both 32-byte block boundaries and the AVX2 lane split), and
//! when the input arrives chunked at every split point (the
//! `FeedSource` checkpoint/rollback contract the batch scanner must
//! respect).

use flux_xml::scan::{Scanner, ScannerChoice};
use flux_xml::{OwnedEvent, Polled, Reader, ReaderOptions, XmlError};
use proptest::prelude::*;

/// One forced choice per backend this host can actually run. Forcing a
/// kernel the CPU lacks degrades to the next-best one, so dedup on the
/// backend the scanner really selected.
fn backends() -> Vec<ScannerChoice> {
    let mut out: Vec<(ScannerChoice, flux_xml::Backend)> = Vec::new();
    for choice in [ScannerChoice::ForceSwar, ScannerChoice::ForceSse2, ScannerChoice::ForceAvx2] {
        let b = Scanner::with_choice(choice).backend();
        if out.iter().all(|&(_, seen)| seen != b) {
            out.push((choice, b));
        }
    }
    out.into_iter().map(|(c, _)| c).collect()
}

fn opts(choice: ScannerChoice) -> ReaderOptions {
    ReaderOptions { scanner: choice, ..ReaderOptions::default() }
}

/// One-shot event stream under a forced scanner choice.
fn events(choice: ScannerChoice, doc: &str) -> Result<Vec<OwnedEvent>, XmlError> {
    Reader::new(doc.as_bytes(), opts(choice)).read_to_end()
}

/// Incremental event stream, fed as `head`/`tail` split at `split`.
fn events_split(
    choice: ScannerChoice,
    doc: &str,
    split: usize,
) -> Result<Vec<OwnedEvent>, XmlError> {
    let chunks = [&doc.as_bytes()[..split], &doc.as_bytes()[split..]];
    let mut r = Reader::incremental(opts(choice));
    let mut out = Vec::new();
    let mut next = 0usize;
    loop {
        match r.poll_resolved()? {
            Polled::Event(ev) => out.push(ev.to_event().to_owned()),
            Polled::NeedMoreData => {
                if next < chunks.len() {
                    r.feed(chunks[next]);
                    next += 1;
                } else {
                    r.close();
                }
            }
            Polled::End => return Ok(out),
        }
    }
}

/// All backends agree with the SWAR oracle on `doc` (which must parse).
fn assert_equivalent(doc: &str) {
    let reference = events(ScannerChoice::ForceSwar, doc)
        .unwrap_or_else(|e| panic!("SWAR oracle rejects {doc:?}: {e}"));
    for choice in backends() {
        let got = events(choice, doc).unwrap_or_else(|e| panic!("{choice:?} rejects {doc:?}: {e}"));
        assert_eq!(got, reference, "{choice:?} diverges on {doc:?}");
    }
}

#[test]
fn structural_bytes_at_every_offset_in_a_simd_window() {
    // Slide each construct across 64 alignments: every position inside a
    // 32-byte classification block and across the block seam. The padding
    // sits *inside* the character data, so the interesting byte moves
    // while the document stays well-formed.
    for off in 0..64 {
        let pad = "a".repeat(off);

        // Entity-escaped structural characters in text.
        assert_equivalent(&format!("<r>{pad}&lt;&amp;&gt;z</r>"));
        // A raw `>` is legal text; make it land on every alignment.
        assert_equivalent(&format!("<r>{pad}x > y</r>"));
        // CDATA shields every structural byte, including `<`.
        assert_equivalent(&format!("<r>{pad}<![CDATA[<a b=\"c\">&'</x]]></r>"));
        // Comments may contain anything but `--`, notably `>` and `<`.
        assert_equivalent(&format!("<r>{pad}<!-- < > & \" ' ->x --></r>"));
        // Attribute values: both quote kinds, escaped `>`/`&`/`<` (the
        // reader treats a raw `>` as ending the tag, by design).
        assert_equivalent(&format!("<r><e a=\"{pad}p&gt;q&amp;'r&lt;\" b='{pad}x\"y'/></r>"));
        // A start tag whose name run itself crosses the seam.
        assert_equivalent(&format!("<r><{pad}tag attr=\"v\">t</{pad}tag></r>"));
    }
}

#[test]
fn chunk_splits_are_invisible_at_every_offset_on_every_backend() {
    // Constructs that stress rollback at a batch boundary: tags with
    // attributes, entities, comments with `>`, CDATA, multi-byte text.
    let doc = "<r a=\"1&gt;2\" b='&amp;'>pad<!-- x > y --><![CDATA[<&]]>é&lt;<e/>t</r>";
    for choice in backends() {
        let reference = events(choice, doc).expect("one-shot parses");
        for split in 0..=doc.len() {
            // A split may land mid-construct, even mid-UTF-8-sequence:
            // the incremental parse must still produce the same stream.
            let got = events_split(choice, doc, split)
                .unwrap_or_else(|e| panic!("{choice:?} split {split}: {e}"));
            assert_eq!(got, reference, "{choice:?} split at {split}");
        }
    }
}

#[test]
fn backends_agree_on_rejection() {
    // Error detection must not depend on the kernel either.
    for doc in ["<r>text", "<r></s>", "<r><e a=>x</e></r>", "text<r/>", "<r>&bogus;</r>"] {
        let reference = events(ScannerChoice::ForceSwar, doc);
        for choice in backends() {
            let got = events(choice, doc);
            assert_eq!(got, reference, "{choice:?} on {doc:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn random_documents_parse_identically_on_all_backends(
        text in "[a-z >'\"]{0,80}",
        attr in "[a-z ']{0,40}",
        split_seed in 0usize..4096,
    ) {
        let doc = format!(
            "<r a=\"{attr}\"><x>{}</x><![CDATA[{text}]]></r>",
            flux_xml::escape::escape_text(&text),
        );
        let reference = events(ScannerChoice::ForceSwar, &doc).expect("well-formed");
        for choice in backends() {
            prop_assert_eq!(&events(choice, &doc).expect("parses"), &reference);
            let split = split_seed % (doc.len() + 1);
            prop_assert_eq!(&events_split(choice, &doc, split).expect("parses"), &reference);
        }
    }
}
