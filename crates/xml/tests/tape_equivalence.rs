//! Tape-vs-pull equivalence at the tokenizer layer: the batched event
//! tape is a delivery mechanism, never an observable one.
//!
//! Every test drives the same incremental [`Reader`] twice — once pulling
//! events one at a time through [`Reader::poll_resolved`], once draining
//! [`Reader::fill_tape`] batches — and asserts the materialized event
//! streams are identical: per classification backend the host can run,
//! with the input chunk-split at *every* byte offset, across batch
//! boundaries forced by both the event-count and arena-byte caps, and in
//! the presence of parse errors (the taped prefix must be delivered
//! before the error surfaces, exactly as the pull loop would).

use flux_xml::scan::{Scanner, ScannerChoice};
use flux_xml::{EventTape, OwnedEvent, Polled, Reader, ReaderOptions, TapeFill, XmlError};

/// One forced choice per backend this host can actually run (forcing a
/// kernel the CPU lacks degrades, so dedup on the selected backend).
fn backends() -> Vec<ScannerChoice> {
    let mut out: Vec<(ScannerChoice, flux_xml::Backend)> = Vec::new();
    for choice in [ScannerChoice::ForceSwar, ScannerChoice::ForceSse2, ScannerChoice::ForceAvx2] {
        let b = Scanner::with_choice(choice).backend();
        if out.iter().all(|&(_, seen)| seen != b) {
            out.push((choice, b));
        }
    }
    out.into_iter().map(|(c, _)| c).collect()
}

fn opts(choice: ScannerChoice) -> ReaderOptions {
    ReaderOptions { scanner: choice, ..ReaderOptions::default() }
}

/// Events up to (not including) the first error, pulled one at a time,
/// with the document fed as two chunks split at `split`.
fn pull_split(
    choice: ScannerChoice,
    doc: &[u8],
    split: usize,
) -> (Vec<OwnedEvent>, Option<XmlError>) {
    let chunks = [&doc[..split], &doc[split..]];
    let mut r = Reader::incremental(opts(choice));
    let mut out = Vec::new();
    let mut next = 0usize;
    loop {
        match r.poll_resolved() {
            Ok(Polled::Event(ev)) => out.push(ev.to_event().to_owned()),
            Ok(Polled::NeedMoreData) => {
                if next < chunks.len() {
                    r.feed(chunks[next]);
                    next += 1;
                } else {
                    r.close();
                }
            }
            Ok(Polled::End) => return (out, None),
            Err(e) => return (out, Some(e)),
        }
    }
}

/// The same stream drained through the event tape. Also returns the
/// number of non-empty batches, so tests can assert a cap really forced
/// multiple fills.
fn tape_split(
    choice: ScannerChoice,
    doc: &[u8],
    split: usize,
) -> (Vec<OwnedEvent>, Option<XmlError>, u64) {
    let chunks = [&doc[..split], &doc[split..]];
    let mut r = Reader::incremental(opts(choice));
    let mut tape = EventTape::new();
    let mut out = Vec::new();
    let mut next = 0usize;
    let mut batches = 0u64;
    loop {
        let fill = r.fill_tape(&mut tape);
        // Drain before inspecting the fill result: events taped ahead of
        // an error are part of the stream, exactly as in the pull loop.
        if !tape.is_empty() {
            batches += 1;
            for i in 0..tape.len() {
                out.push(r.tape_event(&tape, i).to_event().to_owned());
            }
            tape.clear();
        }
        match fill {
            Ok(TapeFill::Full) => {}
            Ok(TapeFill::NeedMoreData) => {
                if next < chunks.len() {
                    r.feed(chunks[next]);
                    next += 1;
                } else {
                    r.close();
                }
            }
            Ok(TapeFill::End) => return (out, None, batches),
            Err(e) => return (out, Some(e), batches),
        }
    }
}

#[track_caller]
fn assert_tape_matches_pull(doc: &str) -> u64 {
    let mut max_batches = 0;
    for choice in backends() {
        for split in 0..=doc.len() {
            let (pull, pull_err) = pull_split(choice, doc.as_bytes(), split);
            let (tape, tape_err, batches) = tape_split(choice, doc.as_bytes(), split);
            assert_eq!(tape, pull, "{choice:?} split {split}: event streams diverge");
            assert_eq!(tape_err, pull_err, "{choice:?} split {split}: errors diverge");
            max_batches = max_batches.max(batches);
        }
    }
    max_batches
}

#[test]
fn tape_matches_pull_at_every_split_on_every_backend() {
    // The scan-equivalence stress document: attributes in both quote
    // kinds, entities, comments with `>`, CDATA, multi-byte text — every
    // construct a split can land inside.
    assert_tape_matches_pull(
        "<r a=\"1&gt;2\" b='&amp;'>pad<!-- x > y --><![CDATA[<&]]>é&lt;<e/>t</r>",
    );
}

#[test]
fn structural_bytes_at_every_simd_alignment_tape_identically() {
    // Slide entity-escaped text across a full 64-byte classification
    // window so tape batch anchoring sees a structural byte at every
    // alignment. Single split (whole doc) keeps this O(64) parses.
    for off in 0..64 {
        let pad = "a".repeat(off);
        let doc = format!("<r>{pad}&lt;&amp;&gt;z<e a=\"{pad}\"/></r>");
        for choice in backends() {
            let (pull, pull_err) = pull_split(choice, doc.as_bytes(), doc.len());
            let (tape, tape_err, _) = tape_split(choice, doc.as_bytes(), doc.len());
            assert_eq!((tape, tape_err), (pull, pull_err), "{choice:?} offset {off}");
        }
    }
}

#[test]
fn event_count_cap_forces_multiple_batches_invisibly() {
    // ~1800 events (> the 1024-event batch cap): the stream must cross a
    // batch seam mid-document and still match the pull run byte for byte.
    let mut doc = String::from("<r>");
    for i in 0..600 {
        doc.push_str(&format!("<e i=\"{i}\">t{i}</e>"));
    }
    doc.push_str("</r>");
    for choice in backends() {
        let (pull, pull_err) = pull_split(choice, doc.as_bytes(), doc.len() / 2);
        let (tape, tape_err, batches) = tape_split(choice, doc.as_bytes(), doc.len() / 2);
        assert_eq!((tape, tape_err), (pull, pull_err), "{choice:?}");
        assert!(batches > 1, "{choice:?}: expected the event cap to split batches ({batches})");
    }
}

#[test]
fn arena_byte_cap_forces_multiple_batches_invisibly() {
    // Few events but entity-heavy kilobyte texts: every text unescapes
    // into the tape arena, overflowing its byte cap long before the event
    // cap. Batches must end early and the stream must not change.
    // ~600 B of *unescaped* arena bytes per element (the arena holds the
    // decoded text, so `&amp;` counts as one byte); 80 elements ≈ 47 KiB,
    // past the 32 KiB cap.
    let chunk = "x&amp;y".repeat(200);
    let mut doc = String::from("<r>");
    for _ in 0..80 {
        doc.push_str(&format!("<e>{chunk}</e>"));
    }
    doc.push_str("</r>");
    for choice in backends() {
        let (pull, pull_err) = pull_split(choice, doc.as_bytes(), doc.len());
        let (tape, tape_err, batches) = tape_split(choice, doc.as_bytes(), doc.len());
        assert_eq!((tape, tape_err), (pull, pull_err), "{choice:?}");
        assert!(batches > 1, "{choice:?}: expected the arena cap to split batches ({batches})");
    }
}

#[test]
fn errors_surface_after_the_taped_prefix_at_every_split() {
    // Malformed documents: the tape must deliver exactly the events the
    // pull loop would have delivered before the error, then the *same*
    // error. Prefix divergence here would make tape-mode session aborts
    // observable.
    for doc in [
        "<r><a>text</a>",      // truncated document
        "<r><a>x</a></s>",     // mismatched end tag
        "<r><e a=>x</e></r>",  // malformed attribute
        "<r>&bogus;</r>",      // unknown entity
        "<r><a>ok</a>tail</r", // truncated end tag
    ] {
        assert_tape_matches_pull(doc);
    }
}
