//! Property tests: random trees survive serialize → parse → serialize, and
//! random text survives escaping.

use flux_xml::{Node, Reader};
use proptest::prelude::*;

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_.-]{0,8}".prop_map(|s| s)
}

fn arb_text() -> impl Strategy<Value = String> {
    // Includes XML-special characters and non-ASCII; excludes pure
    // whitespace (dropped by the reader, by design) and the CR character
    // (line-ending normalization is out of scope).
    "[ -~äöü€<>&'\"]{1,20}"
        .prop_filter("not whitespace-only", |s| !s.trim().is_empty())
        .prop_map(|s| s.replace('\r', "."))
}

fn arb_tree() -> impl Strategy<Value = Node> {
    let leaf = (arb_name(), proptest::option::of(arb_text())).prop_map(|(name, text)| {
        let mut n = Node::new(name);
        if let Some(t) = text {
            n.push_text(t);
        }
        n
    });
    leaf.prop_recursive(4, 32, 4, |inner| {
        (arb_name(), proptest::collection::vec(inner, 0..4)).prop_map(|(name, children)| {
            let mut n = Node::new(name);
            for c in children {
                n.children.push(flux_xml::Child::Elem(c));
            }
            n
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn serialize_parse_roundtrip(tree in arb_tree()) {
        let xml = tree.to_xml();
        let back = Node::parse_str(&xml).unwrap();
        prop_assert_eq!(&back, &tree, "xml: {}", xml);
        prop_assert_eq!(back.to_xml(), xml);
    }

    #[test]
    fn event_stream_matches_tree_walk(tree in arb_tree()) {
        // Parsing the serialized form yields exactly the tree's own event
        // walk.
        let xml = tree.to_xml();
        let mut reader = Reader::from_str(&xml);
        let parsed = reader.read_to_end().unwrap();
        let direct = tree.to_events();
        prop_assert_eq!(parsed, direct);
    }

    #[test]
    fn escaping_roundtrip(text in arb_text()) {
        let escaped = flux_xml::escape::escape_text(&text);
        let back = flux_xml::escape::unescape(&escaped).unwrap();
        prop_assert_eq!(back.as_ref(), text.as_str());
    }

    #[test]
    fn parser_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Any byte soup either parses or errors — never panics.
        let mut r = Reader::new(&bytes[..], flux_xml::ReaderOptions::default());
        let _ = r.read_to_end();
    }

    #[test]
    fn parser_never_panics_on_tag_soup(s in "[<>a-z/ =\"']{0,64}") {
        let mut r = Reader::from_str(&s);
        let _ = r.read_to_end();
    }
}
