//! Lock-free metric instruments and the per-shard registry they live in.
//!
//! Recording is relaxed-atomic only: a [`Counter`] increment is one
//! `fetch_add`, a [`Histogram`] record is two adds and a `fetch_max` on a
//! fixed array — no locks, no allocation, no branches beyond the bucket
//! index. Registration (name → instrument) does take a shard-local mutex,
//! but happens once per worker at startup; the hot path holds `Arc`s to the
//! instruments directly. Scraping walks every shard and merges instruments
//! with the same full name (label set included) by summation, so per-shard
//! recording aggregates into fleet totals without the writers ever
//! contending.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// A monotonically increasing count (relaxed atomic `u64`).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous value that can move both ways (relaxed atomic `i64`).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtract one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Add `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite with `n`.
    #[inline]
    pub fn set(&self, n: i64) {
        self.0.store(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of buckets in every [`Histogram`] (fixed so snapshots are plain
/// arrays and cross-shard merges are index-wise adds).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// An HDR-style log-linear histogram: 64 fixed buckets, two sub-buckets per
/// power-of-two octave, covering `0 ..= u32::MAX` with ±25% relative error;
/// larger values saturate into the last bucket. Recording is lock-free
/// (three relaxed atomic RMWs) and allocation-free.
///
/// The bucket layout is part of the scrape format and pinned by golden
/// tests: value `v < 2` lands in bucket `v`; otherwise with `m` the index
/// of `v`'s highest set bit, the bucket is `2m + ((v >> (m-1)) & 1)`,
/// i.e. lower bounds run 0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, …
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// The bucket a value lands in. Exposed (with
/// [`bucket_lower_bound`]) so tests can pin the layout and renderers can
/// label `le` bounds without duplicating the math.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v < 2 {
        return v as usize;
    }
    let m = 63 - v.leading_zeros() as usize;
    let sub = ((v >> (m - 1)) & 1) as usize;
    (2 * m + sub).min(HISTOGRAM_BUCKETS - 1)
}

/// Smallest value that lands in bucket `i` (inverse of [`bucket_index`]).
pub(crate) fn bucket_lower_bound(i: usize) -> u64 {
    if i < 2 {
        return i as u64;
    }
    let (m, sub) = (i / 2, (i % 2) as u64);
    (2 + sub) << (m - 1)
}

impl Histogram {
    /// Record one observation. Lock- and allocation-free.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy (buckets read relaxed, individually — scrapes
    /// racing recorders may be off by in-flight observations, never torn).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (i, b) in self.buckets.iter().enumerate() {
            buckets[i] = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`], mergeable across shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (layout: see [`Histogram`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl HistogramSnapshot {
    /// Index-wise merge of another shard's view of the same instrument.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Lower bound of the bucket holding the `q`-quantile observation
    /// (`0.0 ..= 1.0`), 0 when empty. Bucket-resolution approximation.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_lower_bound(i);
            }
        }
        bucket_lower_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Smallest value that lands in bucket `i` — the `le` labels of the
    /// text exposition are `lower_bound(i + 1) - 1`.
    pub fn lower_bound(i: usize) -> u64 {
        bucket_lower_bound(i)
    }
}

/// One worker's slice of the registry: a name → instrument map per
/// instrument kind. Registration locks the shard; recording through the
/// returned `Arc`s never does. Full metric names carry their label set
/// inline (`flux_runtime_live_sessions{shard="0"}`), so two shards
/// registering the same full name produce one summed series on scrape.
#[derive(Debug, Default)]
pub struct MetricsShard {
    counters: Mutex<Vec<(String, Arc<Counter>)>>,
    gauges: Mutex<Vec<(String, Arc<Gauge>)>>,
    histograms: Mutex<Vec<(String, Arc<Histogram>)>>,
}

fn intern<T: Default>(reg: &Mutex<Vec<(String, Arc<T>)>>, name: &str) -> Arc<T> {
    let mut reg = reg.lock().expect("metrics shard registry");
    if let Some((_, v)) = reg.iter().find(|(n, _)| n == name) {
        return Arc::clone(v);
    }
    let v = Arc::new(T::default());
    reg.push((name.to_string(), Arc::clone(&v)));
    v
}

impl MetricsShard {
    /// The counter registered under `name` in this shard (created on first
    /// use). Hold the `Arc`; don't re-look-up per record.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        intern(&self.counters, name)
    }

    /// The gauge registered under `name` in this shard.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        intern(&self.gauges, name)
    }

    /// The histogram registered under `name` in this shard.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        intern(&self.histograms, name)
    }
}

/// A fleet of per-worker [`MetricsShard`]s aggregated on scrape. Cheap to
/// clone (an `Arc` bump); every layer of the stack holds the same registry
/// and records into its own shard.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RwLock<Vec<Arc<MetricsShard>>>>,
}

impl MetricsRegistry {
    /// An empty registry; shards materialize on first use.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Shard `idx`, growing the registry as needed. Workers call this once
    /// at startup and keep the `Arc`.
    pub fn shard(&self, idx: usize) -> Arc<MetricsShard> {
        {
            let shards = self.inner.read().expect("metrics registry");
            if let Some(s) = shards.get(idx) {
                return Arc::clone(s);
            }
        }
        let mut shards = self.inner.write().expect("metrics registry");
        while shards.len() <= idx {
            shards.push(Arc::new(MetricsShard::default()));
        }
        Arc::clone(&shards[idx])
    }

    /// Aggregate every shard into one point-in-time snapshot: same-name
    /// series sum (counters, gauges, histogram buckets); names sort.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let shards: Vec<Arc<MetricsShard>> =
            self.inner.read().expect("metrics registry").iter().map(Arc::clone).collect();
        let mut snap = MetricsSnapshot::default();
        for shard in &shards {
            for (name, c) in shard.counters.lock().expect("metrics shard registry").iter() {
                *snap.counters.entry(name.clone()).or_insert(0) += c.get();
            }
            for (name, g) in shard.gauges.lock().expect("metrics shard registry").iter() {
                *snap.gauges.entry(name.clone()).or_insert(0) += g.get();
            }
            for (name, h) in shard.histograms.lock().expect("metrics shard registry").iter() {
                snap.histograms.entry(name.clone()).or_default().merge(&h.snapshot());
            }
        }
        snap
    }

    /// The snapshot rendered in Prometheus text exposition format.
    pub fn render_text(&self) -> String {
        crate::render_text(&self.snapshot())
    }
}

/// An aggregated point-in-time view of a [`MetricsRegistry`]: every series
/// by full name (labels inline), cross-shard merged.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter series, summed across shards.
    pub counters: BTreeMap<String, u64>,
    /// Gauge series, summed across shards (per-shard gauges carry a
    /// `shard` label, so distinct shards stay distinct series).
    pub gauges: BTreeMap<String, i64>,
    /// Histogram series, bucket-wise merged across shards.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of counter series `name`, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Value of gauge series `name`, 0 when absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram series `name`, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_boundaries_golden() {
        // The log-linear layout is a wire-visible contract (text `le`
        // labels); pin it value by value.
        let golden: &[(u64, usize)] = &[
            (0, 0),
            (1, 1),
            (2, 2),
            (3, 3),
            (4, 4),
            (5, 4),
            (6, 5),
            (7, 5),
            (8, 6),
            (11, 6),
            (12, 7),
            (15, 7),
            (16, 8),
            (24, 9),
            (32, 10),
            (48, 11),
            (64, 12),
            (1_000, 19),
            (1_024, 20),
            (1_048_576, 40),
            (u32::MAX as u64, 63),
            (1 << 32, 63),
            (u64::MAX, 63),
        ];
        for &(v, idx) in golden {
            assert_eq!(bucket_index(v), idx, "bucket_index({v})");
        }
        let bounds: &[(usize, u64)] = &[
            (0, 0),
            (1, 1),
            (2, 2),
            (3, 3),
            (4, 4),
            (5, 6),
            (6, 8),
            (7, 12),
            (8, 16),
            (63, 3 << 30),
        ];
        for &(i, lo) in bounds {
            assert_eq!(bucket_lower_bound(i), lo, "bucket_lower_bound({i})");
        }
        // Lower bounds invert the index on every bucket edge.
        for i in 0..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_index(bucket_lower_bound(i)), i, "round-trip bucket {i}");
        }
    }

    #[test]
    fn histogram_records_count_sum_max_and_quantiles() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1106);
        assert_eq!(s.max, 1000);
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.quantile(1.0), bucket_lower_bound(bucket_index(1000)));
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn concurrent_increments_across_shards_sum_exactly() {
        let reg = MetricsRegistry::new();
        const THREADS: usize = 8;
        const PER: u64 = 10_000;
        let handles: Vec<_> = (0..THREADS)
            .map(|i| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    let shard = reg.shard(i);
                    let c = shard.counter("obs_test_total");
                    let g = shard.gauge("obs_test_gauge");
                    let h = shard.histogram("obs_test_us");
                    for k in 0..PER {
                        c.inc();
                        g.inc();
                        h.record(k % 97);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("obs_test_total"), THREADS as u64 * PER);
        assert_eq!(snap.gauge("obs_test_gauge"), (THREADS as u64 * PER) as i64);
        let h = snap.histogram("obs_test_us").expect("histogram present");
        assert_eq!(h.count, THREADS as u64 * PER);
        assert_eq!(h.buckets.iter().sum::<u64>(), h.count, "every observation in a bucket");
    }

    #[test]
    fn same_name_in_one_shard_is_one_instrument() {
        let reg = MetricsRegistry::new();
        let shard = reg.shard(0);
        let a = shard.counter("x_total");
        let b = shard.counter("x_total");
        assert!(Arc::ptr_eq(&a, &b));
        a.add(3);
        b.add(4);
        assert_eq!(reg.snapshot().counter("x_total"), 7);
    }

    #[test]
    fn labeled_gauges_stay_distinct_series() {
        let reg = MetricsRegistry::new();
        reg.shard(0).gauge("live{shard=\"0\"}").set(2);
        reg.shard(1).gauge("live{shard=\"1\"}").set(5);
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("live{shard=\"0\"}"), 2);
        assert_eq!(snap.gauge("live{shard=\"1\"}"), 5);
    }
}
