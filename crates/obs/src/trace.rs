//! The tracing seam: structured lifecycle events to a pluggable sink.
//!
//! Callers hold an `Option<Arc<dyn Tracer>>` and inline the `None` check —
//! disabled tracing is one branch, and [`TraceEvent`] is `Copy` with no
//! owned data, so emitting never allocates (the root crate's
//! counting-allocator test pins this). The default subscriber is
//! [`TraceBuffer`], a bounded preallocated ring for post-mortem dumps;
//! anything else (a logger, a wire exporter) plugs in behind the same
//! trait.

use std::sync::{Arc, Mutex};

/// Why a session stalled: the canonical cause shared by runtime events,
/// trace events, and the wire `STALLED` reason byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallCause {
    /// The session's admission gate refused the next chunk: the shared
    /// budget is under its reserve and the session holds no charges that
    /// draining would release.
    Budget,
    /// A parked session's re-admission reservation was denied — headroom
    /// returned but not enough to cover the session's buffered bytes.
    AdmissionReserve,
}

/// One structured lifecycle event. All fields are plain integers — no owned
/// data, so events are `Copy` and emission is allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A session was opened on shard `shard`.
    SessionOpen { shard: u32 },
    /// A session finished; `ok` is false when the run ended in an error.
    SessionFinish { shard: u32, ok: bool },
    /// A session was aborted.
    SessionAbort { shard: u32 },
    /// A session stalled (backpressure), with the cause.
    Stall { shard: u32, cause: StallCause },
    /// A stalled session resumed.
    Resume { shard: u32 },
    /// A session was snapshotted in place (`bytes` of serialized state).
    Snapshot { shard: u32, bytes: u64 },
    /// A session was suspended to disk, freeing `bytes` of buffered state.
    Suspend { shard: u32, bytes: u64 },
    /// A session was adopted by shard `shard` (migration / restore).
    Migrate { shard: u32 },
    /// A client connection was accepted.
    ConnOpen,
    /// A client connection was torn down.
    ConnClose,
}

/// A sink for [`TraceEvent`]s. Implementations must be cheap and
/// non-blocking-ish: `emit` runs on worker hot paths.
pub trait Tracer: Send + Sync {
    /// Deliver one event. Must not allocate on the steady path.
    fn emit(&self, ev: TraceEvent);
}

/// A tracer that drops everything (the explicit form of "disabled").
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    #[inline]
    fn emit(&self, _ev: TraceEvent) {}
}

struct Ring {
    buf: Vec<(u64, TraceEvent)>,
    next: usize,
    seq: u64,
}

/// A bounded in-memory ring of the last `capacity` events, each stamped
/// with a monotone sequence number. The ring is preallocated at
/// construction; emitting into it never allocates (older events are
/// overwritten in place once full).
pub struct TraceBuffer {
    cap: usize,
    inner: Mutex<Ring>,
}

impl TraceBuffer {
    /// A ring holding the most recent `capacity` events (min 1).
    pub fn with_capacity(capacity: usize) -> Arc<TraceBuffer> {
        let cap = capacity.max(1);
        Arc::new(TraceBuffer {
            cap,
            inner: Mutex::new(Ring { buf: Vec::with_capacity(cap), next: 0, seq: 0 }),
        })
    }

    /// Total events ever emitted (including ones the ring has dropped).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().expect("trace ring").seq
    }

    /// The retained events, oldest first, each with its sequence number.
    pub fn dump(&self) -> Vec<(u64, TraceEvent)> {
        let ring = self.inner.lock().expect("trace ring");
        let mut out = Vec::with_capacity(ring.buf.len());
        if ring.buf.len() < self.cap {
            out.extend_from_slice(&ring.buf);
        } else {
            out.extend_from_slice(&ring.buf[ring.next..]);
            out.extend_from_slice(&ring.buf[..ring.next]);
        }
        out
    }
}

impl Tracer for TraceBuffer {
    fn emit(&self, ev: TraceEvent) {
        let mut ring = self.inner.lock().expect("trace ring");
        let seq = ring.seq;
        ring.seq += 1;
        if ring.buf.len() < self.cap {
            ring.buf.push((seq, ev));
        } else {
            let at = ring.next;
            ring.buf[at] = (seq, ev);
        }
        ring.next = (ring.next + 1) % self.cap;
    }
}

impl std::fmt::Debug for TraceBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceBuffer")
            .field("cap", &self.cap)
            .field("recorded", &self.recorded())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_retains_the_newest_events_in_order() {
        let buf = TraceBuffer::with_capacity(3);
        for shard in 0..5u32 {
            buf.emit(TraceEvent::SessionOpen { shard });
        }
        assert_eq!(buf.recorded(), 5);
        let dump = buf.dump();
        assert_eq!(
            dump,
            vec![
                (2, TraceEvent::SessionOpen { shard: 2 }),
                (3, TraceEvent::SessionOpen { shard: 3 }),
                (4, TraceEvent::SessionOpen { shard: 4 }),
            ]
        );
    }

    #[test]
    fn partial_ring_dumps_everything() {
        let buf = TraceBuffer::with_capacity(8);
        buf.emit(TraceEvent::ConnOpen);
        buf.emit(TraceEvent::Stall { shard: 1, cause: StallCause::Budget });
        assert_eq!(
            buf.dump(),
            vec![
                (0, TraceEvent::ConnOpen),
                (1, TraceEvent::Stall { shard: 1, cause: StallCause::Budget }),
            ]
        );
    }
}
