//! Unified observability for the FluX stack: always-on metrics and a
//! pluggable tracing seam, cheap enough for the per-event hot path.
//!
//! The paper's evaluation argues buffer and throughput behavior must be
//! *measurable per workload* to be tunable; this crate is where the rest of
//! the stack reports it. Three pieces:
//!
//! - **Metrics core** ([`Counter`], [`Gauge`], [`Histogram`]): relaxed
//!   atomics, no locks on the record path. Instruments live in per-shard
//!   [`MetricsShard`]s of one [`MetricsRegistry`] — each worker thread owns
//!   its shard, so the hot path touches only cache lines it already owns;
//!   cross-shard aggregation happens on *scrape*, not on record.
//! - **Tracing seam** ([`Tracer`], [`TraceEvent`]): structured lifecycle
//!   events (session open/finish, stall/resume with cause, suspend/migrate,
//!   conn open/close) behind an `Option<Arc<dyn Tracer>>` the callers inline
//!   — `None` costs one branch and zero allocations (pinned by the
//!   counting-allocator test in the root crate). The default subscriber is
//!   a bounded in-memory ring, [`TraceBuffer`], for post-mortem dumps.
//! - **Exposition** ([`render_text`]): the registry snapshot in Prometheus
//!   text format, served both over the wire (`STATS` frame) and by the
//!   optional admin HTTP listener in `flux-serve`.
//!
//! The crate is std-only and dependency-free; nothing here knows about XML,
//! queries, or sockets.

mod metrics;
mod text;
mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsShard, MetricsSnapshot,
};
pub use text::{render_text, series_value};
pub use trace::{NoopTracer, StallCause, TraceBuffer, TraceEvent, Tracer};

/// Was the crate built with the `trace` feature? Consumers use this to
/// decide whether to attach a default [`TraceBuffer`] when no explicit
/// tracer is configured.
pub const fn trace_feature_enabled() -> bool {
    cfg!(feature = "trace")
}
