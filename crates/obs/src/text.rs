//! Prometheus text exposition (format 0.0.4) for a [`MetricsSnapshot`] —
//! the one renderer behind both the `STATS` wire frame and the admin HTTP
//! listener in `flux-serve`.
//!
//! Full metric names may carry a label set inline
//! (`flux_runtime_live_sessions{shard="0"}`); the renderer splits it back
//! apart so histogram `le` labels merge with the series' own labels.

use crate::metrics::{bucket_lower_bound, HistogramSnapshot, MetricsSnapshot, HISTOGRAM_BUCKETS};

/// Split `name{labels}` into (`name`, `Some("labels")`), or (`name`, `None`).
fn split_labels(full: &str) -> (&str, Option<&str>) {
    match full.split_once('{') {
        Some((base, rest)) => (base, Some(rest.trim_end_matches('}'))),
        None => (full, None),
    }
}

fn series(base: &str, suffix: &str, labels: Option<&str>, extra: Option<&str>) -> String {
    let mut s = String::with_capacity(base.len() + suffix.len() + 24);
    s.push_str(base);
    s.push_str(suffix);
    match (labels, extra) {
        (None, None) => {}
        (l, e) => {
            s.push('{');
            if let Some(l) = l {
                s.push_str(l);
            }
            if let Some(e) = e {
                if labels.is_some() {
                    s.push(',');
                }
                s.push_str(e);
            }
            s.push('}');
        }
    }
    s
}

fn type_line(out: &mut String, seen: &mut Vec<String>, family: &str, kind: &str) {
    if seen.iter().any(|f| f == family) {
        return;
    }
    seen.push(family.to_string());
    out.push_str("# TYPE ");
    out.push_str(family);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

fn render_histogram(out: &mut String, full: &str, h: &HistogramSnapshot) {
    let (base, labels) = split_labels(full);
    let last_nonzero = h.buckets.iter().rposition(|&b| b != 0).unwrap_or(0);
    let mut cum = 0u64;
    for (i, &b) in h.buckets.iter().enumerate().take(last_nonzero + 1) {
        cum += b;
        if i == HISTOGRAM_BUCKETS - 1 {
            break; // the saturation bucket is the +Inf line below
        }
        let le = format!("le=\"{}\"", bucket_lower_bound(i + 1) - 1);
        out.push_str(&series(base, "_bucket", labels, Some(&le)));
        out.push(' ');
        out.push_str(&cum.to_string());
        out.push('\n');
    }
    out.push_str(&series(base, "_bucket", labels, Some("le=\"+Inf\"")));
    out.push(' ');
    out.push_str(&h.count.to_string());
    out.push('\n');
    out.push_str(&series(base, "_sum", labels, None));
    out.push(' ');
    out.push_str(&h.sum.to_string());
    out.push('\n');
    out.push_str(&series(base, "_count", labels, None));
    out.push(' ');
    out.push_str(&h.count.to_string());
    out.push('\n');
}

/// Render an aggregated snapshot in Prometheus text exposition format:
/// one `# TYPE` line per family, then every series sorted by full name.
pub fn render_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut seen = Vec::new();
    for (full, v) in &snap.counters {
        type_line(&mut out, &mut seen, split_labels(full).0, "counter");
        out.push_str(full);
        out.push(' ');
        out.push_str(&v.to_string());
        out.push('\n');
    }
    for (full, v) in &snap.gauges {
        type_line(&mut out, &mut seen, split_labels(full).0, "gauge");
        out.push_str(full);
        out.push(' ');
        out.push_str(&v.to_string());
        out.push('\n');
    }
    for (full, h) in &snap.histograms {
        type_line(&mut out, &mut seen, split_labels(full).0, "histogram");
        render_histogram(&mut out, full, h);
    }
    out
}

/// The value of series `series` (full name, labels included) in a rendered
/// exposition — the parse helper tests and smoke scripts use instead of
/// reverse-engineering the format.
pub fn series_value(text: &str, series: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        let rest = line.strip_prefix(series)?;
        let rest = rest.strip_prefix(' ')?;
        rest.trim().parse::<f64>().ok()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn renders_counters_gauges_and_histograms() {
        let reg = MetricsRegistry::new();
        let s = reg.shard(0);
        s.counter("flux_frames_total{kind=\"chunk\"}").add(7);
        s.gauge("flux_live{shard=\"0\"}").set(3);
        let h = s.histogram("flux_run_us");
        h.record(5);
        h.record(100);
        let text = reg.render_text();

        assert!(text.contains("# TYPE flux_frames_total counter\n"), "{text}");
        assert!(text.contains("flux_frames_total{kind=\"chunk\"} 7\n"), "{text}");
        assert!(text.contains("# TYPE flux_live gauge\n"), "{text}");
        assert!(text.contains("flux_live{shard=\"0\"} 3\n"), "{text}");
        assert!(text.contains("# TYPE flux_run_us histogram\n"), "{text}");
        // v=5 lands in bucket 4 (4..=5): the first le label covering it is 5.
        assert!(text.contains("flux_run_us_bucket{le=\"5\"} 1\n"), "{text}");
        assert!(text.contains("flux_run_us_bucket{le=\"+Inf\"} 2\n"), "{text}");
        assert!(text.contains("flux_run_us_sum 105\n"), "{text}");
        assert!(text.contains("flux_run_us_count 2\n"), "{text}");

        assert_eq!(series_value(&text, "flux_frames_total{kind=\"chunk\"}"), Some(7.0));
        assert_eq!(series_value(&text, "flux_live{shard=\"0\"}"), Some(3.0));
        assert_eq!(series_value(&text, "flux_run_us_count"), Some(2.0));
        assert_eq!(series_value(&text, "flux_run_us_countx"), None);
        assert_eq!(series_value(&text, "absent_series"), None);
    }

    #[test]
    fn histogram_labels_merge_with_le() {
        let reg = MetricsRegistry::new();
        reg.shard(0).histogram("run_us{query=\"q1\"}").record(0);
        let text = reg.render_text();
        assert!(text.contains("# TYPE run_us histogram\n"), "{text}");
        assert!(text.contains("run_us_bucket{query=\"q1\",le=\"0\"} 1\n"), "{text}");
        assert!(text.contains("run_us_bucket{query=\"q1\",le=\"+Inf\"} 1\n"), "{text}");
        assert!(text.contains("run_us_sum{query=\"q1\"} 0\n"), "{text}");
        assert!(text.contains("run_us_count{query=\"q1\"} 1\n"), "{text}");
    }

    #[test]
    fn type_lines_emitted_once_per_family() {
        let reg = MetricsRegistry::new();
        reg.shard(0).counter("f_total{k=\"a\"}").inc();
        reg.shard(1).counter("f_total{k=\"b\"}").inc();
        let text = reg.render_text();
        assert_eq!(text.matches("# TYPE f_total counter").count(), 1, "{text}");
    }
}
