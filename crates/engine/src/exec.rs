//! The streaming event loop (paper, Section 5).
//!
//! Children of the current scope are processed at node granularity. For each
//! child the engine (a) lets the active recorders and condition flags
//! observe its events, then (b) fires the step's handlers in ζ order:
//!
//! * when exactly one `on` handler fires, it is first in ζ among the firing
//!   handlers, nothing records the child, and its body is streamable, the
//!   child's events flow straight from the parser to the sub-scope or the
//!   output — the zero-buffer path;
//! * otherwise the child is consumed first (captured to a scratch event list
//!   only if some `on` handler needs to replay it), and the handlers then
//!   fire in ζ order — `on-first` expressions over the now-complete buffers,
//!   `on` handlers over the replayed events. Data replayed from a buffer is
//!   indistinguishable from stream input (Section 5).
//!
//! Punctuation is exactly Appendix B: one validating DFA transition per
//! child plus one `PastTable` lookup per `on-first` handler.

use std::io::BufRead;
use std::sync::Arc;

use flux_core::FluxExpr;
use flux_dtd::{Dtd, Glushkov};
use flux_query::eval::{eval_cond_with, eval_expr, eval_expr_with, wrap_document, Env};
use flux_query::{Atom, Cond, Expr, ROOT_VAR};
use flux_xml::{Event, EventBuf, NameId, Node, Reader, ResolvedEvent, Sink, Writer};

use crate::buffer::Recorder;
use crate::compile::{
    atom_is_join, atom_root_var, CBody, CHandler, CompiledQuery, EngineError, ScopeSpec,
    SimpleItem, SimplePlan, Top,
};
use crate::flags::{FlagMatcher, FlagSpec};
use crate::stats::RunStats;

/// Result of a streaming run that collected its output in memory.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The serialized query result.
    pub output: String,
    /// Run statistics (peak buffer memory, event counts, …).
    pub stats: RunStats,
}

/// Compile and run a FluX query over an XML input stream, collecting the
/// output in memory.
#[deprecated(
    since = "0.2.0",
    note = "prepare once with `flux::Engine::prepare` (or `CompiledQuery::compile`) and run many times"
)]
pub fn run_streaming(
    q: &FluxExpr,
    dtd: &Dtd,
    input: impl BufRead,
) -> Result<RunOutcome, EngineError> {
    let compiled = CompiledQuery::compile(q, dtd)?;
    let mut out = Vec::new();
    let stats = compiled.run(input, &mut out)?;
    Ok(RunOutcome { output: String::from_utf8(out).expect("writer emits UTF-8"), stats })
}

/// Compile and run, writing the result to an arbitrary sink.
#[deprecated(
    since = "0.2.0",
    note = "prepare once with `flux::Engine::prepare` (or `CompiledQuery::compile`) and run many times"
)]
pub fn run_streaming_to<S: Sink>(
    q: &FluxExpr,
    dtd: &Dtd,
    input: impl BufRead,
    out: S,
) -> Result<RunStats, EngineError> {
    CompiledQuery::compile(q, dtd)?.run(input, out)
}

impl CompiledQuery {
    /// Run the compiled plan over an input stream.
    pub fn run<R: BufRead, S: Sink>(&self, input: R, out: S) -> Result<RunStats, EngineError> {
        self.run_sink(input, out).0
    }

    /// Run the compiled plan, handing the sink back afterwards — on success
    /// *and* on failure (a session must recover its capture buffer either
    /// way). On success the sink is flushed (a flush failure is the run's
    /// error); on failure it is returned unflushed so the original failure
    /// is never masked by a flush error.
    pub fn run_sink<R: BufRead, S: Sink>(
        &self,
        input: R,
        out: S,
    ) -> (Result<RunStats, EngineError>, S) {
        // The reader resolves each tag name once against the plan's symbol
        // table; everything downstream dispatches on NameIds.
        let mut reader = Reader::with_symbols(input, self.opts.reader, Arc::clone(&self.symbols));
        let (res, mut sink) = match &self.top {
            Top::Simple(e) => {
                let mut w = Writer::new(out);
                let res = self.run_simple(e, &mut reader, &mut w);
                (res, w.into_sink())
            }
            Top::Scope { pre, idx, post } => {
                let mut exec = Exec {
                    plan: self,
                    reader,
                    writer: Writer::new(out),
                    observers: Vec::new(),
                    env_stack: Vec::new(),
                    stats: RunStats::default(),
                    cur_bytes: 0,
                    limit: self.opts.max_buffer_bytes,
                    cur_id: NameId::UNKNOWN,
                    cur_name: String::new(),
                    cur_text: String::new(),
                    cur_text_ws: true,
                    scope_scratch: Vec::new(),
                    flag_pool: Vec::new(),
                };
                let res = exec.drive(pre.as_deref(), *idx, post.as_deref());
                (res, exec.writer.into_sink())
            }
        };
        if res.is_ok() {
            if let Err(e) = sink.flush_sink() {
                return (Err(io_err(e)), sink);
            }
        }
        (res, sink)
    }

    /// The degenerate no-`process-stream` path: materialize and evaluate.
    /// The buffer limit is enforced *while* materializing, so an oversized
    /// input aborts before it is ever held in memory.
    fn run_simple<R: BufRead, S: Sink>(
        &self,
        e: &Expr,
        reader: &mut Reader<R>,
        w: &mut Writer<S>,
    ) -> Result<RunStats, EngineError> {
        let (root, bytes) = parse_limited(reader, self.opts.max_buffer_bytes)?;
        let doc = wrap_document(root);
        debug_assert_eq!(bytes, doc.buffered_bytes());
        let mut stats =
            RunStats { peak_buffer_bytes: bytes, buffers_created: 1, ..RunStats::default() };
        let mut env = Env::with(ROOT_VAR, &doc);
        eval_expr(e, &mut env, w)?;
        stats.output_bytes = w.bytes_written();
        Ok(stats)
    }
}

/// `Node::parse` with incremental buffer accounting: charges each event's
/// payload (tag names twice, text once — `Node::buffered_bytes`'s metric)
/// against `limit` as it arrives. Returns the root and the total bytes,
/// including the `#document` wrapper node the caller adds — the same value
/// `wrap_document(root).buffered_bytes()` reports.
fn parse_limited<R: BufRead>(
    reader: &mut Reader<R>,
    limit: Option<usize>,
) -> Result<(Node, usize), EngineError> {
    let mut stack: Vec<Node> = Vec::new();
    let mut root: Option<Node> = None;
    // The synthetic document node is buffered too (as in the seed's
    // accounting, which measured the wrapped tree).
    let mut bytes = 2 * flux_core::DOC_ELEM.len();
    let charge = |grew: usize, bytes: &mut usize| -> Result<(), EngineError> {
        *bytes += grew;
        match limit {
            Some(l) if *bytes > l => Err(EngineError::BufferLimit { used: *bytes, limit: l }),
            _ => Ok(()),
        }
    };
    while let Some(ev) = reader.next_event()? {
        match ev {
            Event::Start(n) => {
                stack.push(Node::new(n));
                charge(2 * n.len(), &mut bytes)?;
            }
            Event::Text(t) => {
                if let Some(top) = stack.last_mut() {
                    top.push_text(t);
                    charge(t.len(), &mut bytes)?;
                }
            }
            Event::End(_) => {
                let done = stack.pop().expect("reader guarantees matched tags");
                match stack.last_mut() {
                    Some(top) => top.children.push(flux_xml::Child::Elem(done)),
                    None => root = Some(done),
                }
            }
        }
    }
    let root = root.ok_or(EngineError::Validation {
        element: "#document".into(),
        message: "empty input".into(),
    })?;
    Ok((root, bytes))
}

fn io_err(e: std::io::Error) -> EngineError {
    EngineError::Eval(flux_query::eval::EvalError::Io(e.to_string()))
}

/// Per-scope-instance observation state (recording + flags).
struct Observer<'p> {
    rec: Option<Recorder<'p>>,
    specs: &'p [FlagSpec],
    flags: Vec<FlagMatcher>,
}

/// Where events come from.
enum Src<'s> {
    /// The live input stream.
    Stream,
    /// Replaying a captured child; `obs_base` is the observer-stack depth at
    /// capture time — outer observers already saw these events.
    Replay { events: &'s EventBuf, pos: usize, obs_base: usize },
}

impl Src<'_> {
    fn obs_base(&self) -> usize {
        match self {
            Src::Stream => 0,
            Src::Replay { obs_base, .. } => *obs_base,
        }
    }
}

/// What kind of event the last `pull` produced (payload is in
/// `Exec::cur_name` / `Exec::cur_text`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pulled {
    Start,
    End,
    Text,
}

/// How a scope run terminates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Term {
    /// On the matching end tag of the scope element.
    End,
    /// At end of input (the document scope).
    Eof,
}

struct Exec<'p, R, S: Sink> {
    plan: &'p CompiledQuery,
    reader: Reader<R>,
    writer: Writer<S>,
    observers: Vec<Observer<'p>>,
    /// (scope index, observer index) for active scopes with observers.
    env_stack: Vec<(usize, usize)>,
    stats: RunStats,
    cur_bytes: usize,
    /// Abort threshold for `cur_bytes` (`EngineOptions::max_buffer_bytes`).
    limit: Option<usize>,
    /// Interned id of the tag in `cur_name` (UNKNOWN for names outside the
    /// plan's vocabulary).
    cur_id: NameId,
    cur_name: String,
    cur_text: String,
    cur_text_ws: bool,
    /// Pool of `(fired, firing)` scratch vectors for `run_scope`: scope
    /// entry/exit recycles them, so the streaming path allocates nothing
    /// per scope instance.
    scope_scratch: Vec<(Vec<bool>, Vec<usize>)>,
    /// Pool of flag-matcher vectors, recycled the same way (the matchers
    /// keep their text-buffer capacity across scope instances).
    flag_pool: Vec<Vec<FlagMatcher>>,
}

impl<'p, R: BufRead, S: Sink> Exec<'p, R, S> {
    /// Run the whole plan: pre string, document scope, post string.
    fn drive(
        &mut self,
        pre: Option<&str>,
        idx: usize,
        post: Option<&str>,
    ) -> Result<RunStats, EngineError> {
        if let Some(s) = pre {
            self.writer.write_raw(s).map_err(io_err)?;
        }
        let mut src = Src::Stream;
        self.run_scope(idx, &mut src, Term::Eof)?;
        if let Some(s) = post {
            self.writer.write_raw(s).map_err(io_err)?;
        }
        self.stats.output_bytes = self.writer.bytes_written();
        self.stats.final_buffer_bytes = self.cur_bytes;
        Ok(self.stats)
    }

    /// Account freshly buffered bytes and enforce the buffer limit.
    fn charge(&mut self, grew: usize) -> Result<(), EngineError> {
        self.stats.buffer_grow(&mut self.cur_bytes, grew);
        match self.limit {
            Some(limit) if self.cur_bytes > limit => {
                Err(EngineError::BufferLimit { used: self.cur_bytes, limit })
            }
            _ => Ok(()),
        }
    }

    /// Pull one event, routing it through the active observers.
    fn pull(&mut self, src: &mut Src<'_>) -> Result<Option<Pulled>, EngineError> {
        match src {
            Src::Stream => {
                let (grew, pulled) = {
                    let ev = match self.reader.next_resolved()? {
                        Some(e) => e,
                        None => return Ok(None),
                    };
                    self.stats.events += 1;
                    let grew = dispatch(&mut self.observers, 0, ev);
                    let pulled = match ev {
                        ResolvedEvent::Start(id, n) => {
                            self.cur_id = id;
                            self.cur_name.clear();
                            self.cur_name.push_str(n);
                            Pulled::Start
                        }
                        ResolvedEvent::End(id, n) => {
                            self.cur_id = id;
                            self.cur_name.clear();
                            self.cur_name.push_str(n);
                            Pulled::End
                        }
                        ResolvedEvent::Text(t) => {
                            self.cur_text.clear();
                            self.cur_text.push_str(t);
                            self.cur_text_ws = t.chars().all(char::is_whitespace);
                            Pulled::Text
                        }
                    };
                    (grew, pulled)
                };
                if grew > 0 {
                    self.charge(grew)?;
                }
                Ok(Some(pulled))
            }
            Src::Replay { events, pos, obs_base } => {
                let Some(ev) = events.get(*pos) else { return Ok(None) };
                *pos += 1;
                let grew = dispatch(&mut self.observers, *obs_base, ev);
                if grew > 0 {
                    self.charge(grew)?;
                }
                let pulled = match ev {
                    ResolvedEvent::Start(id, n) => {
                        self.cur_id = id;
                        self.cur_name.clear();
                        self.cur_name.push_str(n);
                        Pulled::Start
                    }
                    ResolvedEvent::End(id, n) => {
                        self.cur_id = id;
                        self.cur_name.clear();
                        self.cur_name.push_str(n);
                        Pulled::End
                    }
                    ResolvedEvent::Text(t) => {
                        self.cur_text.clear();
                        self.cur_text.push_str(t);
                        self.cur_text_ws = t.chars().all(char::is_whitespace);
                        Pulled::Text
                    }
                };
                Ok(Some(pulled))
            }
        }
    }

    /// Run one scope: process children until the scope's end tag (or EOF for
    /// the document scope). The scope's start tag has already been consumed.
    fn run_scope(&mut self, sidx: usize, src: &mut Src<'_>, term: Term) -> Result<(), EngineError> {
        let plan = self.plan;
        let spec: &'p ScopeSpec = &plan.scopes[sidx];
        let prod_ref = spec.prod.ok_or_else(|| EngineError::Undeclared(spec.elem.clone()))?;
        let automaton = prod_ref.resolve(plan.dtd()).automaton();

        if let Some(s) = &spec.pre {
            self.writer.write_raw(s).map_err(io_err)?;
        }
        let mut obs_created = false;
        if spec.needs_observer() {
            let rec = if spec.buffer_rt.is_empty() {
                None
            } else {
                self.stats.buffers_created += 1;
                Some(Recorder::new(&spec.buffer_rt, &spec.elem))
            };
            let mut flags = self.flag_pool.pop().unwrap_or_default();
            flags.truncate(spec.flags.len());
            for m in &mut flags {
                m.reset();
            }
            flags.resize_with(spec.flags.len(), FlagMatcher::new);
            self.observers.push(Observer { rec, specs: &spec.flags, flags });
            self.env_stack.push((sidx, self.observers.len() - 1));
            obs_created = true;
        }

        let mut state = Glushkov::INITIAL;
        let (mut fired, mut firing) = self.scope_scratch.pop().unwrap_or_default();
        fired.clear();
        fired.resize(spec.handlers.len(), false);
        firing.clear();

        // i = 0: on-first handlers whose past set can already not occur.
        for (h_idx, h) in spec.handlers.iter().enumerate() {
            if let CHandler::OnFirst { table, expr, defer_to_end } = h {
                if !defer_to_end && table.as_ref().is_some_and(|t| t.fires_initially()) {
                    fired[h_idx] = true;
                    self.fire_onfirst(expr)?;
                }
            }
        }

        loop {
            match self.pull(src)? {
                None => {
                    if term == Term::Eof {
                        break;
                    }
                    return Err(EngineError::Validation {
                        element: spec.elem.clone(),
                        message: "events ended inside the scope".into(),
                    });
                }
                Some(Pulled::End) => {
                    if term == Term::Eof {
                        return Err(EngineError::Validation {
                            element: spec.elem.clone(),
                            message: "unexpected end tag at document level".into(),
                        });
                    }
                    break;
                }
                Some(Pulled::Text) => {
                    if !spec.allows_text && !self.cur_text_ws {
                        return Err(EngineError::Validation {
                            element: spec.elem.clone(),
                            message: "character data not allowed by the content model".into(),
                        });
                    }
                }
                Some(Pulled::Start) => {
                    let old = state;
                    // One indexed load: the validating DFA transition by
                    // interned id (UNKNOWN names have no transition).
                    let new = match automaton.step_id(old, self.cur_id) {
                        Some(n) => n,
                        None => {
                            return Err(EngineError::Validation {
                                element: spec.elem.clone(),
                                message: format!("element `{}` not allowed here", self.cur_name),
                            })
                        }
                    };
                    state = new;
                    firing.clear();
                    for (h_idx, h) in spec.handlers.iter().enumerate() {
                        match h {
                            CHandler::On { label_id, .. } => {
                                if *label_id == self.cur_id {
                                    firing.push(h_idx);
                                }
                            }
                            CHandler::OnFirst { table, defer_to_end, .. } => {
                                if !defer_to_end
                                    && !fired[h_idx]
                                    && table.as_ref().is_some_and(|t| t.fires_on(old, new))
                                {
                                    firing.push(h_idx);
                                }
                            }
                        }
                    }
                    self.handle_child(spec, src, &firing, &mut fired)?;
                }
            }
        }

        if !automaton.accepting(state) {
            return Err(EngineError::Validation {
                element: spec.elem.clone(),
                message: "content ended prematurely (content model not satisfied)".into(),
            });
        }
        // i = n+1: remaining on-first handlers fire now, in ζ order.
        for (h_idx, h) in spec.handlers.iter().enumerate() {
            if let CHandler::OnFirst { expr, .. } = h {
                if !fired[h_idx] {
                    self.fire_onfirst(expr)?;
                }
            }
        }
        if let Some(s) = &spec.post {
            self.writer.write_raw(s).map_err(io_err)?;
        }
        if obs_created {
            self.env_stack.pop();
            let o = self.observers.pop().expect("observer pushed at scope entry");
            if let Some(rec) = o.rec {
                RunStats::buffer_shrink(&mut self.cur_bytes, rec.bytes());
            }
            self.flag_pool.push(o.flags);
        }
        // Recycle the scratch vectors (error paths simply drop them).
        self.scope_scratch.push((fired, firing));
        Ok(())
    }

    /// Process one child of the current scope. `self.cur_name` holds its
    /// label; its start event has been dispatched to the observers.
    fn handle_child(
        &mut self,
        spec: &'p ScopeSpec,
        src: &mut Src<'_>,
        firing: &[usize],
        fired: &mut [bool],
    ) -> Result<(), EngineError> {
        // Is the child being recorded into some buffer right now?
        let recorded = self.observers[src.obs_base()..]
            .iter()
            .any(|o| o.rec.as_ref().is_some_and(Recorder::is_recording));
        // Could a condition flag still change within this child? If so, an
        // `on` handler must not evaluate conditions while the child streams;
        // consuming the child first (capture path) finalizes the flags.
        let flags_pending = self.observers[src.obs_base()..]
            .iter()
            .any(|o| o.specs.iter().zip(&o.flags).any(|(spec, m)| m.may_change_below(spec)));

        let mut on_count = 0usize;
        let mut first_is_on = false;
        let mut all_bodies_streamable = true;
        let mut any_captured = false;
        for (i, &h_idx) in firing.iter().enumerate() {
            if let CHandler::On { body, .. } = &spec.handlers[h_idx] {
                on_count += 1;
                if i == 0 {
                    first_is_on = true;
                }
                match body {
                    CBody::Captured(_) => {
                        all_bodies_streamable = false;
                        any_captured = true;
                    }
                    CBody::Scope(_) | CBody::Stream(_) => {}
                }
            }
        }

        if on_count == 1 && first_is_on && all_bodies_streamable && !recorded && !flags_pending {
            // Zero-copy path: the child streams through.
            for &h_idx in firing {
                match &spec.handlers[h_idx] {
                    CHandler::On { body, .. } => {
                        self.stats.on_firings += 1;
                        match body {
                            CBody::Scope(i) => self.run_scope(*i, src, Term::End)?,
                            CBody::Stream(plan) => self.exec_simple(plan, src)?,
                            CBody::Captured(_) => unreachable!("checked streamable"),
                        }
                    }
                    CHandler::OnFirst { expr, .. } => {
                        fired[h_idx] = true;
                        self.fire_onfirst(expr)?;
                    }
                }
            }
            return Ok(());
        }

        // Consume the child first (observers see it); keep its events only
        // if an `on` handler must replay them.
        let need_events = on_count > 0;
        let label = if need_events && any_captured { self.cur_name.clone() } else { String::new() };
        let mut scratch = EventBuf::new();
        let scratch_bytes =
            self.consume_child(src, if need_events { Some(&mut scratch) } else { None })?;
        if need_events {
            self.stats.captures += 1;
        }

        for &h_idx in firing {
            match &spec.handlers[h_idx] {
                CHandler::OnFirst { expr, .. } => {
                    fired[h_idx] = true;
                    self.fire_onfirst(expr)?;
                }
                CHandler::On { var, body, .. } => {
                    self.stats.on_firings += 1;
                    match body {
                        CBody::Scope(i) => {
                            let mut rsrc = Src::Replay {
                                events: &scratch,
                                pos: 0,
                                obs_base: self.observers.len(),
                            };
                            self.run_scope(*i, &mut rsrc, Term::End)?;
                        }
                        CBody::Stream(plan) => {
                            // cur_name must hold the child label for the
                            // copy fast path; restore it from the scratch
                            // tail (the final End event carries the label).
                            if let Some(ResolvedEvent::End(id, n)) = scratch.last() {
                                self.cur_id = id;
                                self.cur_name.clear();
                                self.cur_name.push_str(n);
                            }
                            let mut rsrc = Src::Replay {
                                events: &scratch,
                                pos: 0,
                                obs_base: self.observers.len(),
                            };
                            self.exec_simple(plan, &mut rsrc)?;
                        }
                        CBody::Captured(expr) => {
                            let node = build_child_node(&label, &scratch);
                            self.fire_captured(var, expr, &node)?;
                        }
                    }
                }
            }
        }
        if scratch_bytes > 0 {
            RunStats::buffer_shrink(&mut self.cur_bytes, scratch_bytes);
        }
        Ok(())
    }

    /// Consume the rest of the current child's subtree (start tag already
    /// consumed), optionally storing the events (including the final end
    /// tag) into an arena-backed buffer — no per-event allocation. Returns
    /// the bytes charged for stored events.
    fn consume_child(
        &mut self,
        src: &mut Src<'_>,
        mut store: Option<&mut EventBuf>,
    ) -> Result<usize, EngineError> {
        let mut depth = 0usize;
        let mut bytes = 0usize;
        loop {
            let pulled = self.pull(src)?.ok_or_else(|| EngineError::Validation {
                element: "#stream".into(),
                message: "events ended inside an element".into(),
            })?;
            if pulled == Pulled::Start {
                depth += 1;
            }
            if let Some(st) = store.as_deref_mut() {
                let grew = match pulled {
                    Pulled::Start => st.push_start(self.cur_id, &self.cur_name),
                    Pulled::Text => st.push_text(&self.cur_text),
                    Pulled::End => st.push_end(self.cur_id, &self.cur_name),
                };
                bytes += grew;
                self.charge(grew)?;
            }
            if pulled == Pulled::End {
                if depth == 0 {
                    return Ok(bytes);
                }
                depth -= 1;
            }
        }
    }

    /// Copy the current child verbatim to the output (start tag from
    /// `cur_name`, remaining events from the source).
    fn copy_child(&mut self, src: &mut Src<'_>) -> Result<(), EngineError> {
        self.writer.write_event(Event::Start(&self.cur_name)).map_err(io_err)?;
        let mut depth = 0usize;
        loop {
            let pulled = self.pull(src)?.ok_or_else(|| EngineError::Validation {
                element: "#stream".into(),
                message: "events ended inside an element".into(),
            })?;
            match pulled {
                Pulled::Start => {
                    depth += 1;
                    self.writer.write_event(Event::Start(&self.cur_name)).map_err(io_err)?;
                }
                Pulled::Text => {
                    self.writer.write_event(Event::Text(&self.cur_text)).map_err(io_err)?;
                }
                Pulled::End => {
                    self.writer.write_event(Event::End(&self.cur_name)).map_err(io_err)?;
                    if depth == 0 {
                        return Ok(());
                    }
                    depth -= 1;
                }
            }
        }
    }

    /// Execute a streamable simple handler body over the current child.
    fn exec_simple(&mut self, plan: &SimplePlan, src: &mut Src<'_>) -> Result<(), EngineError> {
        let mut consumed = false;
        for item in &plan.items {
            match item {
                SimpleItem::Raw(s) => self.writer.write_raw(s).map_err(io_err)?,
                SimpleItem::CondRaw(c, s) => {
                    if self.eval_cond_runtime(c)? {
                        self.writer.write_raw(s).map_err(io_err)?;
                    }
                }
                SimpleItem::CopyChild => {
                    self.copy_child(src)?;
                    consumed = true;
                }
                SimpleItem::CondCopyChild(c) => {
                    if self.eval_cond_runtime(c)? {
                        self.copy_child(src)?;
                    } else {
                        self.consume_child(src, None)?;
                    }
                    consumed = true;
                }
            }
        }
        if !consumed {
            self.consume_child(src, None)?;
        }
        Ok(())
    }

    /// Fire an `on-first` handler: bind buffers and evaluate, resolving
    /// flag-owned atoms on the fly — no expression clone per firing.
    fn fire_onfirst(&mut self, expr: &Expr) -> Result<(), EngineError> {
        self.stats.on_first_firings += 1;
        let plan = self.plan;
        let mut env = Env::new();
        for &(sidx, obs) in &self.env_stack {
            if let Some(rec) = &self.observers[obs].rec {
                env.push(plan.scopes[sidx].var.clone(), rec.root());
            }
        }
        let (env_stack, observers) = (&self.env_stack, &self.observers);
        let resolve =
            |atom: &Atom, bound: &[String]| lookup_flag_in(plan, env_stack, observers, atom, bound);
        eval_expr_with(expr, &mut env, &mut self.writer, &resolve)?;
        Ok(())
    }

    /// Fire a captured `on` handler body over the materialized child.
    fn fire_captured(&mut self, var: &str, expr: &Expr, child: &Node) -> Result<(), EngineError> {
        let plan = self.plan;
        let mut env = Env::new();
        for &(sidx, obs) in &self.env_stack {
            if let Some(rec) = &self.observers[obs].rec {
                env.push(plan.scopes[sidx].var.clone(), rec.root());
            }
        }
        env.push(var.to_string(), child);
        let (env_stack, observers) = (&self.env_stack, &self.observers);
        let resolve = |atom: &Atom, bound: &[String]| {
            // The handler variable is bound to the captured child: atoms
            // rooted at it are never flag-owned.
            if atom_root_var(atom) == var {
                return None;
            }
            lookup_flag_in(plan, env_stack, observers, atom, bound)
        };
        eval_expr_with(expr, &mut env, &mut self.writer, &resolve)?;
        Ok(())
    }

    /// Evaluate a condition: flag-owned atoms on the fly, residual atoms
    /// over buffers. Allocation-free when everything resolves from flags
    /// (the fully streaming case).
    fn eval_cond_runtime(&mut self, c: &Cond) -> Result<bool, EngineError> {
        let plan = self.plan;
        let mut env = Env::new();
        for &(sidx, obs) in &self.env_stack {
            if let Some(rec) = &self.observers[obs].rec {
                env.push(plan.scopes[sidx].var.clone(), rec.root());
            }
        }
        let (env_stack, observers) = (&self.env_stack, &self.observers);
        let resolve =
            |atom: &Atom, bound: &[String]| lookup_flag_in(plan, env_stack, observers, atom, bound);
        Ok(eval_cond_with(c, &env, &resolve)?)
    }
}

/// Current value of the flag evaluating `atom`, if the atom is flag-owned
/// by an active scope. `bound` carries the variables rebound inside the
/// expression being evaluated (their atoms belong to the buffer evaluator).
fn lookup_flag_in(
    plan: &CompiledQuery,
    env_stack: &[(usize, usize)],
    observers: &[Observer<'_>],
    atom: &Atom,
    bound: &[String],
) -> Option<bool> {
    if atom_is_join(atom) {
        return None;
    }
    let var = atom_root_var(atom);
    if bound.iter().any(|b| b == var) {
        return None; // rebound inside the expression
    }
    for &(sidx, obs) in env_stack.iter().rev() {
        if plan.scopes[sidx].var == var {
            let o = &observers[obs];
            for (k, spec) in o.specs.iter().enumerate() {
                if spec.matches_atom(atom) {
                    return Some(o.flags[k].value);
                }
            }
            return None;
        }
    }
    None
}

/// Route one event through the observers at or above `base`. Flag and
/// recorder decisions compare interned ids only.
fn dispatch(observers: &mut [Observer<'_>], base: usize, ev: ResolvedEvent<'_>) -> usize {
    let mut grew = 0usize;
    for o in &mut observers[base..] {
        for (spec, m) in o.specs.iter().zip(&mut o.flags) {
            match ev {
                ResolvedEvent::Start(id, _) => m.on_start(spec, id),
                ResolvedEvent::Text(t) => m.on_text(t),
                ResolvedEvent::End(..) => m.on_end(spec),
            }
        }
        if let Some(rec) = &mut o.rec {
            grew += match ev {
                ResolvedEvent::Start(id, n) => rec.on_start(id, n),
                ResolvedEvent::Text(t) => rec.on_text(t),
                ResolvedEvent::End(..) => {
                    rec.on_end();
                    0
                }
            };
        }
    }
    grew
}

/// Build a node for a captured child from its label and remaining events
/// (which end with the child's end tag).
fn build_child_node(label: &str, events: &EventBuf) -> Node {
    let mut stack = vec![Node::new(label)];
    for ev in events.iter() {
        match ev {
            ResolvedEvent::Start(_, n) => stack.push(Node::new(n)),
            ResolvedEvent::Text(t) => stack.last_mut().expect("balanced events").push_text(t),
            ResolvedEvent::End(..) => {
                let done = stack.pop().expect("balanced events");
                match stack.last_mut() {
                    Some(parent) => parent.children.push(flux_xml::Child::Elem(done)),
                    None => return done,
                }
            }
        }
    }
    stack.pop().expect("non-empty build stack")
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use flux_core::{interp_flux, parse_flux, rewrite_query};
    use flux_query::eval::eval_query;
    use flux_query::parse_xquery;

    const BIB_WEAK: &str = "<!ELEMENT bib (book)*><!ELEMENT book (title|author)*>\
        <!ELEMENT title (#PCDATA)><!ELEMENT author (#PCDATA)>";
    const BIB_STRONG: &str = "<!ELEMENT bib (book)*>\
        <!ELEMENT book (title,(author+|editor+),publisher,price)>\
        <!ELEMENT title (#PCDATA)><!ELEMENT author (#PCDATA)><!ELEMENT editor (#PCDATA)>\
        <!ELEMENT publisher (#PCDATA)><!ELEMENT price (#PCDATA)>";

    const WEAK_DOC: &str = "<bib><book><title>T1</title><author>A1</author><title>T1b</title>\
        <author>A2</author></book><book><author>B1</author></book></bib>";
    const STRONG_DOC: &str = "<bib>\
        <book><title>TCP</title><author>Stevens</author><author>Wright</author>\
          <publisher>AW</publisher><price>65</price></book>\
        <book><title>Web</title><editor>Abiteboul</editor><publisher>MK</publisher>\
          <price>39</price></book></bib>";

    /// Rewrite, run streamed, and check the result against the DOM
    /// evaluation of the original query (Theorem 4.3 + engine correctness).
    #[track_caller]
    fn check_equiv(query: &str, dtd_src: &str, doc_src: &str) -> RunStats {
        let dtd = Dtd::parse(dtd_src).unwrap();
        let q = parse_xquery(query).unwrap();
        let flux = rewrite_query(&q, &dtd).unwrap();
        let run = run_streaming(&flux, &dtd, doc_src.as_bytes())
            .unwrap_or_else(|e| panic!("engine failed on {query}: {e}\nplan: {flux}"));
        let doc = wrap_document(Node::parse_str(doc_src).unwrap());
        let expected = eval_query(&q, &doc).unwrap();
        assert_eq!(run.output, expected, "query: {query}\nplan: {flux}");
        // The tree-semantics interpreter must agree as well.
        let via_interp = interp_flux(&flux, &dtd, &doc).unwrap();
        assert_eq!(via_interp, expected, "interp disagrees on {query}");
        run.stats
    }

    #[test]
    fn intro_query_streams_with_strong_dtd() {
        let stats = check_equiv(
            "<results>{ for $b in $ROOT/bib/book return <result> {$b/title} {$b/author} </result> }</results>",
            BIB_STRONG,
            STRONG_DOC,
        );
        assert_eq!(stats.peak_buffer_bytes, 0, "fully streaming plan must not buffer");
        assert_eq!(stats.captures, 0);
    }

    #[test]
    fn intro_query_buffers_authors_with_weak_dtd() {
        let stats = check_equiv(
            "<results>{ for $b in $ROOT/bib/book return <result> {$b/title} {$b/author} </result> }</results>",
            BIB_WEAK,
            WEAK_DOC,
        );
        // Authors of one book at a time: strictly positive, but far below
        // the document size.
        assert!(stats.peak_buffer_bytes > 0);
        let doc_bytes = WEAK_DOC.len();
        assert!(
            stats.peak_buffer_bytes < doc_bytes / 2,
            "peak {} too large",
            stats.peak_buffer_bytes
        );
        assert_eq!(stats.final_buffer_bytes, 0, "all buffers released");
    }

    #[test]
    fn condition_flags_stream_without_buffers() {
        let dtd_src = "<!ELEMENT bib (book)*><!ELEMENT book (publisher,year,title)>\
            <!ELEMENT publisher (#PCDATA)><!ELEMENT year (#PCDATA)><!ELEMENT title (#PCDATA)>";
        let doc = "<bib><book><publisher>AW</publisher><year>1994</year><title>yes</title></book>\
             <book><publisher>AW</publisher><year>1990</year><title>no-year</title></book>\
             <book><publisher>MK</publisher><year>1999</year><title>no-pub</title></book></bib>";
        let stats = check_equiv(
            "<hits>{ for $b in $ROOT/bib/book where $b/publisher = \"AW\" and $b/year > 1991 \
               return <hit> {$b/title} </hit> }</hits>",
            dtd_src,
            doc,
        );
        assert_eq!(stats.peak_buffer_bytes, 0, "flags must not buffer");
    }

    #[test]
    fn whole_subtree_buffering_is_one_element_at_a_time() {
        // Q20-style: output whole elements failing a condition.
        let dtd_src = "<!ELEMENT people (person)*><!ELEMENT person (name,income?)>\
            <!ELEMENT name (#PCDATA)><!ELEMENT income (#PCDATA)>";
        let doc = "<people><person><name>poor</name></person>\
            <person><name>rich</name><income>9999999</income></person>\
            <person><name>alsopoor</name></person></people>";
        let stats = check_equiv(
            "{ for $p in $ROOT/people/person where empty($p/income) return {$p} }",
            dtd_src,
            doc,
        );
        assert!(stats.peak_buffer_bytes > 0);
        // Peak is a single person, not all persons.
        let rich = "<person><name>rich</name><income>9999999</income></person>";
        assert!(
            stats.peak_buffer_bytes <= rich.len() + 16,
            "peak {} should be one person at a time",
            stats.peak_buffer_bytes
        );
    }

    #[test]
    fn join_query_example_4_6() {
        let dtd_src = "<!ELEMENT bib (book*,article*)>\
            <!ELEMENT book (title,(author+|editor+),publisher)>\
            <!ELEMENT article (title,author+,journal)>\
            <!ELEMENT title (#PCDATA)><!ELEMENT author (#PCDATA)><!ELEMENT editor (#PCDATA)>\
            <!ELEMENT publisher (#PCDATA)><!ELEMENT journal (#PCDATA)>";
        let doc = "<bib>\
            <book><title>B1</title><editor>smith</editor><publisher>P</publisher></book>\
            <book><title>B2</title><author>jones</author><publisher>P</publisher></book>\
            <article><title>A1</title><author>smith</author><author>lee</author><journal>J</journal></article>\
            <article><title>A2</title><author>kim</author><journal>J</journal></article></bib>";
        let stats = check_equiv(
            "<results>{ for $bib in $ROOT/bib return \
               { for $article in $bib/article return \
                 { for $book in $bib/book where $article/author = $book/editor return \
                   <result> {$article/author} </result> } } }</results>",
            dtd_src,
            doc,
        );
        assert!(stats.peak_buffer_bytes > 0, "joins must buffer");
    }

    #[test]
    fn two_loops_over_the_same_streamed_path() {
        // β1 streams titles via an on-handler while β2 buffers them — the
        // tee/capture path.
        let stats = check_equiv(
            "{ for $b in $ROOT/bib/book return <one>{$b/title}</one><two>{$b/title}</two> }",
            BIB_WEAK,
            WEAK_DOC,
        );
        assert!(stats.peak_buffer_bytes > 0, "second pass needs the titles buffered");
    }

    #[test]
    fn strings_and_conditionals_only() {
        let stats = check_equiv(
            "<count>{ for $b in $ROOT/bib/book return <book-seen/> }</count>",
            BIB_WEAK,
            WEAK_DOC,
        );
        assert_eq!(stats.peak_buffer_bytes, 0);
    }

    #[test]
    fn nested_structure_queries() {
        check_equiv(
            "{ for $b in $ROOT/bib/book return { for $t in $b/title return { for $a in $b/author return <r>{$t}{$a}</r> } } }",
            BIB_WEAK,
            WEAK_DOC,
        );
        check_equiv(
            "{ for $b in $ROOT/bib/book return { for $t in $b/title return { for $a in $b/author return <r>{$t}{$a}</r> } } }",
            BIB_STRONG,
            STRONG_DOC,
        );
    }

    #[test]
    fn empty_document_and_empty_results() {
        check_equiv(
            "<results>{ for $b in $ROOT/bib/book return <r/> }</results>",
            BIB_WEAK,
            "<bib></bib>",
        );
        check_equiv(
            "<results>{ for $b in $ROOT/bib/book where $b/title = \"nope\" return <r/> }</results>",
            BIB_WEAK,
            WEAK_DOC,
        );
    }

    #[test]
    fn output_path_queries() {
        check_equiv("<all>{ $ROOT/bib/book/author }</all>", BIB_WEAK, WEAK_DOC);
        check_equiv("<all>{ $ROOT/bib/book }</all>", BIB_WEAK, WEAK_DOC);
    }

    #[test]
    fn invalid_document_rejected() {
        let dtd = Dtd::parse(BIB_STRONG).unwrap();
        let q = parse_xquery("<r>{ for $b in $ROOT/bib/book return {$b/title} }</r>").unwrap();
        let flux = rewrite_query(&q, &dtd).unwrap();
        // Wrong child order for the strong DTD:
        let bad = "<bib><book><author>A</author><title>T</title><publisher>P</publisher><price>1</price></book></bib>";
        let err = run_streaming(&flux, &dtd, bad.as_bytes()).unwrap_err();
        assert!(matches!(err, EngineError::Validation { .. }), "{err}");
    }

    #[test]
    fn malformed_xml_rejected() {
        let dtd = Dtd::parse(BIB_WEAK).unwrap();
        let q = parse_xquery("<r>{ for $b in $ROOT/bib/book return <x/> }</r>").unwrap();
        let flux = rewrite_query(&q, &dtd).unwrap();
        let err = run_streaming(&flux, &dtd, "<bib><book></bib>".as_bytes()).unwrap_err();
        assert!(matches!(err, EngineError::Xml(_)), "{err}");
    }

    #[test]
    fn handwritten_flux_with_pre_post_strings() {
        let dtd = Dtd::parse(BIB_WEAK).unwrap();
        let flux = parse_flux(
            "<results> { ps $ROOT: on bib as $bib return \
               { ps $bib: on book as $b return <b/> } } </results>",
        )
        .unwrap();
        let run = run_streaming(&flux, &dtd, WEAK_DOC.as_bytes()).unwrap();
        assert_eq!(run.output, "<results><b/><b/></results>");
    }

    #[test]
    fn on_first_before_on_at_same_step() {
        // ζ = [on-first past(book); on book]: both fire on the single book;
        // ζ order puts the on-first output before the book copy.
        let dtd = Dtd::parse("<!ELEMENT bib (book)><!ELEMENT book (#PCDATA)>").unwrap();
        let flux = parse_flux(
            "{ ps $ROOT: on bib as $b return \
               { ps $b: on-first past(book) return <flush/>; on book as $k return {$k} } }",
        )
        .unwrap();
        let run = run_streaming(&flux, &dtd, "<bib><book>x</book></bib>".as_bytes()).unwrap();
        assert_eq!(run.output, "<flush/><book>x</book>");
        // And the converse order:
        let flux2 = parse_flux(
            "{ ps $ROOT: on bib as $b return \
               { ps $b: on book as $k return {$k}; on-first past(book) return <flush/> } }",
        )
        .unwrap();
        let run2 = run_streaming(&flux2, &dtd, "<bib><book>x</book></bib>".as_bytes()).unwrap();
        assert_eq!(run2.output, "<book>x</book><flush/>");
    }

    #[test]
    fn stats_are_populated() {
        let stats = check_equiv(
            "<results>{ for $b in $ROOT/bib/book return <result> {$b/title} {$b/author} </result> }</results>",
            BIB_STRONG,
            STRONG_DOC,
        );
        assert!(stats.events > 10);
        assert!(stats.output_bytes > 10);
        assert!(stats.on_firings >= 4, "title/author handlers fired: {stats:?}");
        assert!(stats.on_first_firings >= 2);
    }

    #[test]
    fn simple_plan_peak_matches_wrapped_document() {
        // A hand-written plan with no process-stream takes the Top::Simple
        // path; its peak must equal the wrapped document's buffered bytes
        // (the `#document` node included, as the seed reported).
        let dtd = Dtd::parse(BIB_WEAK).unwrap();
        let flux = parse_flux("{ $ROOT/bib/book/title }").unwrap();
        let compiled = CompiledQuery::compile(&flux, &dtd).unwrap();
        let mut out = Vec::new();
        let stats = compiled.run(WEAK_DOC.as_bytes(), &mut out).unwrap();
        let doc = wrap_document(Node::parse_str(WEAK_DOC).unwrap());
        assert_eq!(stats.peak_buffer_bytes, doc.buffered_bytes());
        assert!(!out.is_empty());
    }

    #[test]
    fn simple_plan_respects_the_buffer_limit_while_materializing() {
        let dtd = Dtd::parse(BIB_WEAK).unwrap();
        let flux = parse_flux("{ $ROOT/bib }").unwrap();
        let compiled = CompiledQuery::compile_with(
            &flux,
            std::sync::Arc::new(dtd),
            crate::compile::EngineOptions { max_buffer_bytes: Some(32), ..Default::default() },
        )
        .unwrap();
        let err = compiled.run(WEAK_DOC.as_bytes(), Vec::new()).unwrap_err();
        assert!(matches!(err, EngineError::BufferLimit { limit: 32, .. }), "{err}");
    }

    #[test]
    fn degenerate_whole_document_query() {
        // {$ROOT}-style queries have no process-stream: the engine
        // materializes (and says so in the stats).
        let dtd = Dtd::parse(BIB_WEAK).unwrap();
        let q = parse_xquery("{ $ROOT/bib }").unwrap();
        let flux = rewrite_query(&q, &dtd).unwrap();
        let run = run_streaming(&flux, &dtd, WEAK_DOC.as_bytes()).unwrap();
        let doc = wrap_document(Node::parse_str(WEAK_DOC).unwrap());
        assert_eq!(run.output, eval_query(&q, &doc).unwrap());
    }

    #[test]
    fn condition_descending_into_the_fired_child() {
        // Regression: the flag for $ROOT/lib/meta can still change *inside*
        // the single <meta> child the on-handler fires on; the engine must
        // consume the child (finalizing the flag) before deciding.
        let dtd_src = "<!ELEMENT lib (shelf*,meta?)><!ELEMENT shelf (#PCDATA)>\
            <!ELEMENT meta (owner,year)><!ELEMENT owner (#PCDATA)><!ELEMENT year (#PCDATA)>";
        let doc = "<lib><shelf>s</shelf><meta><owner>1999</owner><year>42</year></meta></lib>";
        let stats =
            check_equiv("{ if $ROOT/lib/meta >= 1841 then {$ROOT/lib/meta} }", dtd_src, doc);
        assert!(stats.captures > 0, "the meta child must take the capture path");
        // And the negative case stays negative:
        check_equiv("{ if $ROOT/lib/meta >= 999999999 then {$ROOT/lib/meta} }", dtd_src, doc);
    }

    #[test]
    fn scaled_join_condition() {
        let dtd_src = "<!ELEMENT r (a*,b*)><!ELEMENT a (v)><!ELEMENT b (w)>\
            <!ELEMENT v (#PCDATA)><!ELEMENT w (#PCDATA)>";
        let doc = "<r><a><v>100</v></a><a><v>10</v></a><b><w>30</w></b></r>";
        check_equiv(
            "{ for $a in $ROOT/r/a return { for $b in $ROOT/r/b where $a/v > (3 * $b/w) return <hit>{$a/v}</hit> } }",
            dtd_src,
            doc,
        );
    }
}
